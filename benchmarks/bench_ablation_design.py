"""Ablations of the design choices DESIGN.md calls out.

1. Vectorized (bit-packed + popcount) objective vs a per-edge Python loop
   -- the reason labels live in int64 numpy arrays.
2. Swap-pass sweeps: the paper's single greedy pass vs repeat-until-stable.
3. The swap_coarsest extension (off in the paper).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TimerConfig
from repro.core.enhancer import timer_enhance
from repro.core.labels import build_application_labeling
from repro.core.objective import coco_plus
from repro.experiments.instances import generate_instance
from repro.experiments.topologies import make_topology
from repro.mapping.mapper import compute_initial_mapping
from repro.partitioning.kway import partition_kway
from repro.utils.bitops import mask_of_width


@pytest.fixture(scope="module")
def cell():
    ga = generate_instance("p2p-Gnutella", seed=9, divisor=96, n_max=2048)
    gp, pc = make_topology("grid8x8x8")
    part = partition_kway(ga, gp.n, seed=9)
    mu, _ = compute_initial_mapping("c2", part, gp, seed=10)
    app = build_application_labeling(ga, pc, mu, seed=11)
    return ga, gp, pc, mu, app


def _coco_plus_python_loop(ga, labels, dim_p, dim_e):
    """Reference per-edge implementation (the ablation baseline)."""
    lp_mask = mask_of_width(dim_p) << dim_e
    le_mask = mask_of_width(dim_e)
    total = 0.0
    for u, v, w in ga.edges():
        xor = int(labels[u]) ^ int(labels[v])
        total += w * (bin(xor & lp_mask).count("1") - bin(xor & le_mask).count("1"))
    return total


class TestObjectiveAblation:
    def test_bench_vectorized(self, benchmark, cell):
        ga, _, _, _, app = cell
        val = benchmark(coco_plus, ga, app.labels, app.dim_p, app.dim_e)
        assert np.isfinite(val)

    def test_bench_python_loop(self, benchmark, cell):
        ga, _, _, _, app = cell
        val = benchmark.pedantic(
            _coco_plus_python_loop,
            args=(ga, app.labels, app.dim_p, app.dim_e),
            rounds=1,
            iterations=1,
        )
        # both implementations agree -- the ablation is about speed only
        assert np.isclose(val, coco_plus(ga, app.labels, app.dim_p, app.dim_e))


class TestSwapVariants:
    def test_multi_sweep_quality(self, benchmark, cell):
        ga, gp, pc, mu, _ = cell
        base = timer_enhance(
            ga, gp, pc, mu, seed=12,
            config=TimerConfig(n_hierarchies=6, sweeps_per_level=1),
        )
        multi = benchmark.pedantic(
            lambda: timer_enhance(
                ga, gp, pc, mu, seed=12,
                config=TimerConfig(n_hierarchies=6, sweeps_per_level=3),
            ),
            rounds=1,
            iterations=1,
        )
        print(
            f"\nAblation sweeps/level: 1 -> Coco {base.coco_after:.0f}, "
            f"3 -> Coco {multi.coco_after:.0f}"
        )
        # both must be valid enhancements; multi-sweep usually (not always)
        # reaches a lower Coco+ -- assert it never invalidates the result.
        multi.labeling.check_bijective()

    def test_swap_coarsest_extension(self, benchmark, cell):
        ga, gp, pc, mu, _ = cell
        off = timer_enhance(
            ga, gp, pc, mu, seed=13,
            config=TimerConfig(n_hierarchies=6, swap_coarsest=False),
        )
        on = benchmark.pedantic(
            lambda: timer_enhance(
                ga, gp, pc, mu, seed=13,
                config=TimerConfig(n_hierarchies=6, swap_coarsest=True),
            ),
            rounds=1,
            iterations=1,
        )
        print(
            f"\nAblation swap_coarsest: off -> Coco {off.coco_after:.0f}, "
            f"on -> Coco {on.coco_after:.0f}"
        )
        on.labeling.check_bijective()

    def test_bench_single_hierarchy(self, benchmark, cell):
        ga, gp, pc, mu, _ = cell
        cfg = TimerConfig(n_hierarchies=1, verify_invariants=False)
        res = benchmark.pedantic(
            lambda: timer_enhance(ga, gp, pc, mu, seed=14, config=cfg),
            rounds=2,
            iterations=1,
        )
        assert len(res.history) == 1
