"""Ablation: quality vs the number of hierarchies N_H.

The paper (§7.2, case c1 discussion) observes informally that "only ten
hierarchies are sufficient for TIMER to improve the communication costs
significantly".  This bench quantifies the NH -> Coco curve on a
representative instance and asserts the paper's claims:

- quality improves monotonically with NH (same RNG stream: a longer run
  extends the shorter one's accepted trajectory);
- the marginal gain between NH=10 and NH=25 is smaller than the gain
  between NH=1 and NH=10 (diminishing returns).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TimerConfig
from repro.core.enhancer import timer_enhance
from repro.experiments.instances import generate_instance
from repro.experiments.topologies import make_topology
from repro.mapping.mapper import compute_initial_mapping
from repro.partitioning.kway import partition_kway

NH_GRID = (1, 5, 10, 25)


@pytest.fixture(scope="module")
def cell():
    ga = generate_instance("PGPgiantcompo", seed=5, divisor=96, n_max=2048)
    gp, pc = make_topology("grid16x16")
    part = partition_kway(ga, gp.n, seed=5)
    mu, _ = compute_initial_mapping("c1", part, gp, seed=6)
    return ga, gp, pc, mu


def test_nh_curve(benchmark, cell):
    ga, gp, pc, mu = cell
    cfg = TimerConfig(n_hierarchies=max(NH_GRID), verify_invariants=False)
    res = benchmark.pedantic(
        lambda: timer_enhance(ga, gp, pc, mu, seed=7, config=cfg),
        rounds=1,
        iterations=1,
    )
    history = np.asarray(res.history, dtype=np.float64)
    print("\nAblation NH -> Coco+ (same stream):")
    for nh in NH_GRID:
        print(f"  NH={nh:>3}: Coco+ = {history[nh - 1]:.0f}")
    assert (np.diff(history) <= 1e-9).all()
    gain_early = history[0] - history[9]
    gain_late = history[9] - history[24]
    assert gain_early >= gain_late  # diminishing returns


@pytest.mark.parametrize("nh", [1, 10])
def test_bench_timer_scaling_in_nh(benchmark, cell, nh):
    """Runtime is ~linear in NH (§6.3: O(NH |Ea| dim))."""
    ga, gp, pc, mu = cell
    cfg = TimerConfig(n_hierarchies=nh, verify_invariants=False)
    res = benchmark.pedantic(
        lambda: timer_enhance(ga, gp, pc, mu, seed=8, config=cfg),
        rounds=1,
        iterations=1,
    )
    assert len(res.history) == nh
