"""Ablation: TIMER vs classic NCM pairwise-exchange refinement.

The paper's motivation for TIMER over Walshaw-Cross-style refinement is
(a) no quadratic-space network cost matrix and (b) a richer move space:
TIMER also moves *vertices* between blocks (it modifies the partition),
while NCM exchange only permutes whole blocks across PEs.

This bench runs both refiners on the same initial mapping and reports the
Coco each reaches.  Expected shape: starting from IDENTITY, both improve;
TIMER's vertex-level moves reach further on complex networks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TimerConfig
from repro.core.enhancer import timer_enhance
from repro.experiments.instances import generate_instance
from repro.experiments.topologies import make_topology
from repro.mapping.commgraph import build_communication_graph
from repro.mapping.objective import coco_from_distances, network_cost_matrix
from repro.mapping.refine import ncm_swap_refine
from repro.partitioning.kway import partition_kway


@pytest.fixture(scope="module")
def cell():
    ga = generate_instance("citationCiteseer", seed=21, divisor=96, n_max=2048)
    gp, pc = make_topology("grid16x16")
    part = partition_kway(ga, gp.n, seed=21)
    return ga, gp, pc, part


def test_timer_vs_ncm(benchmark, cell):
    ga, gp, pc, part = cell
    dist = network_cost_matrix(gp)
    gc = build_communication_graph(part)
    nu0 = np.arange(gp.n, dtype=np.int64)  # IDENTITY
    coco0 = coco_from_distances(ga, nu0[part.assignment], dist)

    # NCM baseline
    nu_ncm = ncm_swap_refine(gc, gp, nu0, dist=dist, radius=2, max_passes=3)
    coco_ncm = coco_from_distances(ga, nu_ncm[part.assignment], dist)

    # TIMER (benchmarked kernel)
    cfg = TimerConfig(n_hierarchies=10, verify_invariants=False)
    res = benchmark.pedantic(
        lambda: timer_enhance(ga, gp, pc, nu0[part.assignment], seed=22, config=cfg),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nAblation vs NCM refinement (Coco, lower better):\n"
        f"  initial (IDENTITY): {coco0:.0f}\n"
        f"  NCM pairwise swaps: {coco_ncm:.0f}\n"
        f"  TIMER (NH=10):      {res.coco_after:.0f}"
    )
    assert coco_ncm <= coco0
    assert res.coco_after <= coco0


def test_bench_ncm_refine(benchmark, cell):
    ga, gp, pc, part = cell
    dist = network_cost_matrix(gp)
    gc = build_communication_graph(part)
    nu0 = np.arange(gp.n, dtype=np.int64)
    out = benchmark.pedantic(
        lambda: ncm_swap_refine(gc, gp, nu0, dist=dist, radius=2, max_passes=3),
        rounds=1,
        iterations=1,
    )
    assert sorted(out.tolist()) == list(range(gp.n))


def test_bench_kl_strategy(benchmark, cell):
    """KL swap strategy (future-work variant) on the same cell."""
    ga, gp, pc, part = cell
    cfg = TimerConfig(n_hierarchies=3, swap_strategy="kl", verify_invariants=False)
    res = benchmark.pedantic(
        lambda: timer_enhance(ga, gp, pc, part.assignment, seed=23, config=cfg),
        rounds=1,
        iterations=1,
    )
    assert res.coco_after <= res.coco_before
