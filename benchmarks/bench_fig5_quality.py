"""Figure 5 (a-d): quality quotients after TIMER per experimental case.

The paper plots, for every topology, the geometric means of the relative
edge cut and relative Coco (min/mean/max over 5 seeds, geo-mean over the
15 networks).  Expected shape, which this bench asserts:

- Coco quotients < 1 (TIMER reduces communication cost) on average;
- Cut quotients >= ~1 (edge cut worsens slightly, paper: +2%..+11%);
- grids improve at least as much as the hypercube (the paper's "better
  connectivity makes improvement harder" observation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.claims import render_claims, validate_paper_claims
from repro.experiments.reporting import render_fig5, render_summary


@pytest.mark.parametrize("case", ["c1", "c2", "c3", "c4"])
def test_fig5_panel(benchmark, sweep_result, case):
    text = benchmark.pedantic(
        render_fig5, args=(sweep_result, case), rounds=1, iterations=1
    )
    print("\n" + text)
    from benchmarks.conftest import save_artifact
    from repro.experiments.ascii_chart import render_fig5_chart

    save_artifact(f"fig5_{case}.txt", text + "\n" + render_fig5_chart(sweep_result, case))
    agg = sweep_result.aggregate()
    co_means = [
        by_case[case]["q_coco"]["mean"]
        for by_case in agg.values()
        if case in by_case
    ]
    cut_means = [
        by_case[case]["q_cut"]["mean"]
        for by_case in agg.values()
        if case in by_case
    ]
    # TIMER reduces Coco on average across topologies for every case.
    assert np.mean(co_means) < 1.0, case
    # The cut inflates (TIMER optimizes Coco, not cut).
    assert np.mean(cut_means) > 0.95, case


def test_fig5_summary_shape(benchmark, sweep_result):
    """Cross-case headline: grids improve more than the hypercube."""
    text = benchmark.pedantic(render_summary, args=(sweep_result,), rounds=1, iterations=1)
    print("\n" + text)
    agg = sweep_result.aggregate()

    def family_mean(prefix: str) -> float:
        vals = [
            q["q_coco"]["mean"]
            for topo, by_case in agg.items()
            if topo.startswith(prefix)
            for q in by_case.values()
        ]
        return float(np.mean(vals)) if vals else float("nan")

    grid_q = family_mean("grid")
    hq_q = family_mean("hq")
    assert grid_q < 1.0
    # quotient: smaller = more improvement; allow slack for small samples
    assert grid_q <= hq_q + 0.05
    # programmatic section-7.2 claim validation on the same sweep
    checks = validate_paper_claims(sweep_result)
    print(render_claims(checks))
    from benchmarks.conftest import save_artifact

    save_artifact("claims.txt", render_claims(checks))
    core = [c for c in checks if c.claim_id in ("coco-improves", "time-ordering")]
    assert all(c.passed for c in core), render_claims(core)
