"""Micro-benchmarks of TIMER's building blocks.

Not tied to a paper artifact; these watch the hot kernels the running-time
analysis of §6.3 talks about (per-level swap pass O(|E|), contraction
O(|E|), assemble O(|V| dim)) plus partial-cube recognition (§3).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assemble import assemble
from repro.core.contraction import contract_level, make_finest_level
from repro.core.kernels import (
    batch_pair_deltas,
    level_csr,
    pair_delta,
    sibling_pair_weights,
    sibling_pairs,
)
from repro.core.labels import build_application_labeling
from repro.core.objective import coco_plus
from repro.core.swaps import swap_pass, swap_pass_reference
from repro.graphs import generators as gen
from repro.partialcube.djokovic import djokovic_classes, partial_cube_labeling
from repro.utils.bitops import permute_bits


@pytest.fixture(scope="module")
def workload():
    ga = gen.barabasi_albert(2000, 4, seed=1)
    gp = gen.grid(16, 16)
    pc = partial_cube_labeling(gp)
    rng = np.random.default_rng(2)
    mu = (np.arange(ga.n) % gp.n).astype(np.int64)
    rng.shuffle(mu)
    app = build_application_labeling(ga, pc, mu, seed=3)
    return ga, gp, pc, app


def test_bench_partial_cube_recognition(benchmark):
    gp = gen.grid(16, 16)
    lab = benchmark(partial_cube_labeling, gp)
    assert lab.dim == 30


def test_bench_recognition_torus512(benchmark):
    gp = gen.torus(8, 8, 8)
    lab = benchmark(partial_cube_labeling, gp)
    assert lab.dim == 12


def test_bench_coco_plus_eval(benchmark, workload):
    ga, _, _, app = workload
    val = benchmark(coco_plus, ga, app.labels, app.dim_p, app.dim_e)
    assert np.isfinite(val)


def test_bench_swap_pass_level1(benchmark, workload):
    """The production path: the vectorized batch kernel."""
    ga, _, _, app = workload

    def run():
        lvl = make_finest_level(ga.edge_arrays(), app.labels.copy())
        return swap_pass(lvl, sign=1)

    n_swaps, _ = benchmark(run)
    assert n_swaps >= 0


def test_bench_swap_pass_scalar_reference(benchmark, workload):
    """The seed's per-pair scalar loop -- the 'before' of the kernel PR."""
    ga, _, _, app = workload

    def run():
        lvl = make_finest_level(ga.edge_arrays(), app.labels.copy())
        return swap_pass_reference(lvl, sign=1)

    n_swaps, _ = benchmark(run)
    assert n_swaps >= 0


def test_bench_pair_deltas_batch(benchmark, workload):
    """Gain evaluation of every sibling pair in one vectorized pass."""
    ga, _, _, app = workload
    lvl = make_finest_level(ga.edge_arrays(), app.labels.copy())
    csr = level_csr(lvl)
    pairs = sibling_pairs(lvl.labels)
    pair_w = sibling_pair_weights(lvl, pairs)

    deltas = benchmark(batch_pair_deltas, lvl.labels, pairs, csr, 1, pair_w)
    assert deltas.shape[0] == pairs.shape[0]


def test_bench_pair_deltas_scalar(benchmark, workload):
    """Same gains via the scalar per-pair reference (the seed hot loop)."""
    ga, _, _, app = workload
    lvl = make_finest_level(ga.edge_arrays(), app.labels.copy())
    indptr, indices, weights = level_csr(lvl)
    pairs = sibling_pairs(lvl.labels)

    def run():
        return [
            pair_delta(lvl.labels, indptr, indices, weights, int(u), int(v), 1)
            for u, v in pairs
        ]

    deltas = benchmark(run)
    assert len(deltas) == pairs.shape[0]


@pytest.fixture(scope="module")
def grid16_distances():
    """Precomputed distances so the djokovic benches time the class
    computation itself, not the shared all-pairs BFS."""
    from repro.graphs.algorithms import all_pairs_distances

    gp = gen.grid(16, 16)
    return gp, all_pairs_distances(gp)


def test_bench_djokovic_vectorized(benchmark, grid16_distances):
    gp, dist = grid16_distances
    edge_class, classes = benchmark(djokovic_classes, gp, dist, "vectorized")
    assert len(classes) == 30


def test_bench_djokovic_loop(benchmark, grid16_distances):
    gp, dist = grid16_distances
    edge_class, classes = benchmark(djokovic_classes, gp, dist, "loop")
    assert len(classes) == 30


def test_bench_contraction(benchmark, workload):
    ga, _, _, app = workload

    def run():
        lvl = make_finest_level(ga.edge_arrays(), app.labels.copy())
        return contract_level(lvl)

    coarse = benchmark(run)
    assert coarse.n <= ga.n


def test_bench_assemble(benchmark, workload):
    ga, _, _, app = workload
    levels = [make_finest_level(ga.edge_arrays(), app.labels.copy())]
    for _ in range(2, app.dim):
        levels.append(contract_level(levels[-1]))

    out = benchmark(assemble, levels, app.dim)
    assert np.array_equal(np.sort(out), np.sort(app.labels))


def test_bench_permute_labels(benchmark, workload):
    ga, _, _, app = workload
    rng = np.random.default_rng(4)
    perm = rng.permutation(app.dim)
    out = benchmark(permute_bits, app.labels, perm)
    assert out.shape == app.labels.shape


# ----------------------------------------------------------------------
# Wide-label (multi-word) benches: same kernels past the 63-class cap
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def wide_workload():
    """BA n=2000 mapped onto fattree2x7 (255 PEs, dim 254 -> 4 words)."""
    ga = gen.barabasi_albert(2000, 4, seed=1)
    gp = gen.fat_tree(2, 7)
    pc = partial_cube_labeling(gp)
    rng = np.random.default_rng(2)
    mu = (np.arange(ga.n) % gp.n).astype(np.int64)
    rng.shuffle(mu)
    app = build_application_labeling(ga, pc, mu, seed=3)
    assert app.labels.ndim == 2  # really on the wide path
    return ga, gp, pc, app


def test_bench_wide_recognition_fattree2x7(benchmark):
    gp = gen.fat_tree(2, 7)
    lab = benchmark(partial_cube_labeling, gp)
    assert lab.dim == 254 and lab.labels.shape == (255, 4)


def test_bench_wide_coco_plus_eval(benchmark, wide_workload):
    ga, _, _, app = wide_workload
    val = benchmark(coco_plus, ga, app.labels, app.dim_p, app.dim_e)
    assert np.isfinite(val)


def test_bench_wide_swap_pass_level1(benchmark, wide_workload):
    ga, _, _, app = wide_workload

    def run():
        lvl = make_finest_level(ga.edge_arrays(), app.labels.copy())
        return swap_pass(lvl, sign=1)

    n_swaps, _ = benchmark(run)
    assert n_swaps >= 0


def test_bench_wide_swap_pass_scalar_reference(benchmark, wide_workload):
    ga, _, _, app = wide_workload

    def run():
        lvl = make_finest_level(ga.edge_arrays(), app.labels.copy())
        return swap_pass_reference(lvl, sign=1)

    n_swaps, _ = benchmark(run)
    assert n_swaps >= 0


def test_bench_wide_contraction(benchmark, wide_workload):
    ga, _, _, app = wide_workload

    def run():
        lvl = make_finest_level(ga.edge_arrays(), app.labels.copy())
        return contract_level(lvl)

    coarse = benchmark(run)
    assert coarse.n <= ga.n


def test_bench_wide_permute_labels(benchmark, wide_workload):
    ga, _, _, app = wide_workload
    rng = np.random.default_rng(4)
    perm = rng.permutation(app.dim)
    out = benchmark(permute_bits, app.labels, perm)
    assert out.shape == app.labels.shape


# ----------------------------------------------------------------------
# Wide-label argsort: radix-style lexsort path vs generic void keys
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def two_word_labels():
    """BA n=2000 labels on fattree2x5 (dim 62 + 5 -> W=2, the radix regime)."""
    ga = gen.barabasi_albert(2000, 4, seed=1)
    gp = gen.fat_tree(2, 5)
    pc = partial_cube_labeling(gp)
    mu = (np.arange(ga.n) % gp.n).astype(np.int64)
    np.random.default_rng(2).shuffle(mu)
    app = build_application_labeling(ga, pc, mu, seed=3)
    assert app.labels.ndim == 2 and app.labels.shape[1] == 2
    return app.labels


def test_bench_wide_argsort_radix(benchmark, two_word_labels):
    """The production path: lexsort over word columns above the threshold."""
    from repro.utils.bitops import RADIX_SORT_THRESHOLD, argsort_labels

    assert two_word_labels.shape[0] >= RADIX_SORT_THRESHOLD
    order = benchmark(argsort_labels, two_word_labels)
    assert order.shape[0] == two_word_labels.shape[0]


def test_bench_wide_argsort_void_reference(benchmark, two_word_labels):
    """The PR-4 fallback: stable argsort of big-endian void keys."""
    from repro.utils.bitops import label_sort_keys

    def run():
        return np.argsort(label_sort_keys(two_word_labels), kind="stable")

    order = benchmark(run)
    from repro.utils.bitops import argsort_labels

    assert np.array_equal(order, argsort_labels(two_word_labels))
