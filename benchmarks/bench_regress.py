"""Kernel regression smoke runner: times before/after and emits JSON.

Runs the seed ("before") and kernel ("after") implementations of TIMER's
hot loops on the standard micro-benchmark workload (BA n=2000 m=4 mapped
onto a 16x16 grid) and writes ``BENCH_kernels.json`` next to this file, so
future PRs have a perf trajectory to compare against:

    PYTHONPATH=src python benchmarks/bench_regress.py

The "before" measurements reconstruct the seed paths from primitives that
are deliberately kept in-tree (``swap_pass_reference``, the per-vertex
``bfs_distances`` loop, ``djokovic_classes(method="loop")``), so the
comparison stays honest as the library evolves.  Each measurement is
best-of-``repeats`` wall time; the runner exits non-zero if a kernel
regresses below its floor (swap_pass >= 5x, partial-cube labeling >= 3x),
making it usable as a CI smoke gate.

The ``wide_*`` entries time the same kernels on the multi-word label
representation (fattree2x7: 255 PEs, 254 classes, 4-word labels) --
their floors prove the wide path stays vectorized, while the unchanged
narrow floors prove the ``W == 1`` fast path did not slow down under the
representation split.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.contraction import make_finest_level
from repro.core.kernels import get_backend
from repro.core.labels import build_application_labeling
from repro.core.swaps import swap_pass, swap_pass_reference
from repro.graphs import generators as gen
from repro.graphs.algorithms import all_pairs_distances, bfs_distances
from repro.partialcube.djokovic import (
    _djokovic_classes_loop,
    djokovic_classes,
    partial_cube_labeling,
)

OUTPUT = Path(__file__).parent / "BENCH_kernels.json"

#: speedup floors enforced by the runner (and recorded in the JSON)
FLOORS = {
    "swap_pass": 5.0,
    "partial_cube_labeling": 3.0,
    "wide_swap_pass": 3.0,
    "wide_partial_cube_labeling": 3.0,
}


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _workload():
    ga = gen.barabasi_albert(2000, 4, seed=1)
    gp = gen.grid(16, 16)
    pc = partial_cube_labeling(gp)
    rng = np.random.default_rng(2)
    mu = (np.arange(ga.n) % gp.n).astype(np.int64)
    rng.shuffle(mu)
    app = build_application_labeling(ga, pc, mu, seed=3)
    return ga, gp, app


def _seed_partial_cube_labeling(gp):
    """The seed recognition path: one Python BFS per vertex + class loop."""
    distances = np.stack([bfs_distances(gp, v) for v in range(gp.n)])
    return _djokovic_classes_loop(gp, distances)


def run(repeats: int = 5) -> dict:
    ga, gp, app = _workload()
    edges = ga.edge_arrays()
    results: dict = {}

    # --- swap pass: scalar greedy sweep vs batch kernel -----------------
    def before_swaps():
        lvl = make_finest_level(edges, app.labels.copy())
        return swap_pass_reference(lvl, sign=1)

    def after_swaps():
        lvl = make_finest_level(edges, app.labels.copy())
        return swap_pass(lvl, sign=1)

    # correctness gate before timing: byte-identical outcomes
    la = make_finest_level(edges, app.labels.copy())
    lb = make_finest_level(edges, app.labels.copy())
    ra = swap_pass_reference(la, sign=1)
    rb = swap_pass(lb, sign=1)
    if ra != rb or not np.array_equal(la.labels, lb.labels):
        raise AssertionError(f"batch swap pass diverged from scalar: {ra} vs {rb}")
    results["swap_pass"] = {
        "workload": "BA n=2000 m=4 on 16x16 grid, sign=+1, 1 sweep",
        "before_s": _best_of(before_swaps, repeats),
        "after_s": _best_of(after_swaps, repeats),
    }

    # --- partial-cube recognition: seed BFS+loop vs batched kernels -----
    def before_pc():
        return _seed_partial_cube_labeling(gp)

    def after_pc():
        return partial_cube_labeling(gp)

    ec_a, cls_a = _seed_partial_cube_labeling(gp)
    ec_b, cls_b = djokovic_classes(gp, all_pairs_distances(gp))
    if not np.array_equal(ec_a, ec_b) or cls_a != cls_b:
        raise AssertionError("vectorized djokovic classes diverged from loop")
    results["partial_cube_labeling"] = {
        "workload": "16x16 grid (dim 30), full recognition + labeling",
        "before_s": _best_of(before_pc, repeats),
        "after_s": _best_of(after_pc, repeats),
    }

    # --- all-pairs distances: per-vertex Python BFS vs bitset BFS -------
    def before_apd():
        return np.stack([bfs_distances(gp, v) for v in range(gp.n)])

    assert np.array_equal(before_apd(), all_pairs_distances(gp))
    results["all_pairs_distances"] = {
        "workload": "16x16 grid, n=256 sources",
        "before_s": _best_of(before_apd, repeats),
        "after_s": _best_of(lambda: all_pairs_distances(gp), repeats),
    }

    # --- djokovic classes alone (distances precomputed) -----------------
    dist = all_pairs_distances(gp)
    results["djokovic_classes"] = {
        "workload": "16x16 grid, distances precomputed, production default (auto)",
        "before_s": _best_of(lambda: djokovic_classes(gp, dist, "loop"), repeats),
        "after_s": _best_of(lambda: djokovic_classes(gp, dist, "auto"), repeats),
    }

    # --- wide labels: same kernels past the 63-class cap ----------------
    ft = gen.fat_tree(2, 7)  # 255 PEs, 254 Djokovic classes, W = 4
    ft_pc = partial_cube_labeling(ft)
    mu_ft = (np.arange(ga.n) % ft.n).astype(np.int64)
    np.random.default_rng(2).shuffle(mu_ft)
    wide_app = build_application_labeling(ga, ft_pc, mu_ft, seed=3)
    assert wide_app.labels.ndim == 2  # really multi-word

    def before_wide_swaps():
        lvl = make_finest_level(edges, wide_app.labels.copy())
        return swap_pass_reference(lvl, sign=1)

    def after_wide_swaps():
        lvl = make_finest_level(edges, wide_app.labels.copy())
        return swap_pass(lvl, sign=1)

    wa = make_finest_level(edges, wide_app.labels.copy())
    wb = make_finest_level(edges, wide_app.labels.copy())
    rwa = swap_pass_reference(wa, sign=1)
    rwb = swap_pass(wb, sign=1)
    if rwa != rwb or not np.array_equal(wa.labels, wb.labels):
        raise AssertionError(f"wide batch swap diverged from scalar: {rwa} vs {rwb}")
    results["wide_swap_pass"] = {
        "workload": "BA n=2000 m=4 on fattree2x7 (dim 256, 4-word labels)",
        "before_s": _best_of(before_wide_swaps, repeats),
        "after_s": _best_of(after_wide_swaps, repeats),
    }

    def before_wide_pc():
        return _seed_partial_cube_labeling(ft)

    def after_wide_pc():
        return partial_cube_labeling(ft)

    results["wide_partial_cube_labeling"] = {
        "workload": "fattree2x7 (255 switches, dim 254), recognition + labeling",
        "before_s": _best_of(before_wide_pc, repeats),
        "after_s": _best_of(after_wide_pc, repeats),
    }

    # --- edge_arrays caching --------------------------------------------
    def before_edges():
        # fresh graph per call = the seed behavior (rebuild every time)
        g2 = ga.copy()
        for _ in range(10):
            g2._edge_arrays_cache = None
            g2.edge_arrays()

    def after_edges():
        g2 = ga.copy()
        for _ in range(10):
            g2.edge_arrays()

    results["edge_arrays_x10"] = {
        "workload": "BA n=2000 m=4, 10 objective-style accesses",
        "before_s": _best_of(before_edges, repeats),
        "after_s": _best_of(after_edges, repeats),
    }

    for name, entry in results.items():
        entry["speedup"] = entry["before_s"] / entry["after_s"]
        entry["floor"] = FLOORS.get(name)

    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "kernel_backend": get_backend(),
            "repeats": repeats,
        },
        "kernels": results,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument(
        "--floor-scale",
        type=float,
        default=1.0,
        help="multiply the speedup floors before enforcing them; CI uses a "
        "value < 1 so shared-runner timing noise cannot fail unrelated PRs "
        "(the recorded floors in the JSON stay unscaled)",
    )
    args = ap.parse_args(argv)
    payload = run(repeats=args.repeats)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    failed = []
    for name, entry in payload["kernels"].items():
        floor = entry.get("floor")
        line = (
            f"{name:24s} before {entry['before_s'] * 1e3:8.2f} ms   "
            f"after {entry['after_s'] * 1e3:8.2f} ms   "
            f"speedup {entry['speedup']:6.1f}x"
        )
        if floor is not None:
            enforced = floor * args.floor_scale
            line += f"   (floor {floor:.0f}x"
            if args.floor_scale != 1.0:
                line += f", enforcing {enforced:.1f}x"
            line += ")"
            if entry["speedup"] < enforced:
                failed.append(name)
                line += "  FAIL"
        print(line)
    print(f"wrote {OUTPUT}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
