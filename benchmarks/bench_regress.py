"""Kernel regression smoke runner: times before/after and emits JSON.

Runs the seed ("before") and kernel ("after") implementations of TIMER's
hot loops on the standard micro-benchmark workload (BA n=2000 m=4 mapped
onto a 16x16 grid) and writes ``BENCH_kernels.json`` next to this file, so
future PRs have a perf trajectory to compare against:

    PYTHONPATH=src python benchmarks/bench_regress.py

The "before" measurements reconstruct the seed paths from primitives that
are deliberately kept in-tree (``swap_pass_reference``, the per-vertex
``bfs_distances`` loop, ``djokovic_classes(method="loop")``), so the
comparison stays honest as the library evolves.  Each measurement is
best-of-``repeats`` wall time; the runner exits non-zero if a kernel
regresses below its floor (swap_pass >= 5x, partial-cube labeling >= 3x),
making it usable as a CI smoke gate.

The ``wide_*`` entries time the same kernels on the multi-word label
representation (fattree2x7: 255 PEs, 254 classes, 4-word labels) --
their floors prove the wide path stays vectorized, while the unchanged
narrow floors prove the ``W == 1`` fast path did not slow down under the
representation split.

Where numba imports (the CI ``numba-kernels`` job; never the base
image), the ``numba_*`` entries additionally time the compiled backend
tiers on larger workloads: serial numba vs the numpy reference
(recorded, no floor -- the win depends on the host), and numba-parallel
vs serial numba (floored: the thread fan-out must actually pay for
itself on the swap fixpoint and the sharded BFS).  Every tier is gated
on byte-identical results before any timing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.backend import available_backends, use_backend
from repro.core.contraction import make_finest_level
from repro.core.kernels import get_backend
from repro.core.labels import build_application_labeling
from repro.core.swaps import swap_pass, swap_pass_reference
from repro.graphs import generators as gen
from repro.graphs.algorithms import all_pairs_distances, bfs_distances
from repro.partialcube.djokovic import (
    _djokovic_classes_loop,
    djokovic_classes,
    partial_cube_labeling,
)

OUTPUT = Path(__file__).parent / "BENCH_kernels.json"

#: speedup floors enforced by the runner (and recorded in the JSON)
FLOORS = {
    "swap_pass": 5.0,
    "partial_cube_labeling": 3.0,
    "wide_swap_pass": 3.0,
    "wide_partial_cube_labeling": 3.0,
    # compiled tiers (present only where numba imports): the parallel
    # backend must beat serial numba on the big workloads
    "numba_parallel_swap_pass": 1.1,
    "numba_parallel_all_pairs": 1.3,
}


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _workload():
    ga = gen.barabasi_albert(2000, 4, seed=1)
    gp = gen.grid(16, 16)
    pc = partial_cube_labeling(gp)
    rng = np.random.default_rng(2)
    mu = (np.arange(ga.n) % gp.n).astype(np.int64)
    rng.shuffle(mu)
    app = build_application_labeling(ga, pc, mu, seed=3)
    return ga, gp, app


def _seed_partial_cube_labeling(gp):
    """The seed recognition path: one Python BFS per vertex + class loop."""
    distances = np.stack([bfs_distances(gp, v) for v in range(gp.n)])
    return _djokovic_classes_loop(gp, distances)


def _backend_tiers(repeats: int) -> dict:
    """Time the compiled backend tiers against each other (numba hosts).

    Bigger workloads than the main entries: the parallel tier's floors
    assert that thread fan-out wins, which needs enough work per thread
    to amortize the fork/join.
    """
    tiers = [t for t in ("numba", "numba-parallel") if t in available_backends()]
    if not tiers:
        return {}

    big = gen.barabasi_albert(20000, 4, seed=7)
    big_edges = big.edge_arrays()
    rng = np.random.default_rng(8)
    labels = rng.choice(1 << 16, size=big.n, replace=False).astype(np.int64)
    gp_big = gen.grid(40, 40)

    def swap_with(name):
        with use_backend(name):
            lvl = make_finest_level(big_edges, labels.copy())
            res = swap_pass(lvl, sign=1)
        return res, lvl.labels

    def apd_with(name):
        with use_backend(name):
            return all_pairs_distances(gp_big)

    # Correctness gate doubles as the JIT warmup, so _best_of never
    # times compilation.
    ref_swap, ref_labels = swap_with("numpy")
    ref_dist = apd_with("numpy")
    for name in tiers:
        got, got_labels = swap_with(name)
        if got != ref_swap or not np.array_equal(ref_labels, got_labels):
            raise AssertionError(f"{name} swap pass diverged from numpy: {got}")
        if not np.array_equal(ref_dist, apd_with(name)):
            raise AssertionError(f"{name} all-pairs BFS diverged from numpy")

    results: dict = {}
    swap_wl = "BA n=20000 m=4, sign=+1, 1 sweep"
    apd_wl = "40x40 grid, n=1600 sources (25 bitset words)"
    times_swap = {
        name: _best_of(lambda name=name: swap_with(name), repeats)
        for name in ["numpy", *tiers]
    }
    times_apd = {
        name: _best_of(lambda name=name: apd_with(name), repeats)
        for name in ["numpy", *tiers]
    }
    results["numba_swap_pass"] = {
        "workload": swap_wl + " (numpy vs serial numba)",
        "before_s": times_swap["numpy"],
        "after_s": times_swap["numba"],
    }
    results["numba_all_pairs"] = {
        "workload": apd_wl + " (numpy vs serial numba)",
        "before_s": times_apd["numpy"],
        "after_s": times_apd["numba"],
    }
    if "numba-parallel" in tiers:
        results["numba_parallel_swap_pass"] = {
            "workload": swap_wl + " (serial numba vs numba-parallel)",
            "before_s": times_swap["numba"],
            "after_s": times_swap["numba-parallel"],
        }
        results["numba_parallel_all_pairs"] = {
            "workload": apd_wl + " (serial numba vs numba-parallel)",
            "before_s": times_apd["numba"],
            "after_s": times_apd["numba-parallel"],
        }
    return results


def run(repeats: int = 5) -> dict:
    ga, gp, app = _workload()
    edges = ga.edge_arrays()
    results: dict = {}

    # --- swap pass: scalar greedy sweep vs batch kernel -----------------
    def before_swaps():
        lvl = make_finest_level(edges, app.labels.copy())
        return swap_pass_reference(lvl, sign=1)

    def after_swaps():
        lvl = make_finest_level(edges, app.labels.copy())
        return swap_pass(lvl, sign=1)

    # correctness gate before timing: byte-identical outcomes
    la = make_finest_level(edges, app.labels.copy())
    lb = make_finest_level(edges, app.labels.copy())
    ra = swap_pass_reference(la, sign=1)
    rb = swap_pass(lb, sign=1)
    if ra != rb or not np.array_equal(la.labels, lb.labels):
        raise AssertionError(f"batch swap pass diverged from scalar: {ra} vs {rb}")
    results["swap_pass"] = {
        "workload": "BA n=2000 m=4 on 16x16 grid, sign=+1, 1 sweep",
        "before_s": _best_of(before_swaps, repeats),
        "after_s": _best_of(after_swaps, repeats),
    }

    # --- partial-cube recognition: seed BFS+loop vs batched kernels -----
    def before_pc():
        return _seed_partial_cube_labeling(gp)

    def after_pc():
        return partial_cube_labeling(gp)

    ec_a, cls_a = _seed_partial_cube_labeling(gp)
    ec_b, cls_b = djokovic_classes(gp, all_pairs_distances(gp))
    if not np.array_equal(ec_a, ec_b) or cls_a != cls_b:
        raise AssertionError("vectorized djokovic classes diverged from loop")
    results["partial_cube_labeling"] = {
        "workload": "16x16 grid (dim 30), full recognition + labeling",
        "before_s": _best_of(before_pc, repeats),
        "after_s": _best_of(after_pc, repeats),
    }

    # --- all-pairs distances: per-vertex Python BFS vs bitset BFS -------
    def before_apd():
        return np.stack([bfs_distances(gp, v) for v in range(gp.n)])

    assert np.array_equal(before_apd(), all_pairs_distances(gp))
    results["all_pairs_distances"] = {
        "workload": "16x16 grid, n=256 sources",
        "before_s": _best_of(before_apd, repeats),
        "after_s": _best_of(lambda: all_pairs_distances(gp), repeats),
    }

    # --- djokovic classes alone (distances precomputed) -----------------
    dist = all_pairs_distances(gp)
    results["djokovic_classes"] = {
        "workload": "16x16 grid, distances precomputed, production default (auto)",
        "before_s": _best_of(lambda: djokovic_classes(gp, dist, "loop"), repeats),
        "after_s": _best_of(lambda: djokovic_classes(gp, dist, "auto"), repeats),
    }

    # --- wide labels: same kernels past the 63-class cap ----------------
    ft = gen.fat_tree(2, 7)  # 255 PEs, 254 Djokovic classes, W = 4
    ft_pc = partial_cube_labeling(ft)
    mu_ft = (np.arange(ga.n) % ft.n).astype(np.int64)
    np.random.default_rng(2).shuffle(mu_ft)
    wide_app = build_application_labeling(ga, ft_pc, mu_ft, seed=3)
    assert wide_app.labels.ndim == 2  # really multi-word

    def before_wide_swaps():
        lvl = make_finest_level(edges, wide_app.labels.copy())
        return swap_pass_reference(lvl, sign=1)

    def after_wide_swaps():
        lvl = make_finest_level(edges, wide_app.labels.copy())
        return swap_pass(lvl, sign=1)

    wa = make_finest_level(edges, wide_app.labels.copy())
    wb = make_finest_level(edges, wide_app.labels.copy())
    rwa = swap_pass_reference(wa, sign=1)
    rwb = swap_pass(wb, sign=1)
    if rwa != rwb or not np.array_equal(wa.labels, wb.labels):
        raise AssertionError(f"wide batch swap diverged from scalar: {rwa} vs {rwb}")
    results["wide_swap_pass"] = {
        "workload": "BA n=2000 m=4 on fattree2x7 (dim 256, 4-word labels)",
        "before_s": _best_of(before_wide_swaps, repeats),
        "after_s": _best_of(after_wide_swaps, repeats),
    }

    def before_wide_pc():
        return _seed_partial_cube_labeling(ft)

    def after_wide_pc():
        return partial_cube_labeling(ft)

    results["wide_partial_cube_labeling"] = {
        "workload": "fattree2x7 (255 switches, dim 254), recognition + labeling",
        "before_s": _best_of(before_wide_pc, repeats),
        "after_s": _best_of(after_wide_pc, repeats),
    }

    # --- edge_arrays caching --------------------------------------------
    def before_edges():
        # fresh graph per call = the seed behavior (rebuild every time)
        g2 = ga.copy()
        for _ in range(10):
            g2._edge_arrays_cache = None
            g2.edge_arrays()

    def after_edges():
        g2 = ga.copy()
        for _ in range(10):
            g2.edge_arrays()

    results["edge_arrays_x10"] = {
        "workload": "BA n=2000 m=4, 10 objective-style accesses",
        "before_s": _best_of(before_edges, repeats),
        "after_s": _best_of(after_edges, repeats),
    }

    # --- compiled backend tiers (numba hosts only) ----------------------
    results.update(_backend_tiers(repeats))

    for name, entry in results.items():
        entry["speedup"] = entry["before_s"] / entry["after_s"]
        entry["floor"] = FLOORS.get(name)

    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "kernel_backend": get_backend(),
            "backends_available": available_backends(),
            "repeats": repeats,
        },
        "kernels": results,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument(
        "--floor-scale",
        type=float,
        default=1.0,
        help="multiply the speedup floors before enforcing them; CI uses a "
        "value < 1 so shared-runner timing noise cannot fail unrelated PRs "
        "(the recorded floors in the JSON stay unscaled)",
    )
    args = ap.parse_args(argv)
    # The "before" measurements pin explicit djokovic strategies through
    # the deprecated method= shim on purpose; don't let the shim warn.
    import warnings

    warnings.simplefilter("ignore", DeprecationWarning)
    payload = run(repeats=args.repeats)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    failed = []
    for name, entry in payload["kernels"].items():
        floor = entry.get("floor")
        line = (
            f"{name:24s} before {entry['before_s'] * 1e3:8.2f} ms   "
            f"after {entry['after_s'] * 1e3:8.2f} ms   "
            f"speedup {entry['speedup']:6.1f}x"
        )
        if floor is not None:
            enforced = floor * args.floor_scale
            line += f"   (floor {floor:.0f}x"
            if args.floor_scale != 1.0:
                line += f", enforcing {enforced:.1f}x"
            line += ")"
            if entry["speedup"] < enforced:
                failed.append(name)
                line += "  FAIL"
        print(line)
    print(f"wrote {OUTPUT}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
