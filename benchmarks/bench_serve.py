"""Serving benchmarks: batching, cache replay, sharding, tracing cost.

Four gated measurements against the real HTTP service, all fired with
deterministic open-loop load profiles (mixed topologies from the
``smoke`` scenario, exponential arrivals):

1. **Batching** -- the batched server (window + max_batch + coalescing)
   vs. the same service with batching disabled (``window=0,
   max_batch=1``) on identical traffic.  Both servers run with the
   response cache *off* so the ratio isolates what batching itself buys.
   Gate: ``speedup >= 2.0``.
2. **Response-cache replay** -- one cache-enabled server, the same
   hot-key profile fired twice.  The second pass replays identities the
   first pass computed, so its requests are answered from the
   run-identity response cache across batching windows -- full fidelity,
   zero recompute (the JSON records the replay pass's batch count and
   ``labelings_computed``).  Gate: replay ``hit_rate >= 0.5``.
3. **Shard scaling** -- a 2-shard cluster vs. a 1-shard cluster (real
   worker processes, consistent-hash front end) on identical traffic
   spread uniformly over the two ``shard-scale`` topologies, with each
   worker's session *and pipeline* LRUs limited to 1 and both disk and
   response caches off.  Rendezvous routing splits the pair 1 + 1, and
   the shard1-routed ``dragonfly16x6`` (1024 PEs) carries expensive
   precomputation.  One worker cannot hold both topologies and swaps on
   every topology switch (~half the requests), re-paying labelings and
   distance matrices each time; two workers each own their routed
   topology and stay warm forever -- locality, not core count, is the
   win, so the gate holds on a single-core runner.
   Gate: ``scaling >= 1.6``.
4. **Cost of tracing** -- the same server and traffic with end-to-end
   tracing on vs. off (response cache disabled on both sides so every
   request walks the instrumented path).  Gate: traced/untraced
   throughput ratio ``>= 0.98`` -- tracing may cost at most 2%.

Writes ``BENCH_serve.json`` next to this file and exits non-zero if any
gate fails, making it a CI gate like ``bench_regress.py``:

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
from pathlib import Path

from repro.api.registry import REGISTRY, SCENARIO
from repro.api.topology import LABELING_CACHE_ENV
from repro.experiments.matrix import Scenario
from repro.experiments.runner import ExperimentConfig
from repro.serve.loadgen import LoadProfile, http_request_json, run_load
from repro.serve.service import ServeSettings, ServerThread
from repro.serve.shard import FrontendThread, ShardCluster

OUTPUT = Path(__file__).parent / "BENCH_serve.json"

# Bench-local scenario for the shard-scaling section, registered at
# import scope (REG001).  Rendezvous over {shard0, shard1} splits the
# topology pair 1 + 1: fattree2x6 -> shard0, dragonfly16x6 -> shard1.
# dragonfly16x6's 1024-PE labeling + distance matrix is the expensive
# precomputation one thrashing worker keeps re-paying; the tiny
# application graphs keep the warm per-request cost low so that
# eviction surplus dominates the measured ratio.
REGISTRY.register(
    SCENARIO,
    "shard-scale",
    Scenario(
        "shard-scale",
        ExperimentConfig(
            instances=("p2p-Gnutella",),
            topologies=("fattree2x6", "dragonfly16x6"),
            cases=("c2",),
            repetitions=1,
            n_hierarchies=0,
            divisor=1024,
            n_min=48,
            n_max=64,
        ),
        "session-locality workload for the shard-scaling gate",
    ),
)

#: enforced batched/unbatched throughput ratio
SPEEDUP_FLOOR = 2.0
#: enforced response-cache hit rate on the replayed pass
CACHE_HIT_FLOOR = 0.5
#: enforced 2-shard / 1-shard throughput ratio on the thrash profile
SHARD_SCALING_FLOOR = 1.6
#: enforced traced/untraced throughput ratio (tracing costs <= 2%)
TRACING_RATIO_FLOOR = 0.98


def _server_stats(metrics: dict) -> dict:
    return {
        "batches_total": metrics.get("batches_total", 0),
        "coalesced_total": metrics.get("coalesced_total", 0),
        "batch_size": metrics.get("batch_size", {}),
        "compute_seconds": metrics.get("compute_seconds", {}),
        "labelings_computed": metrics.get("labelings_computed", 0),
        "response_cache_hits_total": metrics.get(
            "response_cache_hits_total", 0
        ),
        "response_cache_misses_total": metrics.get(
            "response_cache_misses_total", 0
        ),
        "sessions_evictions": metrics.get("cache_sessions_evictions", 0),
    }


async def _fire(profile: LoadProfile, host: str, port: int, label: str):
    """One load run + metrics snapshot against a live endpoint."""
    status, health = await http_request_json(host, port, "GET", "/healthz")
    assert status == 200 and health.get("status") == "ok", (label, health)
    report = await run_load(profile, url=f"http://{host}:{port}")
    status, metrics = await http_request_json(
        host, port, "GET", "/metrics?format=json"
    )
    assert status == 200, label
    if report.errors:
        raise AssertionError(f"{label}: load run had errors: {report.errors}")
    return report, metrics


def _measure(profile: LoadProfile, settings: ServeSettings, label: str) -> dict:
    with ServerThread(settings) as srv:
        report, metrics = asyncio.run(_fire(profile, srv.host, srv.port, label))
    return {
        "settings": {
            "window_ms": settings.window_ms,
            "max_batch": settings.max_batch,
            "jobs": settings.jobs,
            "response_cache": settings.response_cache,
        },
        "report": report.to_json(),
        "server": _server_stats(metrics),
    }


def _derive(profile: LoadProfile, **overrides) -> LoadProfile:
    base = profile.__dict__ | overrides
    return LoadProfile(**base)


# ----------------------------------------------------------------------
# Section 1: batched vs. unbatched (response cache off on both sides)
# ----------------------------------------------------------------------
def run_batching(profile: LoadProfile, jobs: int = 1) -> dict:
    batched_settings = ServeSettings(
        port=0, window_ms=60.0, max_batch=24, max_queue=4096, jobs=jobs,
        response_cache=0,
    )
    unbatched_settings = ServeSettings(
        port=0, window_ms=0.0, max_batch=1, max_queue=4096, jobs=1,
        response_cache=0,
    )

    # Warmup: touch every topology/config group once so session caches
    # are hot for both measured runs (they share the process-wide LRU).
    warm_profile = _derive(
        profile,
        requests=min(16, profile.requests),
        rate=200.0,
        seed=profile.seed + 1,
        hot_fraction=0.0,  # spread over the whole catalog
    )
    _measure(warm_profile, batched_settings, "warmup")

    batched = _measure(profile, batched_settings, "batched")
    unbatched = _measure(profile, unbatched_settings, "unbatched")
    speedup = (
        batched["report"]["throughput_rps"]
        / unbatched["report"]["throughput_rps"]
    )
    mean_batch = batched["report"]["batch"].get("mean_size", 0.0)
    if not mean_batch > 1.0:
        raise AssertionError(
            f"no batch amortization: mean served batch size {mean_batch}"
        )
    return {
        "batched": batched,
        "unbatched": unbatched,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }


# ----------------------------------------------------------------------
# Section 2: cross-window response-cache replay
# ----------------------------------------------------------------------
def run_response_cache(profile: LoadProfile) -> dict:
    settings = ServeSettings(
        port=0, window_ms=25.0, max_batch=24, max_queue=4096,
    )
    cache_profile = _derive(profile, repeat_fraction=0.6)
    with ServerThread(settings) as srv:

        async def go():
            first = await _fire(cache_profile, srv.host, srv.port, "cache-1")
            replay = await _fire(cache_profile, srv.host, srv.port, "cache-2")
            return first, replay

        (first_report, first_metrics), (replay_report, replay_metrics) = (
            asyncio.run(go())
        )
    replay_hits = (
        replay_metrics["response_cache_hits_total"]
        - first_metrics["response_cache_hits_total"]
    )
    replay_batches = (
        replay_metrics["batches_total"] - first_metrics["batches_total"]
    )
    hit_rate = replay_hits / replay_report.requests
    return {
        "first_pass": {
            "report": first_report.to_json(),
            "server": _server_stats(first_metrics),
        },
        "replay": {
            "report": replay_report.to_json(),
            "server": _server_stats(replay_metrics),
            # recompute on the replayed pass only: cached answers cost
            # neither a batch dispatch nor a labeling
            "batches": replay_batches,
            "labelings_computed": (
                replay_metrics.get("labelings_computed", 0)
                - first_metrics.get("labelings_computed", 0)
            ),
        },
        "hit_rate": hit_rate,
        "replay_speedup": (
            replay_report.throughput_rps / first_report.throughput_rps
            if first_report.throughput_rps > 0 else 0.0
        ),
        "floor": CACHE_HIT_FLOOR,
    }


# ----------------------------------------------------------------------
# Section 3: 2-shard vs. 1-shard scaling (session-locality workload)
# ----------------------------------------------------------------------
def _measure_cluster(profile: LoadProfile, shards: int, label: str) -> dict:
    # Workers sized so one process cannot hold both shard-scale
    # topologies: session LRU of 1 AND pipeline LRU of 1 (pipelines pin
    # their topology session, so both bounds are needed to actually
    # evict a labeling), no disk tier, no response cache.  The 1-shard
    # cluster re-pays labelings + distance matrices on every topology
    # switch (~half the requests); the 2-shard cluster's rendezvous
    # split (1 + 1) fits each worker exactly.  Batching is disabled
    # inside the workers (identically for both cluster sizes) so
    # coalescing cannot amortize the eviction cost this section
    # isolates -- section 1 measures batching.
    settings = ServeSettings(
        port=0, window_ms=0.0, max_batch=1, max_queue=4096,
        max_sessions=1, max_pipelines=1, response_cache=0,
    )
    # The disk tier would absorb exactly the recompute this section
    # measures; forked workers inherit the environment, so clear it for
    # the cluster's lifetime.
    saved_disk = os.environ.pop(LABELING_CACHE_ENV, None)
    try:
        with ShardCluster(settings, shards) as cluster:
            with FrontendThread(cluster.backends) as front:
                report, metrics = asyncio.run(
                    _fire(profile, front.host, front.port, label)
                )
    finally:
        if saved_disk is not None:
            os.environ[LABELING_CACHE_ENV] = saved_disk
    return {
        "shards": shards,
        "settings": {
            "window_ms": settings.window_ms,
            "max_batch": settings.max_batch,
            "max_sessions": settings.max_sessions,
            "max_pipelines": settings.max_pipelines,
            "response_cache": settings.response_cache,
        },
        "report": report.to_json(),
        "server": _server_stats(metrics),
        "frontend": metrics.get("frontend", {}),
    }


def run_sharding(profile: LoadProfile) -> dict:
    # hot = the catalog's first entry (fattree2x6) at fraction 0.5: with
    # a 2-entry catalog that is *exactly* uniform traffic, and it keeps
    # both pools non-degenerate.  nh=0 minimizes warm per-request work
    # so the session-eviction surplus dominates.
    shard_profile = _derive(
        profile,
        scenario="shard-scale",
        nh=0,
        seed_pool=1,
        hot_keys=1,
        hot_fraction=0.5,
    )
    one = _measure_cluster(shard_profile, 1, "one-shard")
    two = _measure_cluster(shard_profile, 2, "two-shards")
    scaling = (
        two["report"]["throughput_rps"] / one["report"]["throughput_rps"]
    )
    return {
        "one_shard": one,
        "two_shards": two,
        "scaling": scaling,
        "floor": SHARD_SCALING_FLOOR,
    }


# ----------------------------------------------------------------------
# Section 4: cost of tracing (traced vs. untraced, identical traffic)
# ----------------------------------------------------------------------
def run_tracing_overhead(profile: LoadProfile) -> dict:
    # Span bookkeeping is a few dict writes and one sha256 per request
    # against milliseconds of mapping compute, so the traced server must
    # stay within 2% of the untraced one.  Response cache off so every
    # request exercises the full span tree (cache hits would hide the
    # instrumented path); batching identical on both sides.  The traced
    # server runs *first* so any residual session warmup from earlier
    # sections biases against the gate, not for it.
    base = dict(
        port=0, window_ms=25.0, max_batch=24, max_queue=4096,
        response_cache=0,
    )
    traced = _measure(profile, ServeSettings(**base, trace=True), "traced")
    untraced = _measure(
        profile, ServeSettings(**base, trace=False), "untraced"
    )
    ratio = (
        traced["report"]["throughput_rps"]
        / untraced["report"]["throughput_rps"]
    )
    return {
        "traced": traced,
        "untraced": untraced,
        "throughput_ratio": ratio,
        "overhead_pct": max(0.0, (1.0 - ratio) * 100.0),
        "floor": TRACING_RATIO_FLOOR,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=80)
    ap.add_argument("--rate", type=float, default=300.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--nh", type=int, default=1)
    ap.add_argument("--jobs", type=int, default=1,
                    help="run_batch worker processes inside the batched server")
    ap.add_argument("--shard-requests", type=int, default=96,
                    help="requests per cluster in the shard-scaling run")
    ap.add_argument(
        "--floor-scale",
        type=float,
        default=1.0,
        help="multiply every floor before enforcing it; CI uses < 1 "
        "to absorb shared-runner noise (the JSON records unscaled floors)",
    )
    args = ap.parse_args(argv)
    profile = LoadProfile(
        scenario="smoke",
        requests=args.requests,
        rate=args.rate,
        seed=args.seed,
        nh=args.nh,
        seed_pool=1,
        hot_keys=3,
        hot_fraction=0.8,
    )
    batching = run_batching(profile, jobs=args.jobs)
    response_cache = run_response_cache(profile)
    sharding = run_sharding(
        _derive(profile, requests=args.shard_requests, rate=150.0)
    )
    tracing = run_tracing_overhead(profile)
    payload = {
        "meta": {
            "python": platform.python_version(),
            "workload": (
                f"{profile.requests} requests at {profile.rate:g}/s, "
                f"scenario {profile.scenario!r}, nh={profile.nh}, "
                f"hot {profile.hot_keys} keys x {profile.hot_fraction:g}"
            ),
            "profile": profile.__dict__ | {"matrix_path": profile.matrix_path},
        },
        # batching section stays at the top level: bench_regress-style
        # consumers read "speedup"/"floor" here as before
        **batching,
        "response_cache": response_cache,
        "sharding": sharding,
        "tracing": tracing,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for label in ("batched", "unbatched"):
        rep = payload[label]["report"]
        lat = rep["latency"]
        print(
            f"{label:10s} {rep['throughput_rps']:7.1f} rps   "
            f"p50 {lat['p50'] * 1e3:7.0f} ms   p95 {lat['p95'] * 1e3:7.0f} ms   "
            f"p99 {lat['p99'] * 1e3:7.0f} ms   mean batch "
            f"{rep['batch'].get('mean_size', 1.0):5.2f}"
        )
    print(
        f"cache      replay hit rate {response_cache['hit_rate']:.2f}  "
        f"({response_cache['replay']['batches']} batches, "
        f"{response_cache['replay']['report']['cached']} cached replies, "
        f"{response_cache['replay_speedup']:.2f}x replay speedup)"
    )
    for key in ("one_shard", "two_shards"):
        rep = sharding[key]["report"]
        print(
            f"{key:10s} {rep['throughput_rps']:7.1f} rps   "
            f"sessions evicted {sharding[key]['server']['sessions_evictions']}"
        )
    print(
        f"tracing    {tracing['traced']['report']['throughput_rps']:7.1f} rps"
        f" traced vs "
        f"{tracing['untraced']['report']['throughput_rps']:7.1f} rps bare  "
        f"({tracing['overhead_pct']:.1f}% overhead)"
    )

    gates = [
        ("speedup", payload["speedup"], SPEEDUP_FLOOR),
        ("cache_hit_rate", response_cache["hit_rate"], CACHE_HIT_FLOOR),
        ("shard_scaling", sharding["scaling"], SHARD_SCALING_FLOOR),
        ("tracing_ratio", tracing["throughput_ratio"], TRACING_RATIO_FLOOR),
    ]
    failed = []
    for name, value, floor in gates:
        enforced = floor * args.floor_scale
        verdict = "ok" if value >= enforced else "FAIL"
        if verdict == "FAIL":
            failed.append(name)
        print(
            f"{name} {value:.2f} (floor {floor:g}, enforcing {enforced:g})"
            f"  {verdict}"
        )
    print(f"wrote {OUTPUT}")
    return 0 if not failed else 1


if __name__ == "__main__":
    sys.exit(main())
