"""Serving benchmark: batched vs. batching-disabled throughput + tails.

Starts the real HTTP service twice in-process -- once with
micro-batching (window + max_batch + coalescing) and once with batching
disabled (``window=0, max_batch=1``) -- and fires the *identical*
deterministic open-loop load profile at both (mixed topologies from the
``smoke`` scenario, zipf-ish hot-key skew, exponential arrivals).
Writes ``BENCH_serve.json`` next to this file and exits non-zero if
batched throughput falls below ``--floor`` (default 2x) times the
unbatched server's, making it a CI gate like ``bench_regress.py``:

    PYTHONPATH=src python benchmarks/bench_serve.py

Both servers run in one process and share the topology session cache,
so a warmup burst is fired first: neither measurement pays labeling or
distance-matrix construction, and the comparison isolates what batching
itself buys (window amortization + request coalescing + ``jobs`` > 1
fan-out where cores allow).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
from pathlib import Path

from repro.serve.loadgen import LoadProfile, http_request_json, run_load
from repro.serve.service import ServeSettings, ServerThread

OUTPUT = Path(__file__).parent / "BENCH_serve.json"

#: enforced batched/unbatched throughput ratio
SPEEDUP_FLOOR = 2.0


def _measure(profile: LoadProfile, settings: ServeSettings, label: str) -> dict:
    with ServerThread(settings) as srv:

        async def go():
            status, health = await http_request_json(
                srv.host, srv.port, "GET", "/healthz"
            )
            assert status == 200 and health["status"] == "ok", health
            report = await run_load(profile, url=srv.url)
            status, metrics = await http_request_json(
                srv.host, srv.port, "GET", "/metrics?format=json"
            )
            assert status == 200
            return report, metrics

        report, metrics = asyncio.run(go())
    if report.errors:
        raise AssertionError(f"{label}: load run had errors: {report.errors}")
    return {
        "settings": {
            "window_ms": settings.window_ms,
            "max_batch": settings.max_batch,
            "jobs": settings.jobs,
        },
        "report": report.to_json(),
        "server": {
            "batches_total": metrics.get("batches_total", 0),
            "coalesced_total": metrics.get("coalesced_total", 0),
            "batch_size": metrics.get("batch_size", {}),
            "compute_seconds": metrics.get("compute_seconds", {}),
            "labelings_computed": metrics.get("labelings_computed", 0),
        },
    }


def run(profile: LoadProfile, jobs: int = 1) -> dict:
    batched_settings = ServeSettings(
        port=0, window_ms=60.0, max_batch=24, max_queue=4096, jobs=jobs
    )
    unbatched_settings = ServeSettings(
        port=0, window_ms=0.0, max_batch=1, max_queue=4096, jobs=1
    )

    # Warmup: touch every topology/config group once so session caches
    # are hot for both measured runs (they share the process-wide LRU).
    warm_profile = LoadProfile(
        scenario=profile.scenario,
        requests=min(16, profile.requests),
        rate=200.0,
        seed=profile.seed + 1,
        nh=profile.nh,
        seed_pool=profile.seed_pool,
        hot_keys=profile.hot_keys,
        hot_fraction=0.0,  # spread over the whole catalog
        matrix_path=profile.matrix_path,
    )
    _measure(warm_profile, batched_settings, "warmup")

    batched = _measure(profile, batched_settings, "batched")
    unbatched = _measure(profile, unbatched_settings, "unbatched")
    speedup = (
        batched["report"]["throughput_rps"]
        / unbatched["report"]["throughput_rps"]
    )
    mean_batch = batched["report"]["batch"].get("mean_size", 0.0)
    if not mean_batch > 1.0:
        raise AssertionError(
            f"no batch amortization: mean served batch size {mean_batch}"
        )
    return {
        "meta": {
            "python": platform.python_version(),
            "workload": (
                f"{profile.requests} requests at {profile.rate:g}/s, "
                f"scenario {profile.scenario!r}, nh={profile.nh}, "
                f"hot {profile.hot_keys} keys x {profile.hot_fraction:g}"
            ),
            "profile": profile.__dict__ | {"matrix_path": profile.matrix_path},
        },
        "batched": batched,
        "unbatched": unbatched,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=80)
    ap.add_argument("--rate", type=float, default=300.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--nh", type=int, default=1)
    ap.add_argument("--jobs", type=int, default=1,
                    help="run_batch worker processes inside the batched server")
    ap.add_argument(
        "--floor-scale",
        type=float,
        default=1.0,
        help="multiply the speedup floor before enforcing it; CI uses < 1 "
        "to absorb shared-runner noise (the JSON records the unscaled floor)",
    )
    args = ap.parse_args(argv)
    profile = LoadProfile(
        scenario="smoke",
        requests=args.requests,
        rate=args.rate,
        seed=args.seed,
        nh=args.nh,
        seed_pool=1,
        hot_keys=3,
        hot_fraction=0.8,
    )
    payload = run(profile, jobs=args.jobs)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    for label in ("batched", "unbatched"):
        rep = payload[label]["report"]
        lat = rep["latency"]
        print(
            f"{label:10s} {rep['throughput_rps']:7.1f} rps   "
            f"p50 {lat['p50'] * 1e3:7.0f} ms   p95 {lat['p95'] * 1e3:7.0f} ms   "
            f"p99 {lat['p99'] * 1e3:7.0f} ms   mean batch "
            f"{rep['batch'].get('mean_size', 1.0):5.2f}"
        )
    enforced = SPEEDUP_FLOOR * args.floor_scale
    verdict = "ok" if payload["speedup"] >= enforced else "FAIL"
    print(
        f"speedup {payload['speedup']:.2f}x (floor {SPEEDUP_FLOOR:g}x, "
        f"enforcing {enforced:g}x)  {verdict}"
    )
    print(f"wrote {OUTPUT}")
    return 0 if verdict == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())
