"""Table 1: the benchmark suite itself.

Regenerates the instance table (paper sizes vs our synthetic stand-ins)
and benchmarks the generation pipeline of a mid-sized instance.
"""

from __future__ import annotations

from repro.experiments.instances import generate_instance
from repro.experiments.reporting import render_table1


def test_table1_render(benchmark):
    text = benchmark.pedantic(
        lambda: render_table1(divisor=96, seed=2018), rounds=1, iterations=1
    )
    print("\n" + text)
    from benchmarks.conftest import save_artifact

    save_artifact("table1.txt", text)
    # all 15 rows present
    assert text.count("\n") >= 16


def test_instance_generation_speed(benchmark):
    g = benchmark(generate_instance, "coAuthorsDBLP", seed=1, divisor=96, n_max=2048)
    assert g.n > 500
