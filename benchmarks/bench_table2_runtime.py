"""Table 2: TIMER running time relative to the baseline producer.

The paper divides TIMER's min/mean/max runtime by SCOTCH's mapping time
(case c1) or KaHIP's partitioning time (cases c2-c4) and reports geometric
means per topology.  The expected *shape*: c1 quotients far above 1 (DRB
is much faster than TIMER, paper: ~11-32x), c2-c4 quotients around or
below 1 (TIMER comparable to partitioning, paper: ~0.33-1.05).
"""

from __future__ import annotations


from repro.core.config import TimerConfig
from repro.core.enhancer import timer_enhance
from repro.experiments.instances import generate_instance
from repro.experiments.reporting import render_table2
from repro.experiments.topologies import make_topology
from repro.mapping.mapper import compute_initial_mapping
from repro.partitioning.kway import partition_kway


def test_table2_render(benchmark, sweep_result):
    text = benchmark.pedantic(render_table2, args=(sweep_result,), rounds=1, iterations=1)
    print("\n" + text)
    from benchmarks.conftest import save_artifact

    save_artifact("table2.txt", text)
    agg = sweep_result.aggregate()
    # Shape assertions.  The paper's absolute c1 quotients (11x-32x) come
    # from NH=50 against C++ SCOTCH; what must survive reimplementation is
    # the *ordering*: mapping (c1 baseline) is much cheaper than
    # partitioning (c2-c4 baseline), so qT(c1) >> qT(c2..c4), and TIMER
    # stays within the same order of magnitude as the partitioner.
    for topo, by_case in agg.items():
        if "c1" in by_case and "c2" in by_case:
            assert (
                by_case["c1"]["q_time"]["mean"] > 1.5 * by_case["c2"]["q_time"]["mean"]
            ), topo
        for case in ("c2", "c3", "c4"):
            if case in by_case:
                assert by_case[case]["q_time"]["mean"] < 5.0, (topo, case)


def test_timer_kernel_runtime(benchmark):
    """The timed kernel behind every Table-2 cell: one TIMER invocation."""
    ga = generate_instance("PGPgiantcompo", seed=1, divisor=96, n_max=2048)
    gp, pc = make_topology("grid16x16")
    part = partition_kway(ga, gp.n, seed=1)
    mu, _ = compute_initial_mapping("c2", part, gp, seed=2)
    cfg = TimerConfig(n_hierarchies=4, verify_invariants=False)

    def run():
        return timer_enhance(ga, gp, pc, mu, seed=3, config=cfg)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.coco_after <= res.coco_before
