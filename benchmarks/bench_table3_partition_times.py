"""Table 3: partitioner running times for |V_p| = 256 and 512.

The paper's Table 3 lists KaHIP times per instance for 256 and 512
blocks; the reproduction benchmarks our multilevel partitioner on the
scaled instances.  The expected shape: k=512 costs more than k=256 for
the same instance (one extra recursion level), and times grow with
instance size.
"""

from __future__ import annotations

import pytest

from repro.experiments.instances import generate_instance
from repro.partitioning.kway import partition_kway
from repro.utils.stopwatch import Stopwatch

INSTANCES = ("p2p-Gnutella", "PGPgiantcompo", "citationCiteseer")


@pytest.mark.parametrize("k", [256, 512])
def test_partition_time_per_k(benchmark, k):
    ga = generate_instance("PGPgiantcompo", seed=1, divisor=96, n_max=2048)
    part = benchmark.pedantic(
        lambda: partition_kway(ga, k, epsilon=0.03, seed=1), rounds=1, iterations=1
    )
    part.check_balance(0.03)


def test_table3_render(benchmark):
    """Regenerate the Table-3 rows for a 3-instance subset."""

    def build_rows():
        rows = []
        for name in INSTANCES:
            ga = generate_instance(name, seed=2018, divisor=96, n_max=2048)
            times = {}
            for k in (256, 512):
                sw = Stopwatch()
                with sw:
                    partition_kway(ga, k, epsilon=0.03, seed=1)
                times[k] = sw.elapsed
            rows.append((name, ga.n, times[256], times[512]))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = ["Table 3 (scaled instances): partitioner seconds",
             f"{'Name':<20}{'n':>7}{'k=256':>10}{'k=512':>10}"]
    for name, n, t256, t512 in rows:
        lines.append(f"{name:<20}{n:>7}{t256:>10.2f}{t512:>10.2f}")
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    from benchmarks.conftest import save_artifact

    save_artifact("table3.txt", text)
    # Shape: deeper recursion costs more on every instance.
    for _, _, t256, t512 in rows:
        assert t512 > 0.5 * t256
