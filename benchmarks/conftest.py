"""Shared configuration for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  pytest-benchmark measures a representative
kernel of each artifact; the artifact itself (the full table text) is
printed so a ``pytest benchmarks/ --benchmark-only -s`` run leaves the
regenerated numbers in the log.

Sizing: the default profile keeps the full suite in the tens of minutes on
a laptop (5 Table-1 instances, 2 repetitions, NH=6, instances scaled to at
most 2048 vertices).  Set ``REPRO_BENCH_FULL=1`` for the complete
15-instance suite with 3 repetitions and NH=16.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment

#: rendered tables/figures are persisted here (pytest captures stdout)
ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def save_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure next to the bench that made it."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / name).write_text(text, encoding="utf-8")

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Default instance subset: one representative of each structural family.
DEFAULT_INSTANCES = (
    "p2p-Gnutella",        # configuration-model power law
    "PGPgiantcompo",       # clustered social
    "citationCiteseer",    # preferential attachment
    "wiki-Talk",           # skewed R-MAT
    "coAuthorsDBLP",       # clustered co-authorship
)


def sweep_config() -> ExperimentConfig:
    if FULL:
        return ExperimentConfig(
            instances=(),  # all 15
            repetitions=3,
            n_hierarchies=16,
            divisor=64,
            n_max=4096,
            seed=2018,
        )
    return ExperimentConfig(
        instances=DEFAULT_INSTANCES,
        repetitions=2,
        n_hierarchies=6,
        divisor=96,
        n_max=2048,
        seed=2018,
    )


@pytest.fixture(scope="session")
def sweep_result():
    """One shared factorial sweep reused by Table 2 / Figure 5 benches."""
    return run_experiment(sweep_config())
