#!/usr/bin/env python
"""Custom topologies: trees and user-defined partial cubes.

The paper stresses that the partial-cube class covers "all trees" besides
meshes, even tori and hypercubes.  This example maps a workload onto a
complete binary tree (a stand-in for a fat-tree-style switch hierarchy)
and onto a hand-built topology, demonstrating:

- recognition of arbitrary user graphs (with a clear error for
  non-partial-cubes),
- that TIMER runs unmodified on any recognized topology.

Run:  python examples/custom_topology_tree.py
"""

from __future__ import annotations


from repro import TimerConfig, timer_enhance
from repro.errors import NotPartialCubeError
from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.partialcube import is_partial_cube, partial_cube_labeling
from repro.partitioning import partition_kway


def main() -> None:
    # --- a tree topology: 31 switches/PEs in a binary hierarchy --------
    tree = gen.complete_binary_tree(4)
    pc = partial_cube_labeling(tree)
    print(f"binary tree: {tree.n} PEs, partial-cube dimension {pc.dim} "
          "(every edge is its own convex cut)")

    ga = gen.barabasi_albert(900, 4, seed=3)
    part = partition_kway(ga, tree.n, seed=4)
    mu = part.assignment.copy()
    res = timer_enhance(ga, tree, pc, mu, seed=5, config=TimerConfig(n_hierarchies=25))
    print(f"tree mapping:  Coco {res.coco_before:.0f} -> {res.coco_after:.0f} "
          f"({res.coco_improvement:.1%})")

    # --- a hand-built partial cube: two 4-cycles joined by a matching --
    # (the 'ladder' Q3 minus nothing: actually a cube graph)
    cube = from_edges(
        8,
        [
            (0, 1), (1, 2), (2, 3), (3, 0),      # bottom 4-cycle
            (4, 5), (5, 6), (6, 7), (7, 4),      # top 4-cycle
            (0, 4), (1, 5), (2, 6), (3, 7),      # vertical matching
        ],
        name="cube",
    )
    pc_cube = partial_cube_labeling(cube)
    print(f"\nhand-built cube: dim {pc_cube.dim}, labels "
          f"{[f'{int(x):03b}' for x in pc_cube.labels]}")
    part2 = partition_kway(ga, cube.n, seed=6)
    res2 = timer_enhance(ga, cube, pc_cube, part2.assignment, seed=7,
                         config=TimerConfig(n_hierarchies=25))
    print(f"cube mapping:  Coco {res2.coco_before:.0f} -> {res2.coco_after:.0f} "
          f"({res2.coco_improvement:.1%})  "
          "(8 PEs leave little headroom -- expect a small gain)")

    # --- graceful failure on a non-partial-cube ------------------------
    k4 = from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    print(f"\nK4 is a partial cube? {is_partial_cube(k4)}")
    try:
        partial_cube_labeling(k4)
    except NotPartialCubeError as exc:
        print(f"recognition says: {exc} (reason: {exc.reason})")


if __name__ == "__main__":
    main()
