#!/usr/bin/env python
"""Figure 2 demo: opposite hierarchies of the 4-D hypercube.

The paper's Figure 2 shows how two permutations of the label entries
induce completely different (but equally valid) hierarchies on the same
vertex set.  TIMER's power comes from searching across many such
hierarchies.  This script prints both Figure-2 hierarchies level by level
and a random third one.

Run:  python examples/hierarchies_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs import generators as gen
from repro.partialcube import partial_cube_labeling
from repro.partialcube.hierarchy import (
    hierarchy_from_permutation,
    identity_permutation,
    opposite_permutation,
)


def render(title: str, labels: np.ndarray, dim: int, perm: np.ndarray) -> None:
    h = hierarchy_from_permutation(labels, dim, perm)
    print(f"\n{title} (perm = {perm.tolist()}):")
    for level in range(dim + 1):
        parts = h.partition(level)
        rendered = []
        for part in parts:
            bits = [f"{int(labels[v]):0{dim}b}" for v in sorted(part.tolist())]
            rendered.append("{" + ",".join(bits) + "}")
        print(f"  level {level} ({len(parts):>2} parts): " + " ".join(rendered))


def main() -> None:
    g = gen.hypercube(4)
    pc = partial_cube_labeling(g)
    print(f"4-D hypercube: {g.n} vertices, dimension {pc.dim}")
    render("Hierarchy H_pi, pi = (1,2,3,4)", pc.labels, pc.dim, identity_permutation(pc.dim))
    render("Hierarchy H_pi, pi = (4,3,2,1)", pc.labels, pc.dim, opposite_permutation(pc.dim))
    rng = np.random.default_rng(7)
    render("A random hierarchy", pc.labels, pc.dim, rng.permutation(pc.dim))


if __name__ == "__main__":
    main()
