#!/usr/bin/env python
"""Capstone: a miniature end-to-end run of the paper's evaluation.

Executes the §7 experiment on a reduced factorial (3 representative
networks x 2 topologies x all 4 cases x 2 seeds), then prints the
Table-2 quotients, a Figure-5 panel with an ASCII bar chart, and the
programmatic validation of the paper's §7.2 claims that apply at this
scale.

The full-scale regeneration is `python -m repro.experiments all`;
this script finishes in about a minute.

Run:  python examples/paper_pipeline.py
"""

from __future__ import annotations

from repro.experiments.ascii_chart import render_fig5_chart
from repro.experiments.claims import render_claims, validate_paper_claims
from repro.experiments.reporting import render_fig5, render_summary, render_table2
from repro.experiments.runner import ExperimentConfig, run_experiment


def main() -> None:
    config = ExperimentConfig(
        instances=("p2p-Gnutella", "citationCiteseer", "coAuthorsDBLP"),
        topologies=("grid16x16", "hq8"),
        cases=("c1", "c2", "c3", "c4"),
        repetitions=2,
        n_hierarchies=6,
        divisor=128,
        n_max=1536,
        seed=7,
    )
    print(
        f"running {len(config.resolved_instances())} instances x "
        f"{len(config.topologies)} topologies x {len(config.cases)} cases x "
        f"{config.repetitions} seeds (NH={config.n_hierarchies}) ..."
    )
    result = run_experiment(config)
    print()
    print(render_table2(result))
    print(render_fig5(result, "c2"))
    print(render_fig5_chart(result, "c2"))
    print(render_summary(result))
    print(render_claims(validate_paper_claims(result)))


if __name__ == "__main__":
    main()
