#!/usr/bin/env python
"""Serving-shape demo: one topology session, a stream of graphs.

The expensive work in TIMER's pipeline -- recognizing the processor
graph as a partial cube, labeling it, building the distance matrix -- is
a pure function of the *topology*.  `repro.api` factors it into a
`Topology` session so a batch of application graphs (think: a mapping
service under load) pays for it exactly once.

The demo maps a batch of heterogeneous application graphs onto an 8x8
grid, then re-runs one of them through the *same* session with a
different strategy, registry-style.

Run:  python examples/pipeline_serving.py
"""

from __future__ import annotations

import time

from repro import Pipeline, PipelineConfig, TimerConfig, Topology
from repro.graphs import generators as gen


def main() -> None:
    topology = Topology.from_name("grid8x8")
    pipe = Pipeline(
        topology,
        PipelineConfig(
            initial_mapping="c2",
            timer=TimerConfig(n_hierarchies=6),
            reports=("summary",),
        ),
    )

    # A heterogeneous request stream: power-law, small-world, recursive-matrix.
    requests = [
        gen.barabasi_albert(600, 3, seed=1),
        gen.barabasi_albert(900, 4, seed=2),
        gen.watts_strogatz(640, 6, 0.1, seed=3),
    ]

    t0 = time.perf_counter()
    results = pipe.run_batch(requests, seed=2018)
    wall = time.perf_counter() - t0

    print(f"session: {topology.name}, {topology.n} PEs, "
          f"labeling computed {topology.labelings_computed}x "
          f"for {len(results)} requests")
    for res in results:
        print(f"  {res.reports['summary']}  "
              f"[{res.elapsed_seconds:.2f}s, {res.identity_hash[:10]}]")
    print(f"batch wall time: {wall:.2f}s")

    # Same session, different strategy: the GREEDYALLC construction (c3).
    alt = pipe.with_config(initial_mapping="c3")
    res = alt.run(requests[0], seed=2018)
    print(f"c3 re-run on request 0: Coco {res.coco_before:.0f} -> "
          f"{res.coco_after:.0f} (labeling still computed "
          f"{topology.labelings_computed}x)")


if __name__ == "__main__":
    main()
