#!/usr/bin/env python
"""Quickstart: enhance a mapping of a complex network onto a 2-D grid.

Walks the paper's full pipeline on a small instance:

1. generate an application graph (a clustered power-law network),
2. build a processor graph (4x4 grid) and its partial-cube labeling --
   this reproduces the Figure 3 idea: every PE gets a bitvector whose
   Hamming distances equal hop distances,
3. partition the application graph into |V_p| balanced blocks,
4. map blocks to PEs (IDENTITY) and measure Coco (hop-bytes),
5. run TIMER and compare.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import TimerConfig, timer_enhance
from repro.graphs import generators as gen
from repro.mapping import coco, compute_initial_mapping
from repro.partialcube import partial_cube_labeling
from repro.partitioning import partition_kway


def main() -> None:
    # 1. The application: a 1200-vertex scale-free network.  The paper's
    #    whole suite is heavy-tailed complex networks -- these leave the
    #    mapping headroom that TIMER exploits.
    ga = gen.barabasi_albert(1200, 4, seed=42)
    print(f"application graph: {ga.n} tasks, {ga.m} communication pairs")

    # 2. The parallel machine: an 8x8 grid of PEs (a partial cube).
    gp = gen.grid(8, 8)
    pc = partial_cube_labeling(gp)
    print(f"processor graph:   {gp.n} PEs, partial-cube dimension {pc.dim}")
    print("PE labels (Hamming distance == hop distance):")
    for pe in range(4):
        print(f"  PE {pe}: {int(pc.labels[pe]):0{pc.dim}b}")

    # 3. Balanced partition into 64 blocks (3% imbalance, as in the paper).
    part = partition_kway(ga, gp.n, epsilon=0.03, seed=1)
    print(f"partition:         cut = {part.edge_cut():.0f}, "
          f"imbalance = {part.imbalance():.3f}")

    # 4. Initial mapping: block i -> PE i (experimental case c2).
    mu, _ = compute_initial_mapping("c2", part, gp, seed=2)
    print(f"initial Coco:      {coco(ga, gp, mu):.0f}")

    # 5. TIMER with 25 hierarchies.
    result = timer_enhance(
        ga, gp, pc, mu, seed=3, config=TimerConfig(n_hierarchies=25)
    )
    print(f"enhanced Coco:     {result.coco_after:.0f} "
          f"({result.coco_improvement:.1%} better)")
    print(f"edge cut:          {result.cut_before:.0f} -> {result.cut_after:.0f}")
    print(f"accepted:          {result.hierarchies_accepted}/25 hierarchies "
          f"in {result.elapsed_seconds:.2f}s")


if __name__ == "__main__":
    main()
