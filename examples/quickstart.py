#!/usr/bin/env python
"""Quickstart: enhance a mapping of a complex network onto a 2-D grid.

Walks the paper's full pipeline on a small instance through the public
`repro.api` surface:

1. generate an application graph (a clustered power-law network),
2. open a `Topology` session for an 8x8 grid of PEs -- this owns the
   partial-cube labeling (the Figure 3 idea: every PE gets a bitvector
   whose Hamming distances equal hop distances) and shares it across
   every run,
3. assemble a `Pipeline`: balanced k-way partition (3% imbalance, as in
   the paper), IDENTITY initial mapping (case c2), TIMER with 25
   hierarchies,
4. run it and compare Coco (hop-bytes) before and after.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Pipeline, PipelineConfig, TimerConfig, Topology
from repro.graphs import generators as gen


def main() -> None:
    # 1. The application: a 1200-vertex scale-free network.  The paper's
    #    whole suite is heavy-tailed complex networks -- these leave the
    #    mapping headroom that TIMER exploits.
    ga = gen.barabasi_albert(1200, 4, seed=42)
    print(f"application graph: {ga.n} tasks, {ga.m} communication pairs")

    # 2. The parallel machine: an 8x8 grid of PEs (a partial cube).
    topology = Topology.from_name("grid8x8")
    pc = topology.labeling
    print(f"processor graph:   {topology.n} PEs, partial-cube dimension {pc.dim}")
    print("PE labels (Hamming distance == hop distance):")
    for pe in range(4):
        print(f"  PE {pe}: {int(pc.labels[pe]):0{pc.dim}b}")

    # 3. The pipeline: partition -> IDENTITY mapping (c2) -> TIMER.
    pipe = Pipeline(
        topology,
        PipelineConfig(
            initial_mapping="c2",
            epsilon=0.03,
            timer=TimerConfig(n_hierarchies=25),
            post_verify=("mapping-valid", "balance-preserved"),
        ),
    )

    # 4. Run and compare.
    result = pipe.run(ga, seed=3)
    print(f"partition:         cut = {result.cut_before:.0f}")
    print(f"initial Coco:      {result.coco_before:.0f}")
    print(f"enhanced Coco:     {result.coco_after:.0f} "
          f"({result.coco_improvement:.1%} better)")
    print(f"edge cut:          {result.cut_before:.0f} -> {result.cut_after:.0f}")
    timer = result.timer
    print(f"accepted:          {timer.hierarchies_accepted}/25 hierarchies; "
          "stage times: "
          + ", ".join(f"{t.stage} {t.seconds:.2f}s" for t in result.stage_timings))
    print(f"provenance:        {result.identity_hash[:16]}...")


if __name__ == "__main__":
    main()
