#!/usr/bin/env python
"""End-to-end serving example: a client talking to `repro serve`.

Spins up the mapping service in-process on an ephemeral port (pass a
base URL as argv[1] to target a live `python -m repro serve` instead),
then walks the protocol with plain stdlib urllib:

1. `GET /healthz`  -- liveness and the served topology names,
2. `POST /map`     -- one request, a generated application graph onto
   a 4x4 grid,
3. `POST /batch`   -- three requests in one body; two are identical and
   come back coalesced from a single computation,
4. `GET /metrics`  -- the JSON metrics snapshot.

Run:  python examples/serve_client.py
"""

from __future__ import annotations

import json
import sys
import urllib.request


def call(base: str, method: str, path: str, body: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        payload = resp.read().decode()
    try:
        return json.loads(payload)
    except json.JSONDecodeError:
        return payload


def demo(base: str) -> None:
    health = call(base, "GET", "/healthz")
    print(f"healthz: {health['status']}, "
          f"{len(health['topologies'])} topologies served")

    request = {
        "topology": "grid4x4",
        "graph": {"kind": "generate", "instance": "p2p-Gnutella", "seed": 7},
        "seed": 7,
        "config": {"case": "c2", "nh": 2},
    }
    reply = call(base, "POST", "/map", request)
    print(f"map: Coco {reply['metrics']['coco_before']:.0f} -> "
          f"{reply['metrics']['coco_after']:.0f} on {len(reply['mu'])} "
          f"vertices [{reply['identity_hash'][:10]}]")

    batch = call(base, "POST", "/batch", {
        "requests": [
            {**request, "id": "a"},
            {**request, "id": "b"},          # identical: coalesced with "a"
            {**request, "seed": 8, "id": "c",
             "graph": {**request["graph"], "seed": 8}},
        ]
    })
    for item in batch["results"]:
        info = item["batch"]
        print(f"batch[{item['id']}]: batched with {info['size']}, "
              f"{'coalesced' if info['coalesced'] else 'computed'} "
              f"(unique runs: {info['unique']})")
    a, b = batch["results"][0], batch["results"][1]
    assert a["mu"] == b["mu"], "identical requests must map identically"

    metrics = call(base, "GET", "/metrics?format=json")
    print(f"metrics: {metrics['requests_total']:.0f} requests, "
          f"{metrics['coalesced_total']:.0f} coalesced, labeling computed "
          f"{metrics['labelings_computed']}x")


def main() -> None:
    if len(sys.argv) > 1:
        demo(sys.argv[1].rstrip("/"))
        return
    from repro.serve.service import ServeSettings, ServerThread

    with ServerThread(ServeSettings(port=0, window_ms=20, max_batch=8)) as srv:
        demo(srv.url)


if __name__ == "__main__":
    main()
