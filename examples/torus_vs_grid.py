#!/usr/bin/env python
"""Topology study: how much can TIMER improve on grids vs tori vs cubes?

Reproduces the paper's §7.2 observation at small scale: "the better the
connectivity of Gp, the harder it gets to improve Coco" -- grids leave
more room than tori, and the hypercube is hardest.  Also demonstrates the
GREEDYALLC corner effect: greedy construction "paints itself into a
corner" on grids (which have corners) but not on tori.

Run:  python examples/torus_vs_grid.py
"""

from __future__ import annotations


from repro import TimerConfig, timer_enhance
from repro.graphs import generators as gen
from repro.mapping import compute_initial_mapping
from repro.partialcube import partial_cube_labeling
from repro.partitioning import partition_kway

TOPOLOGIES = {
    "grid 8x8": gen.grid(8, 8),
    "torus 8x8": gen.torus(8, 8),
    "hypercube 6": gen.hypercube(6),
}


def main() -> None:
    ga = gen.barabasi_albert(1200, 4, seed=7)
    print(f"application: {ga.n} tasks / {ga.m} edges; 64 PEs everywhere\n")
    print(f"{'topology':<14}{'case':<6}{'Coco before':>12}{'Coco after':>12}{'gain':>8}")
    for name, gp in TOPOLOGIES.items():
        pc = partial_cube_labeling(gp)
        part = partition_kway(ga, gp.n, seed=1)
        for case in ("c2", "c3"):
            mu, _ = compute_initial_mapping(case, part, gp, seed=2)
            res = timer_enhance(
                ga, gp, pc, mu, seed=3, config=TimerConfig(n_hierarchies=25)
            )
            print(
                f"{name:<14}{case:<6}{res.coco_before:>12.0f}"
                f"{res.coco_after:>12.0f}{res.coco_improvement:>8.1%}"
            )
    print(
        "\nExpected shape (paper section 7.2): grid gains >= torus gains >= "
        "hypercube gains."
    )


if __name__ == "__main__":
    main()
