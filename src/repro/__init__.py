"""repro: a full reproduction of *Topology-induced Enhancement of Mappings*.

Paper: Roland Glantz, Maria Predari, Henning Meyerhenke,
ICPP 2018 (arXiv:1804.07131).

The package implements the paper's primary contribution -- the **TIMER**
multi-hierarchical mapping enhancer for processor graphs that are partial
cubes -- together with every substrate it depends on:

- a static CSR graph type and generators (grids, tori, hypercubes, trees,
  complex-network models),
- partial-cube recognition and Hamming labelings (Djokovic relation),
- a multilevel k-way graph partitioner (KaHIP stand-in),
- initial mapping algorithms (identity, greedy construction heuristics,
  dual recursive bipartitioning as a SCOTCH stand-in),
- the staged :mod:`repro.api` pipeline -- one registry-driven path shared
  by the CLI, the library and the experiment harness,
- the experiment harness regenerating every table and figure of the paper.

Quickstart
----------
The public entry point is the pipeline: bind a topology session (the
processor graph plus its cached partial-cube labeling) to a staged
configuration, then stream application graphs through it.

>>> from repro import Pipeline, PipelineConfig, TimerConfig, graphs
>>> pipe = Pipeline("grid4x4", PipelineConfig(
...     initial_mapping="c2", timer=TimerConfig(n_hierarchies=4)))
>>> ga = graphs.generators.barabasi_albert(512, 4, seed=1)
>>> result = pipe.run(ga, seed=1)
>>> result.coco_after <= result.coco_before
True
>>> [t.stage for t in result.stage_timings]
['partition', 'initial_mapping', 'enhance']

``pipe.run_batch(graphs)`` amortizes the topology's recognition,
labeling and distance caches across many graphs -- the serving shape.
Strategies (partitioners, initial mappings, enhancers, topologies) are
pluggable values in :data:`repro.api.REGISTRY`.
"""

from repro._version import __version__
from repro import graphs, partialcube, partitioning, mapping, core, experiments
from repro.core.enhancer import timer_enhance, TimerResult
from repro.core.config import TimerConfig
from repro import api
from repro.api.registry import REGISTRY, Registry
from repro.api.pipeline import Pipeline, PipelineConfig, PipelineResult
from repro.api.topology import Topology

__all__ = [
    "__version__",
    "graphs",
    "partialcube",
    "partitioning",
    "mapping",
    "core",
    "experiments",
    "api",
    "REGISTRY",
    "Registry",
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "Topology",
    "timer_enhance",
    "TimerResult",
    "TimerConfig",
]
