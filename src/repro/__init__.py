"""repro: a full reproduction of *Topology-induced Enhancement of Mappings*.

Paper: Roland Glantz, Maria Predari, Henning Meyerhenke,
ICPP 2018 (arXiv:1804.07131).

The package implements the paper's primary contribution -- the **TIMER**
multi-hierarchical mapping enhancer for processor graphs that are partial
cubes -- together with every substrate it depends on:

- a static CSR graph type and generators (grids, tori, hypercubes, trees,
  complex-network models),
- partial-cube recognition and Hamming labelings (Djokovic relation),
- a multilevel k-way graph partitioner (KaHIP stand-in),
- initial mapping algorithms (identity, greedy construction heuristics,
  dual recursive bipartitioning as a SCOTCH stand-in),
- the experiment harness regenerating every table and figure of the paper.

Quickstart
----------
>>> from repro import graphs, timer_enhance
>>> from repro.experiments.topologies import make_topology
>>> ga = graphs.generators.barabasi_albert(512, 4, seed=1)
>>> gp, pc = make_topology("grid4x4")
>>> from repro.partitioning import partition_kway
>>> part = partition_kway(ga, gp.n, seed=1)
>>> from repro.mapping import identity_mapping
>>> mu = identity_mapping(part, gp)
>>> result = timer_enhance(ga, gp, pc, mu, n_hierarchies=4, seed=1)
>>> result.coco_after <= result.coco_before
True
"""

from repro._version import __version__
from repro import graphs, partialcube, partitioning, mapping, core, experiments
from repro.core.enhancer import timer_enhance, TimerResult
from repro.core.config import TimerConfig

__all__ = [
    "__version__",
    "graphs",
    "partialcube",
    "partitioning",
    "mapping",
    "core",
    "experiments",
    "timer_enhance",
    "TimerResult",
    "TimerConfig",
]
