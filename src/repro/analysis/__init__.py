"""Project-specific static analysis: ``repro lint``.

An AST lint engine (:mod:`repro.analysis.engine`) plus a rule pack
(:mod:`repro.analysis.rules`) that enforce the repo's contracts --
determinism, backend dispatch, serve hygiene, registry and config
discipline -- at CI time.  See ``docs/development.md`` for the rule
catalogue and the ``# repro: allow[RULE-ID] reason=...`` suppression
syntax.

Run it as ``python -m repro.analysis [paths...]`` or ``repro lint``.
"""

from repro.analysis.engine import (
    Finding,
    Report,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.rules import default_rules

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "default_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
