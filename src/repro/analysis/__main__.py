"""``python -m repro.analysis [--format text|json] [paths...]``."""

import sys

from repro.analysis.cli import main

sys.exit(main())
