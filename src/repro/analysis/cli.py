"""Argument parsing shared by ``python -m repro.analysis`` and ``repro lint``.

Exit status: 0 when every finding is suppressed-with-reason, 1 when any
active finding remains, 2 on usage errors.  ``--format json`` emits the
full structured report (CI uploads it as an artifact); text mode prints
``file:line:col: RULE message`` plus a fix hint per finding.
"""

from __future__ import annotations

import argparse

from repro.analysis.engine import lint_paths, render_json, render_text
from repro.analysis.rules import default_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags (shared with the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed ``args``."""
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  {rule.title}")
        return 0
    report = lint_paths(args.paths)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint enforcing the repo's determinism, "
        "backend-dispatch and serve-hygiene contracts",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
