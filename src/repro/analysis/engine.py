"""The AST lint engine behind ``repro lint``.

The repo's load-bearing guarantees -- byte-identical determinism,
every hot kernel dispatching through ``current_backend()``, the serve
layer's error taxonomy and asyncio discipline -- are *conventions*: a
stray ``np.random.default_rng()`` or a ``time.sleep`` inside an
``async def`` silently voids contracts the equivalence suites can only
catch after the fact.  This engine walks the package's ASTs and turns
those conventions into machine-checked rules with stable ids, so a
violation fails CI at review time instead of surfacing as a
nondeterministic artifact three PRs later.

Pieces:

- :class:`Rule` -- the protocol a check implements: a stable ``id``, a
  one-line ``title``, a ``hint`` telling the author how to fix it,
  path-scoped applicability (``applies_to``) and an AST visitor
  (``check``) yielding raw findings.
- :class:`Finding` -- one structured diagnostic: file, line, column,
  rule id, message, fix hint, and (after suppression matching) whether
  an inline allow covered it.
- Inline suppression -- ``# repro: allow[RULE-ID] reason=...`` on the
  flagged line (or on a comment-only line directly above it).  The
  ``reason=`` is *mandatory*: a reason-less allow suppresses nothing
  and is itself reported as ``SUP001``.  Stale allows that no longer
  match any finding are reported as ``SUP002`` so suppressions cannot
  outlive the code they excused.

The engine is stdlib-only (``ast`` + ``tokenize``) and deliberately
knows nothing about the individual rules; the rule pack lives in
:mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path, PurePosixPath
from collections.abc import Iterable, Iterator, Sequence
from typing import Protocol, runtime_checkable

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "PathScopedRule",
    "Suppression",
    "Report",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "module_relpath",
    "render_text",
    "render_json",
]

#: Rule id of a malformed (reason-less / unparseable) suppression.
SUP_MALFORMED = "SUP001"
#: Rule id of a stale suppression matching no finding.
SUP_UNUSED = "SUP002"

#: Matches an allow directive ("repro: allow[DET001] reason=..." in a
#: comment) -- ids comma-separated, reason mandatory, free-form to EOL.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"(?:\s+reason=(?P<reason>\S.*))?"
)
#: Anything that *looks* like a repro directive, for malformed-directive
#: detection (e.g. a typo'd rule id or a missing ``allow``).
_DIRECTIVE_RE = re.compile(r"#\s*repro:")


@dataclass(frozen=True)
class Finding:
    """One structured diagnostic."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    suppressed: bool = False
    suppression_reason: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` directive."""

    line: int           # line the directive sits on
    rule_ids: tuple[str, ...]
    reason: str         # "" when missing (malformed)
    covers: tuple[int, ...]  # source lines the allow applies to


@dataclass
class FileContext:
    """Everything a rule may want to know about the file under scan.

    ``relpath`` is the path *relative to the package root* in posix
    form (``serve/service.py``, ``core/backend.py``), so path-scoped
    rules behave identically whether the scan started from the repo
    root, from ``src/``, or from a test fixture directory.
    """

    path: str
    relpath: PurePosixPath
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        """Convenience constructor anchoring a finding to an AST node."""
        return Finding(
            rule=rule.id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=rule.hint if hint is None else hint,
        )


@runtime_checkable
class Rule(Protocol):
    """What a lint check implements."""

    id: str
    title: str
    hint: str

    def applies_to(self, relpath: PurePosixPath) -> bool:
        """Whether this rule scans the file at ``relpath``."""
        ...  # pragma: no cover - protocol stub

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield raw findings for one parsed file."""
        ...  # pragma: no cover - protocol stub


class PathScopedRule:
    """Base class handling the common "these subtrees only" scoping.

    ``paths`` are posix path *prefixes* relative to the package root
    (``("core/", "serve/service.py")``); empty means every file.
    ``exclude`` prefixes win over ``paths``.
    """

    id: str = "XXX000"
    title: str = ""
    hint: str = ""
    paths: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def applies_to(self, relpath: PurePosixPath) -> bool:
        text = relpath.as_posix()
        if any(text == e or text.startswith(e) for e in self.exclude):
            return False
        if not self.paths:
            return True
        return any(text == p or text.startswith(p) for p in self.paths)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Rule {self.id}: {self.title}>"


# ----------------------------------------------------------------------
# Suppression parsing
# ----------------------------------------------------------------------
def _comment_tokens(source: str) -> list[tuple[int, str, bool]]:
    """``(line, comment_text, line_is_comment_only)`` for every comment."""
    out: list[tuple[int, str, bool]] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line_no = tok.start[0]
        text = lines[line_no - 1] if line_no - 1 < len(lines) else ""
        only = text.strip().startswith("#")
        out.append((line_no, tok.string, only))
    return out


def parse_suppressions(
    source: str, path: str
) -> tuple[list[Suppression], list[Finding]]:
    """Extract allow directives; malformed ones come back as findings."""
    allows: list[Suppression] = []
    problems: list[Finding] = []
    for line_no, comment, comment_only in _comment_tokens(source):
        if not _DIRECTIVE_RE.search(comment):
            continue
        match = _ALLOW_RE.search(comment)
        if match is None:
            problems.append(
                Finding(
                    rule=SUP_MALFORMED,
                    path=path,
                    line=line_no,
                    col=1,
                    message=f"unparseable repro directive: {comment.strip()!r}",
                    hint="write '# repro: allow[RULE-ID] reason=...'",
                )
            )
            continue
        ids = tuple(part.strip() for part in match.group("ids").split(","))
        reason = (match.group("reason") or "").strip()
        # A comment-only allow covers the next source line; an inline
        # allow covers its own line.
        covers = (line_no, line_no + 1) if comment_only else (line_no,)
        if not reason:
            problems.append(
                Finding(
                    rule=SUP_MALFORMED,
                    path=path,
                    line=line_no,
                    col=1,
                    message=(
                        "suppression for "
                        + ", ".join(ids)
                        + " is missing its mandatory reason"
                    ),
                    hint="append 'reason=<why this violation is intentional>'",
                )
            )
            continue
        allows.append(
            Suppression(line=line_no, rule_ids=ids, reason=reason, covers=covers)
        )
    return allows, problems


def apply_suppressions(
    findings: list[Finding], allows: list[Suppression], path: str
) -> list[Finding]:
    """Mark suppressed findings; report allows that matched nothing."""
    used = [False] * len(allows)
    out: list[Finding] = []
    for f in findings:
        hit = None
        for i, allow in enumerate(allows):
            if f.rule in allow.rule_ids and f.line in allow.covers:
                hit = i
                break
        if hit is None:
            out.append(f)
        else:
            used[hit] = True
            out.append(
                replace(f, suppressed=True, suppression_reason=allows[hit].reason)
            )
    for i, allow in enumerate(allows):
        if not used[i]:
            out.append(
                Finding(
                    rule=SUP_UNUSED,
                    path=path,
                    line=allow.line,
                    col=1,
                    message=(
                        "suppression for "
                        + ", ".join(allow.rule_ids)
                        + " matches no finding (stale allow)"
                    ),
                    hint="delete the directive, or move it onto the line it excuses",
                )
            )
    return out


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def module_relpath(path: str | Path) -> PurePosixPath:
    """Path relative to the ``repro`` package root (best effort).

    ``src/repro/serve/service.py`` -> ``serve/service.py``; paths with
    no ``repro`` component are returned as given (so fixtures and
    out-of-tree files still lint, just without package-scoped rules).
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return PurePosixPath(*parts[i + 1 :])
    return PurePosixPath(Path(path).as_posix())


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    relpath: PurePosixPath | None = None,
) -> list[Finding]:
    """Lint one in-memory module; ``path`` is for reporting only."""
    rel = module_relpath(path) if relpath is None else relpath
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="ENG001",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; nothing else was checked",
            )
        ]
    ctx = FileContext(
        path=path,
        relpath=rel,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    raw: list[Finding] = []
    for rule in rules:
        if rule.applies_to(rel):
            raw.extend(rule.check(ctx))
    raw.sort(key=lambda f: (f.line, f.col, f.rule))
    allows, problems = parse_suppressions(source, path)
    return apply_suppressions(raw, allows, path) + problems


def lint_file(path: str | Path, rules: Sequence[Rule]) -> list[Finding]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: dict[Path, None] = {}
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f, None)
        elif p.suffix == ".py":
            seen.setdefault(p, None)
    return list(seen)


@dataclass
class Report:
    """Outcome of one lint run."""

    findings: list[Finding]
    files_scanned: int

    @property
    def active(self) -> list[Finding]:
        """Findings that fail the run (everything unsuppressed)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "active": len(self.active),
            "suppressed": len(self.suppressed),
            "findings": [f.to_dict() for f in self.findings],
        }


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> Report:
    """Lint files/directories with ``rules`` (default: the full pack)."""
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, rules))
    return Report(findings=findings, files_scanned=len(files))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(report: Report) -> str:
    out: list[str] = []
    for f in report.active:
        out.append(f"{f.location()}: {f.rule} {f.message}")
        if f.hint:
            out.append(f"    hint: {f.hint}")
    for f in report.suppressed:
        out.append(
            f"{f.location()}: {f.rule} suppressed ({f.suppression_reason}): "
            f"{f.message}"
        )
    out.append(
        f"{len(report.active)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.files_scanned} file(s) scanned"
    )
    return "\n".join(out)


def render_json(report: Report) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
