"""The rule pack: the repo's contracts, as machine-checked AST rules.

Each rule encodes one invariant the test suite can only verify after
the fact (and only on the inputs it happens to run):

========  ==========================================================
DET001    identity-relevant trees draw randomness only through
          ``utils.rng`` (``derive_rng`` / ``derive_seed_sequence`` /
          ``make_rng``); unseeded ``np.random.default_rng()``, the
          legacy ``np.random.*`` globals and stdlib ``random`` break
          the ``--jobs N == --jobs 1`` byte-identity contract.
DET002    no wall-clock reads (``time.time``, ``datetime.now``, ...)
          in identity-relevant trees: anything wall-clock-derived
          that leaks into ``PipelineConfig.identity()`` or an
          artifact-store key silently splits the content address.
          Timing uses ``utils.stopwatch`` (``perf_counter``).
BKD001    hot kernels are reached through ``current_backend()`` (or
          the facade functions that wrap it), never by direct
          reference-implementation call -- a bypassed seam reverts
          call sites to one tier and voids the equivalence contract.
SRV001    no blocking calls (``time.sleep``, sync socket/file IO,
          ``subprocess``) inside ``async def`` in ``serve/``: one
          blocked event loop stalls every in-flight request.
SRV002    ``serve/`` raises the :mod:`repro.errors` taxonomy, not
          generic builtins, and never uses a bare ``except:`` --
          the HTTP status mapping and the retry policy both dispatch
          on exception class.
REG001    ``REGISTRY.register`` happens at module import scope only;
          registrations inside functions make the registry's contents
          dependent on call order and invisible to ``--list`` style
          introspection.
CFG001    every ``PipelineConfig`` field is either consumed by
          ``identity()`` or listed in the explicit class-level
          ``IDENTITY_EXCLUDED`` set -- the mechanism that makes
          "this knob does not change results" a reviewed, documented
          decision instead of a silent ``.pop()``.
OBS001    operational output in ``serve/`` and the experiment runner
          goes through :mod:`repro.obs.log` (JSON-lines events with a
          stable taxonomy), never ad-hoc ``print()`` or bare
          ``sys.stderr.write`` -- unstructured lines are invisible to
          log tooling and interleave corruptly across the shard /
          pool processes sharing one stderr.
========  ==========================================================

Suppress a *deliberate* violation inline with
``# repro: allow[RULE-ID] reason=...`` -- the reason is mandatory
(see :mod:`repro.analysis.engine`).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, PathScopedRule, Rule

__all__ = [
    "DeterministicRandomness",
    "NoWallClockInIdentity",
    "BackendDispatchOnly",
    "NoBlockingInAsyncServe",
    "ServeErrorTaxonomy",
    "RegisterAtImportScope",
    "ConfigIdentityCoverage",
    "StructuredLoggingOnly",
    "default_rules",
]

#: Subtrees whose outputs feed result identity (artifact keys, golden
#: hashes, served responses).  ``utils/rng.py`` itself is the sanctioned
#: home of ``default_rng`` and is outside these trees by design.
IDENTITY_TREES = (
    "core/",
    "partialcube/",
    "graphs/",
    "partitioning/",
    "mapping/",
    "experiments/",
)


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


class DeterministicRandomness(PathScopedRule):
    """DET001: identity trees must seed through ``utils.rng``."""

    id = "DET001"
    title = "unseeded / legacy randomness in an identity-relevant tree"
    hint = (
        "derive the generator from the run identity: "
        "utils.rng.derive_rng(root, *identity) or make_rng(seed); "
        "never draw from process-global randomness"
    )
    paths = IDENTITY_TREES

    #: ``np.random`` attributes that are legitimate *types/constructors*
    #: (annotations, isinstance checks, seeded construction in rng.py).
    _SANCTIONED_NP = {"Generator", "SeedSequence", "BitGenerator", "default_rng"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            self,
                            node,
                            "stdlib 'random' imported in an identity-relevant "
                            "tree; its global state breaks run determinism",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.finding(
                        self,
                        node,
                        "stdlib 'random' imported in an identity-relevant "
                        "tree; its global state breaks run determinism",
                    )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) == 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
                    leaf = chain[2]
                    if leaf == "default_rng":
                        unseeded = not node.args or (
                            isinstance(node.args[0], ast.Constant)
                            and node.args[0].value is None
                        )
                        if unseeded and not node.keywords:
                            yield ctx.finding(
                                self,
                                node,
                                "np.random.default_rng() without a seed is "
                                "OS-entropy randomness",
                            )
                    elif leaf not in self._SANCTIONED_NP:
                        yield ctx.finding(
                            self,
                            node,
                            f"legacy global np.random.{leaf}() draws from "
                            "shared process state",
                        )


class NoWallClockInIdentity(PathScopedRule):
    """DET002: wall-clock reads are banned where identity is computed."""

    id = "DET002"
    title = "wall-clock read in an identity-relevant tree"
    hint = (
        "time stages with utils.stopwatch.Stopwatch (perf_counter); "
        "wall-clock values must never feed PipelineConfig.identity() "
        "or an artifact-store key"
    )
    paths = IDENTITY_TREES + ("api/",)

    _WALL_CLOCK_LEAVES = {"now", "utcnow", "today", "fromtimestamp"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain:
                continue
            if chain[-2:-1] == ("time",) and chain[-1] in ("time", "time_ns"):
                yield ctx.finding(
                    self, node, f"time.{chain[-1]}() reads the wall clock"
                )
            elif chain[-1] in self._WALL_CLOCK_LEAVES and any(
                part in ("datetime", "date") for part in chain[:-1]
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{'.'.join(chain)}() reads the wall clock",
                )


class BackendDispatchOnly(PathScopedRule):
    """BKD001: kernels go through ``current_backend()`` or a facade."""

    id = "BKD001"
    title = "kernel reached without the current_backend() seam"
    hint = (
        "call the facade (core.kernels / utils.bitops / "
        "graphs.algorithms / partialcube.djokovic) or dispatch via "
        "repro.core.backend.current_backend()"
    )
    exclude = ("core/backend.py", "core/backend_numba.py", "analysis/")

    #: KernelBackend protocol methods: attribute calls on anything that
    #: is not the seam (or a module facade) bypass dispatch.
    KERNEL_METHODS = {
        "vertex_lsb_sums",
        "greedy_fixpoint",
        "all_pairs_distances",
        "argsort_labels",
        "popcount_labels",
        "pairwise_hamming",
        "djokovic_classes",
    }

    #: Reference implementations with their sanctioned home modules
    #: (the facade that owns them may call them; nobody else may).
    REFERENCE_IMPLS = {
        "_djokovic_classes_loop": ("partialcube/djokovic.py",),
        "_djokovic_classes_vectorized": ("partialcube/djokovic.py",),
        "swap_pass_reference": ("core/swaps.py",),
        "kl_swap_pass_reference": ("core/swaps.py",),
        "build_kernels": (),
        "_bitwise_count_fallback": ("utils/bitops.py",),
        "_bitwise_count_swar": ("utils/bitops.py",),
    }

    #: Backend classes: constructing one outside the backend module
    #: pins call sites to a single tier.
    BACKEND_CLASSES = {"NumpyBackend", "NumbaBackend", "NumbaParallelBackend"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        rel = ctx.relpath.as_posix()
        module_names = _imported_module_names(ctx.tree)
        backend_vars = _names_bound_from(ctx.tree, "current_backend")
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                modname = ""
                if isinstance(node, ast.ImportFrom):
                    modname = node.module or ""
                    imported = [a.name for a in node.names]
                else:
                    imported = [a.name for a in node.names]
                if modname.endswith("backend_numba") or any(
                    n.endswith("backend_numba") for n in imported
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "repro.core.backend_numba is backend-internal; import "
                        "repro.core.backend and dispatch instead",
                    )
                if isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        if alias.name in self.BACKEND_CLASSES:
                            yield ctx.finding(
                                self,
                                node,
                                f"importing {alias.name} pins call sites to one "
                                "tier; use current_backend()",
                            )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
                homes = self.REFERENCE_IMPLS.get(name)
                if homes is not None and rel not in homes:
                    yield ctx.finding(
                        self,
                        node,
                        f"direct reference-implementation call {name}() "
                        "bypasses the backend seam",
                    )
                elif name in self.BACKEND_CLASSES:
                    yield ctx.finding(
                        self,
                        node,
                        f"instantiating {name} pins this call site to one "
                        "tier; use current_backend()",
                    )
            elif isinstance(func, ast.Attribute) and func.attr in self.KERNEL_METHODS:
                recv = func.value
                # Sanctioned receivers: the seam itself, a variable bound
                # from it, or a module facade (module-attribute call).
                if isinstance(recv, ast.Call) and _attr_chain(recv.func)[-1:] == (
                    "current_backend",
                ):
                    continue
                if isinstance(recv, ast.Name) and (
                    recv.id in backend_vars or recv.id in module_names
                ):
                    continue
                chain = _attr_chain(recv)
                if chain and chain[0] in module_names:
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f".{func.attr}() on {ast.unparse(recv)!r} bypasses "
                    "current_backend() dispatch",
                )
            elif isinstance(func, ast.Attribute) and func.attr in self.REFERENCE_IMPLS:
                if rel not in self.REFERENCE_IMPLS[func.attr]:
                    yield ctx.finding(
                        self,
                        node,
                        f"direct reference-implementation call .{func.attr}() "
                        "bypasses the backend seam",
                    )


class NoBlockingInAsyncServe(PathScopedRule):
    """SRV001: the serve event loop never blocks."""

    id = "SRV001"
    title = "blocking call inside async def"
    hint = (
        "await asyncio.sleep / use asyncio streams, or push the work "
        "onto the scheduler's executor (loop.run_in_executor)"
    )
    paths = ("serve/",)

    _BLOCKING_CHAINS = {
        ("time", "sleep"): "time.sleep() blocks the event loop",
        ("os", "system"): "os.system() blocks the event loop",
        ("socket", "socket"): "sync socket IO blocks the event loop",
        ("socket", "create_connection"): "sync socket IO blocks the event loop",
        ("urllib", "request", "urlopen"): "sync HTTP blocks the event loop",
    }
    _BLOCKING_PREFIXES = {("subprocess",): "subprocess in the event loop"}
    _BLOCKING_METHODS = {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._scan_async_body(ctx, node)

    def _scan_async_body(
        self, ctx: FileContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # Descend through control flow but not into nested defs: a
        # nested sync def is typically shipped to an executor, and a
        # nested async def is scanned on its own by check().
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        chain = _attr_chain(node.func)
        if chain in self._BLOCKING_CHAINS:
            yield ctx.finding(self, node, self._BLOCKING_CHAINS[chain])
            return
        for prefix, msg in self._BLOCKING_PREFIXES.items():
            if chain[: len(prefix)] == prefix:
                yield ctx.finding(self, node, msg)
                return
        if chain == ("open",):
            yield ctx.finding(
                self, node, "sync file IO (open) blocks the event loop"
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._BLOCKING_METHODS
        ):
            yield ctx.finding(
                self,
                node,
                f"sync file IO (.{node.func.attr}) blocks the event loop",
            )


class ServeErrorTaxonomy(PathScopedRule):
    """SRV002: serve raises the errors.py taxonomy, not generic builtins."""

    id = "SRV002"
    title = "generic exception in serve/"
    hint = (
        "raise a repro.errors class (ReproError subclasses map to HTTP "
        "statuses; TransientError is the only retryable class) and name "
        "the exceptions you catch"
    )
    paths = ("serve/",)

    #: Generic builtins with no taxonomy meaning.  TypeError /
    #: NotImplementedError stay allowed: they mark API misuse by the
    #: *programmer*, which no status mapping or retry policy should see.
    BANNED_RAISES = {
        "Exception",
        "BaseException",
        "RuntimeError",
        "ValueError",
        "KeyError",
        "IndexError",
        "OSError",
        "IOError",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare 'except:' swallows cancellation and system exits",
                    hint="catch the narrowest exception class that can occur",
                )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                chain = _attr_chain(target)
                if chain and chain[-1] in self.BANNED_RAISES:
                    yield ctx.finding(
                        self,
                        node,
                        f"raise {chain[-1]} has no place in the serve error "
                        "taxonomy (status mapping / retry policy dispatch on "
                        "class)",
                    )


class RegisterAtImportScope(PathScopedRule):
    """REG001: ``REGISTRY.register`` only at module import scope."""

    id = "REG001"
    title = "REGISTRY.register outside module import scope"
    hint = (
        "move the registration to module top level (loops/ifs at top "
        "level are fine) so the registry's contents never depend on "
        "runtime call order"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._scan(ctx, ctx.tree.body, in_function=False)

    def _scan(
        self, ctx: FileContext, body: list[ast.stmt], in_function: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Decorators evaluate in the *enclosing* scope.
                for deco in stmt.decorator_list:
                    yield from self._scan_expr(ctx, deco, in_function)
                yield from self._scan(ctx, stmt.body, in_function=True)
            elif isinstance(stmt, ast.ClassDef):
                for deco in stmt.decorator_list:
                    yield from self._scan_expr(ctx, deco, in_function)
                # A class body at module top level runs at import time.
                yield from self._scan(ctx, stmt.body, in_function)
            else:
                yield from self._scan_expr(ctx, stmt, in_function)

    def _scan_expr(
        self, ctx: FileContext, node: ast.AST, in_function: bool
    ) -> Iterator[Finding]:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                in_function = True  # anything below runs at call time
            if not isinstance(sub, ast.Call):
                continue
            chain = _attr_chain(sub.func)
            if chain[-2:] == ("REGISTRY", "register") or chain == ("register",):
                if chain == ("register",) and not self._is_registry_register(ctx):
                    continue
                if in_function:
                    yield ctx.finding(
                        self,
                        sub,
                        "registration inside a function body runs at call "
                        "time, not import time",
                    )

    @staticmethod
    def _is_registry_register(ctx: FileContext) -> bool:
        """Whether a bare ``register(...)`` name is the Registry method."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if (alias.asname or alias.name) == "register":
                        return True
        return False


class ConfigIdentityCoverage(PathScopedRule):
    """CFG001: every PipelineConfig field is identity-consumed or excluded."""

    id = "CFG001"
    title = "PipelineConfig field outside the identity contract"
    hint = (
        "a config field must either reach identity() (asdict covers all "
        "fields) or be named in the class-level IDENTITY_EXCLUDED set "
        "with a comment saying why it cannot change results"
    )
    paths = ("api/pipeline.py",)

    CONFIG_CLASS = "PipelineConfig"
    EXCLUDED_SET = "IDENTITY_EXCLUDED"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        cls = next(
            (
                n
                for n in ast.walk(ctx.tree)
                if isinstance(n, ast.ClassDef) and n.name == self.CONFIG_CLASS
            ),
            None,
        )
        if cls is None:
            return
        fields = self._field_names(cls)
        excluded, excluded_node = self._excluded_set(cls)
        identity = next(
            (
                n
                for n in cls.body
                if isinstance(n, ast.FunctionDef) and n.name == "identity"
            ),
            None,
        )
        if identity is None:
            yield ctx.finding(
                self, cls, f"{self.CONFIG_CLASS} has no identity() method"
            )
            return
        if excluded_node is None:
            yield ctx.finding(
                self,
                cls,
                f"{self.CONFIG_CLASS} has no {self.EXCLUDED_SET} class "
                "attribute (the explicit identity-exclusion set)",
            )
            excluded = set()
        for name in sorted(excluded - fields):
            yield ctx.finding(
                self,
                excluded_node or cls,
                f"{self.EXCLUDED_SET} names {name!r}, which is not a "
                f"declared {self.CONFIG_CLASS} field",
            )
        uses_asdict = any(
            isinstance(n, ast.Call) and _attr_chain(n.func)[-1:] == ("asdict",)
            for n in ast.walk(identity)
        )
        loop_pops = self._excluded_loop_pop_targets(identity)
        for node in ast.walk(identity):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value not in excluded:
                    yield ctx.finding(
                        self,
                        node,
                        f"identity() drops {arg.value!r} without listing it "
                        f"in {self.EXCLUDED_SET}",
                    )
            elif isinstance(arg, ast.Name) and arg.id in loop_pops:
                pass  # the sanctioned `for name in IDENTITY_EXCLUDED` loop
            else:
                yield ctx.finding(
                    self,
                    node,
                    "identity() pops a dynamic key; only literal members of "
                    f"{self.EXCLUDED_SET} (or a loop over it) may be dropped",
                )
        if not uses_asdict:
            consumed = self._manual_keys(identity)
            for name in sorted(fields - consumed - excluded):
                yield ctx.finding(
                    self,
                    identity,
                    f"field {name!r} is neither consumed by identity() nor "
                    f"listed in {self.EXCLUDED_SET}",
                )

    @staticmethod
    def _field_names(cls: ast.ClassDef) -> set[str]:
        fields: set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                ann = ast.unparse(stmt.annotation)
                if not ann.startswith("ClassVar"):
                    fields.add(stmt.target.id)
        return fields

    def _excluded_set(
        self, cls: ast.ClassDef
    ) -> tuple[set[str], ast.stmt | None]:
        for stmt in cls.body:
            target = None
            value = None
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                target, value = stmt.target.id, stmt.value
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                target, value = stmt.targets[0].id, stmt.value
            if target != self.EXCLUDED_SET or value is None:
                continue
            names: set[str] = set()
            for node in ast.walk(value):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    names.add(node.value)
            return names, stmt
        return set(), None

    def _excluded_loop_pop_targets(self, identity: ast.FunctionDef) -> set[str]:
        targets: set[str] = set()
        for node in ast.walk(identity):
            if (
                isinstance(node, ast.For)
                and isinstance(node.target, ast.Name)
                and _attr_chain(node.iter)[-1:] == (self.EXCLUDED_SET,)
            ):
                targets.add(node.target.id)
        return targets

    @staticmethod
    def _manual_keys(identity: ast.FunctionDef) -> set[str]:
        keys: set[str] = set()
        for node in ast.walk(identity):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
        return keys


class StructuredLoggingOnly(PathScopedRule):
    """OBS001: serve/ and the runner log through ``repro.obs.log``."""

    id = "OBS001"
    title = "unstructured output in an observability-covered tree"
    hint = (
        "emit a JSON-lines event instead: repro.obs.get_logger("
        "component).info(event, **fields); stdout protocol writers "
        "and CLI-facing reports take a reasoned # repro: allow[OBS001]"
    )
    paths = ("serve/", "experiments/runner.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain == ("print",):
                yield ctx.finding(
                    self,
                    node,
                    "print() bypasses the structured event log (no level, "
                    "no component, no trace id, unsafe interleaving)",
                )
            elif chain == ("sys", "stderr", "write") or (
                chain[-2:] == ("stderr", "write") and len(chain) == 2
            ):
                yield ctx.finding(
                    self,
                    node,
                    "bare sys.stderr.write bypasses the structured event "
                    "log; use repro.obs.get_logger(...)",
                )


def _imported_module_names(tree: ast.Module) -> set[str]:
    """Local names bound to *modules* by imports (facade receivers)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                # `from repro.utils import bitops` binds a module; we
                # cannot see that statically, so treat any from-import
                # of a lowercase bare name as a potential module facade.
                bound = alias.asname or alias.name
                if "." not in bound and bound.islower():
                    names.add(bound)
    return names


def _names_bound_from(tree: ast.Module, callee: str) -> set[str]:
    """Variable names ever assigned from ``callee(...)`` in this file."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _attr_chain(node.value.func)[-1:] == (callee,)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def default_rules() -> tuple[Rule, ...]:
    """The full rule pack, in reporting-priority order."""
    return (
        DeterministicRandomness(),
        NoWallClockInIdentity(),
        BackendDispatchOnly(),
        NoBlockingInAsyncServe(),
        ServeErrorTaxonomy(),
        RegisterAtImportScope(),
        ConfigIdentityCoverage(),
        StructuredLoggingOnly(),
    )
