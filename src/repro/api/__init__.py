"""``repro.api`` -- the composable, registry-driven mapping pipeline.

One public path for CLI, library and experiment traffic:

>>> from repro.api import Pipeline, PipelineConfig  # doctest: +SKIP
>>> pipe = Pipeline("grid4x4", PipelineConfig(initial_mapping="c2"))
>>> result = pipe.run(ga, seed=1)

Members:

- :data:`~repro.api.registry.REGISTRY` / :class:`~repro.api.registry.Registry`
  -- the unified strategy registry (partitioners, initial mappings,
  enhancers, topologies, scenarios, hooks),
- :class:`~repro.api.topology.Topology` -- a processor-graph session
  owning the labeling and distance caches shared across runs,
- :class:`~repro.api.pipeline.Pipeline`,
  :class:`~repro.api.pipeline.PipelineConfig`,
  :class:`~repro.api.pipeline.PipelineResult` -- the staged pipeline,
- the stage protocols in :mod:`repro.api.stages`.

Only the registry loads eagerly; everything else resolves lazily so that
strategy-defining modules (``mapping.mapper``, ``experiments.topologies``)
can import the registry without a cycle.
"""

from __future__ import annotations

import importlib

from repro.api.registry import (  # noqa: F401  (re-exported)
    ENHANCE,
    INITIAL_MAPPING,
    PARTITION,
    REGISTRY,
    REPORT,
    SCENARIO,
    TOPOLOGY,
    VERIFY,
    Registry,
    register_topology,
)

_LAZY = {
    "Pipeline": "repro.api.pipeline",
    "PipelineConfig": "repro.api.pipeline",
    "PipelineResult": "repro.api.pipeline",
    "StageTiming": "repro.api.pipeline",
    "Topology": "repro.api.topology",
    "StageContext": "repro.api.stages",
    "PartitionStrategy": "repro.api.stages",
    "InitialMappingStrategy": "repro.api.stages",
    "EnhanceStrategy": "repro.api.stages",
    "VerifyHook": "repro.api.stages",
    "ReportHook": "repro.api.stages",
    "CaseMapping": "repro.api.stages",
    "KwayPartition": "repro.api.stages",
    "TimerEnhance": "repro.api.stages",
    # Kernel-backend selection (the "kernel_backend" registry kind).
    "KernelBackend": "repro.core.backend",
    "set_default_backend": "repro.core.backend",
    "use_backend": "repro.core.backend",
    "current_backend": "repro.core.backend",
    "available_backends": "repro.core.backend",
}

__all__ = [
    "Registry",
    "REGISTRY",
    "register_topology",
    "PARTITION",
    "INITIAL_MAPPING",
    "ENHANCE",
    "TOPOLOGY",
    "SCENARIO",
    "VERIFY",
    "REPORT",
    *_LAZY,
]


def __getattr__(name: str) -> object:
    if name in _LAZY:
        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
