"""The staged mapping pipeline: one public path for all traffic.

A :class:`Pipeline` binds a :class:`~repro.api.topology.Topology` session
to a frozen :class:`PipelineConfig` describing which strategies fill the
partition / initial-mapping / enhance slots and which verify and report
hooks run around them.  ``pipeline.run(ga)`` executes the paper's whole
chain -- partition, map, enhance -- on one application graph;
``run_batch`` streams many graphs through the same session, amortizing
the topology's recognition, labeling and distance precomputation, which
is the high-traffic serving shape the CLI, the library quickstart and the
experiment harness all share now.

Every run yields a :class:`PipelineResult` with the final mapping,
per-stage wall-clock timings, the standard quality metrics (edge cut and
Coco, before and after), and a content-addressed identity hash (the
artifact-store convention) for provenance.

Seeding
-------
``PipelineConfig.seed_policy`` selects how the run's ``seed`` reaches the
stages, mirroring the two conventions that existed before the redesign:

- ``"stream"`` (default): one generator ``make_rng(seed)`` is threaded
  through the stages in order, so later stages see statistically fresh
  randomness -- the experiment harness convention.
- ``"raw"``: every stage receives the ``seed`` value itself, so each
  seeded stage restarts from the same entropy -- the historical CLI
  convention (kept so ``python -m repro map`` output is byte-identical
  across the redesign).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, replace
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any, ClassVar

import numpy as np

from repro._version import __version__
from repro.api.registry import (
    ENHANCE,
    INITIAL_MAPPING,
    PARTITION,
    REGISTRY,
    REPORT,
    VERIFY,
    Registry,
)
from repro.api.stages import CaseMapping, StageContext
from repro.api.topology import Topology
from repro.core.config import TimerConfig
from repro.core.enhancer import TimerResult
from repro.errors import ConfigurationError
from repro.experiments.store import STORE_SCHEMA, cell_key
from repro.graphs.graph import Graph
from repro.mapping.objective import coco_from_distances
from repro.partitioning.metrics import edge_cut
from repro.partitioning.partition import Partition
from repro.utils.parallel import preferred_mp_context
from repro.utils.rng import SeedLike, derive_seed, make_rng
from repro.utils.stopwatch import Stopwatch

if TYPE_CHECKING:
    from repro.obs.trace import SpanContext, Tracer


@dataclass(frozen=True)
class PipelineConfig:
    """Frozen description of a pipeline's stages and knobs.

    Stage slots hold registry *names*; pass ``"none"`` (or ``""``) to
    disable a slot.  Strategy *instances* go to the :class:`Pipeline`
    constructor instead, keeping this config hashable and serializable
    into the run's identity hash.
    """

    partition: str = "kway"
    initial_mapping: str = "c2"
    enhance: str = "timer"
    epsilon: float = 0.03
    seed_policy: str = "stream"
    timer: TimerConfig = TimerConfig()
    pre_verify: tuple[str, ...] = ()
    post_verify: tuple[str, ...] = ()
    reports: tuple[str, ...] = ()
    #: Kernel backend this pipeline's runs execute under (a
    #: ``kernel_backend`` registry name or ``"auto"``; ``""`` inherits
    #: the process default -- see :func:`repro.core.backend.set_default_backend`).
    backend: str = ""

    #: Fields deliberately **excluded** from :meth:`identity` -- the
    #: explicit list the CFG001 lint rule checks, so "this knob cannot
    #: change results" is a reviewed decision, not a silent ``.pop()``.
    #: ``backend``: every registered kernel backend is contracted
    #: byte-identical to the numpy reference (the equivalence suite
    #: enforces it), so one identity / artifact cell covers a run no
    #: matter which execution tier computed it.
    IDENTITY_EXCLUDED: ClassVar[frozenset[str]] = frozenset({"backend"})

    def __post_init__(self) -> None:
        if self.seed_policy not in ("stream", "raw"):
            raise ConfigurationError(
                f"seed_policy must be 'stream' or 'raw', got {self.seed_policy!r}"
            )
        if self.backend:
            from repro.core.backend import resolve_backend_name

            try:
                resolve_backend_name(self.backend)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None

    def identity(self) -> dict:
        """JSON-able echo of every result-relevant knob.

        Every field is included except the members of
        :data:`IDENTITY_EXCLUDED`, whose rationale lives on that
        declaration (and whose coverage the CFG001 lint rule enforces).
        """
        identity = asdict(self)  # recurses into the nested TimerConfig
        for excluded in self.IDENTITY_EXCLUDED:
            identity.pop(excluded, None)
        return identity


@dataclass
class StageTiming:
    """Wall-clock seconds of one executed stage."""

    stage: str  # slot: partition / initial_mapping / enhance
    name: str  # strategy name that filled the slot
    seconds: float


@dataclass
class PipelineResult:
    """Everything one pipeline run produced.

    ``metrics`` always carries ``cut_before`` / ``cut_after`` /
    ``coco_before`` / ``coco_after`` (before == after when no enhance
    stage ran).  ``identity`` / ``identity_hash`` follow the artifact
    store's content-addressing convention, so two runs with the same hash
    computed the same numbers.
    """

    graph: str
    topology: str
    config: PipelineConfig
    seed: int | None
    mu_initial: np.ndarray
    mu_final: np.ndarray
    partition: Partition | None
    timer: TimerResult | None
    metrics: dict
    stage_timings: list[StageTiming] = field(default_factory=list)
    reports: dict = field(default_factory=dict)
    identity: dict = field(default_factory=dict)
    identity_hash: str = ""
    #: Resolved kernel backend the run executed under (provenance only;
    #: never part of ``identity`` -- backends are byte-identical).
    backend: str = ""

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock time across executed stages."""
        return sum(t.seconds for t in self.stage_timings)

    def stage_seconds(self, stage: str) -> float:
        """Seconds spent in one slot (0.0 when it did not run)."""
        return sum(t.seconds for t in self.stage_timings if t.stage == stage)

    @property
    def coco_before(self) -> float:
        return self.metrics["coco_before"]

    @property
    def coco_after(self) -> float:
        return self.metrics["coco_after"]

    @property
    def cut_before(self) -> float:
        return self.metrics["cut_before"]

    @property
    def cut_after(self) -> float:
        return self.metrics["cut_after"]

    @property
    def coco_improvement(self) -> float:
        """Relative Coco reduction (positive = better)."""
        if not self.metrics["coco_before"]:
            return 0.0
        return 1.0 - self.metrics["coco_after"] / self.metrics["coco_before"]

    def record_spans(self, tracer: "Tracer", parent: "SpanContext") -> None:
        """Convert the per-stage timings into child spans under ``parent``.

        The Stopwatch already measured every stage; this replays those
        monotonic durations as a ``pipeline`` span with one
        ``stage:<slot>`` child each, carrying the run's identity hash
        and final quality metrics as attributes -- the bridge between
        a :class:`PipelineResult` and a cross-process trace tree (the
        serve pool worker and the in-process scheduler path both call
        it; the experiment runner uses it to persist span trees).
        """
        root = tracer.span(
            "pipeline",
            parent,
            graph=self.graph,
            topology=self.topology,
            identity_hash=self.identity_hash,
            cut_after=self.metrics.get("cut_after"),
            coco_after=self.metrics.get("coco_after"),
        )
        for timing in self.stage_timings:
            child = tracer.span(
                f"stage:{timing.stage}", root.context, impl=timing.name
            )
            child.finish(duration=timing.seconds)
        root.finish(duration=self.elapsed_seconds)


def _off(name: str) -> bool:
    return name in ("", "none")


def _array_fingerprint(arr: np.ndarray | None) -> str | None:
    """Content hash of a caller-supplied input array (None = not supplied)."""
    if arr is None:
        return None
    data = np.ascontiguousarray(arr, dtype=np.int64).tobytes()
    return hashlib.sha256(data).hexdigest()[:16]


class Pipeline:
    """A staged mapping pipeline bound to one topology session.

    Stages come from ``config`` by registry name, or directly as
    instances via the keyword overrides (``partition_stage`` /
    ``mapping_stage`` / ``enhance_stage``); an explicit instance wins
    over the configured name.  All names resolve at construction time, so
    a typo fails before any expensive work starts.
    """

    def __init__(
        self,
        topology: "Topology | Graph | str",
        config: PipelineConfig | None = None,
        *,
        partition_stage: Any = None,
        mapping_stage: Any = None,
        enhance_stage: Any = None,
        registry: Registry = REGISTRY,
    ) -> None:
        self.topology = Topology.from_spec(topology)
        self.config = config or PipelineConfig()
        cfg = self.config
        self.registry = registry
        # Remembered verbatim so with_config() can reproduce the assembly.
        self._stage_overrides = {
            "partition_stage": partition_stage,
            "mapping_stage": mapping_stage,
            "enhance_stage": enhance_stage,
        }
        self._partition = partition_stage
        if self._partition is None and not _off(cfg.partition):
            self._partition = registry.get(PARTITION, cfg.partition)
        self._mapping = mapping_stage
        if self._mapping is None and not _off(cfg.initial_mapping):
            # Validates the case exists in the unified registry; the
            # adapter defers to compute_initial_mapping at run time.
            registry.get(INITIAL_MAPPING, cfg.initial_mapping)
            self._mapping = CaseMapping(cfg.initial_mapping)
        self._enhance = enhance_stage
        if self._enhance is None and not _off(cfg.enhance):
            self._enhance = registry.get(ENHANCE, cfg.enhance)
        self._pre_verify = [
            (name, registry.get(VERIFY, name)) for name in cfg.pre_verify
        ]
        self._post_verify = [
            (name, registry.get(VERIFY, name)) for name in cfg.post_verify
        ]
        self._reports = [(name, registry.get(REPORT, name)) for name in cfg.reports]

    # -- configuration sugar -------------------------------------------
    def with_config(self, **changes: Any) -> "Pipeline":
        """A sibling pipeline on the same session with config changes.

        Explicit stage instances passed to the original constructor are
        carried over unchanged.
        """
        return Pipeline(
            self.topology,
            replace(self.config, **changes),
            registry=self.registry,
            **self._stage_overrides,
        )

    # -- execution -----------------------------------------------------
    def run(
        self,
        ga: Graph,
        *,
        mu: np.ndarray | None = None,
        partition: Partition | None = None,
        seed: SeedLike = None,
    ) -> PipelineResult:
        """Run the configured stages on one application graph.

        ``partition`` and ``mu`` short-circuit the corresponding stages
        (the experiment harness shares one partition across cases; the
        ``enhance`` CLI starts from a mapping file).

        The whole run executes under ``config.backend`` (a thread-local
        kernel-backend scope, so concurrent serve-tier runs with
        different configs never leak into each other); the resolved
        backend name is recorded on ``result.backend``.
        """
        from repro.core.backend import get_backend, use_backend

        with use_backend(self.config.backend or None):
            result = self._run_stages(ga, mu=mu, partition=partition, seed=seed)
            result.backend = get_backend()
        return result

    def _run_stages(
        self,
        ga: Graph,
        *,
        mu: np.ndarray | None = None,
        partition: Partition | None = None,
        seed: SeedLike = None,
    ) -> PipelineResult:
        cfg = self.config
        topology = self.topology
        partition_given = partition is not None
        mu_given = mu is not None
        stage_seed: SeedLike = make_rng(seed) if cfg.seed_policy == "stream" else seed
        timings: list[StageTiming] = []
        ctx = StageContext(ga=ga, topology=topology, seed=seed, phase="pre")
        if mu is not None:
            ctx.mu_initial = np.asarray(mu, dtype=np.int64)
        self._run_hooks(self._pre_verify, ctx)

        part = partition
        if mu is None:
            if part is None:
                if self._partition is None:
                    raise ConfigurationError(
                        "pipeline has no partition stage and no partition "
                        "or mapping was provided"
                    )
                sw = Stopwatch()
                with sw:
                    part = self._partition(
                        ga, topology.n, epsilon=cfg.epsilon, seed=stage_seed
                    )
                timings.append(
                    StageTiming(
                        "partition",
                        getattr(self._partition, "name", cfg.partition),
                        sw.elapsed,
                    )
                )
            if self._mapping is None:
                raise ConfigurationError(
                    "pipeline has no initial-mapping stage and no mapping "
                    "was provided"
                )
            sw = Stopwatch()
            with sw:
                out = self._mapping(part, topology.graph, seed=stage_seed)
            # A mapping stage may return (mu, seconds) to report its own
            # inner timing -- the paper's methodology times only the
            # mapping algorithm, not registry lookup or block->vertex
            # expansion (compute_initial_mapping does this).
            if isinstance(out, tuple):
                mu, inner_seconds = out
                mapping_seconds = float(inner_seconds)
            else:
                mu, mapping_seconds = out, sw.elapsed
            timings.append(
                StageTiming(
                    "initial_mapping",
                    getattr(self._mapping, "name", cfg.initial_mapping),
                    mapping_seconds,
                )
            )
        ctx.partition = part
        mu_initial = np.asarray(mu, dtype=np.int64)
        ctx.mu_initial = mu_initial

        timer_res: TimerResult | None = None
        mu_final = mu_initial
        if self._enhance is not None:
            sw = Stopwatch()
            with sw:
                timer_res = self._enhance(
                    ga, topology, mu_initial, seed=stage_seed, config=cfg.timer
                )
            timings.append(
                StageTiming(
                    "enhance", getattr(self._enhance, "name", cfg.enhance), sw.elapsed
                )
            )
            mu_final = np.asarray(timer_res.mu_after, dtype=np.int64)

        metrics = self._metrics(ga, mu_initial, mu_final, timer_res)
        ctx.mu_final = mu_final
        ctx.timer = timer_res
        ctx.metrics = metrics
        ctx.phase = "post"
        self._run_hooks(self._post_verify, ctx)
        reports = {name: hook(ctx) for name, hook in self._reports}

        identity = self._identity(
            ga,
            seed,
            partition.assignment if partition_given else None,
            np.asarray(mu, dtype=np.int64) if mu_given else None,
        )
        return PipelineResult(
            graph=ga.name,
            topology=topology.name,
            config=cfg,
            seed=int(seed) if isinstance(seed, (int, np.integer)) else None,
            mu_initial=mu_initial,
            mu_final=mu_final,
            partition=part,
            timer=timer_res,
            metrics=metrics,
            stage_timings=timings,
            reports=reports,
            identity=identity,
            identity_hash=cell_key(identity),
        )

    def run_batch(
        self,
        graphs: Sequence[Graph],
        *,
        seeds: Sequence[SeedLike] | None = None,
        seed: int | None = None,
        jobs: int = 1,
    ) -> list[PipelineResult]:
        """Run every graph through the session, sharing all topology caches.

        Per-graph seeds come from ``seeds`` verbatim, or derive from the
        root ``seed`` by batch *position*: statistically independent
        streams, stable under appending or truncating the batch (graph
        ``i`` always gets the same stream), but reindexed if an earlier
        graph is removed.  Callers needing streams keyed to graph
        identity rather than position pass explicit ``seeds`` (e.g. via
        :func:`repro.utils.rng.derive_seed` on their own names, the
        experiment runner's convention).

        ``jobs > 1`` fans the batch out over a worker-process pool (fork
        on Linux -- workers inherit the warmed topology caches -- spawn
        elsewhere).  Because every per-graph seed is derived from the
        batch identity rather than the execution order, ``jobs=N`` is
        byte-identical to ``jobs=1``; results come back in input order.
        ``seeds`` entries must then be picklable (``None``/ints, not
        live generators), as must any explicit stage instances.
        """
        graphs = list(graphs)
        if seeds is None:
            if seed is None:
                seeds = [None] * len(graphs)
            else:
                seeds = [
                    derive_seed(seed, "pipeline-batch", i)
                    for i in range(len(graphs))
                ]
        elif len(seeds) != len(graphs):
            raise ConfigurationError(
                f"got {len(seeds)} seeds for {len(graphs)} graphs"
            )
        else:
            seeds = list(seeds)
        if jobs <= 1 or len(graphs) <= 1:
            return [self.run(ga, seed=s) for ga, s in zip(graphs, seeds)]
        if any(isinstance(s, np.random.Generator) for s in seeds):
            raise ConfigurationError(
                "run_batch(jobs>1) needs picklable seeds (None or ints); "
                "live numpy Generators cannot cross process boundaries"
            )
        self.warm_caches()
        ctx = preferred_mp_context()
        payload = self._pickle_payload()
        with ctx.Pool(
            processes=min(int(jobs), len(graphs)),
            initializer=_batch_worker_init,
            initargs=(payload,),
        ) as pool:
            return pool.starmap(_batch_worker_run, zip(graphs, seeds), chunksize=1)

    def warm_caches(self) -> None:
        """Materialize the session caches this pipeline's stages will read.

        Called before any process boundary (``run_batch(jobs>1)``, the
        serve tier's supervised pool): forked workers inherit the warmed
        caches (labeling computed exactly once per batch, same as
        ``jobs=1``) and spawn workers receive them pickled inside the
        topology payload -- either way the *parent's* labeling counters
        account for the work.  Verify/report hooks may read either
        cache, so with hooks configured both get warmed.
        """
        has_hooks = bool(self._pre_verify or self._post_verify or self._reports)
        if self._enhance is not None or has_hooks:
            self.topology.labeling
        if self._enhance is None or has_hooks:
            self.topology.distances

    # -- internals -----------------------------------------------------
    @staticmethod
    def _run_hooks(hooks: Sequence[tuple[str, Any]], ctx: StageContext) -> None:
        for _name, hook in hooks:
            hook(ctx)

    def _metrics(
        self,
        ga: Graph,
        mu_initial: np.ndarray,
        mu_final: np.ndarray,
        timer_res: TimerResult | None,
    ) -> dict:
        """Standard quality metrics; reuses TIMER's numbers when it ran.

        Without an enhance stage, Coco comes from the session's cached
        distance matrix -- same floats as ``mapping.objective.coco`` but
        without recomputing the NCM per call.
        """
        if timer_res is not None:
            return {
                "cut_before": float(timer_res.cut_before),
                "cut_after": float(timer_res.cut_after),
                "coco_before": float(timer_res.coco_before),
                "coco_after": float(timer_res.coco_after),
            }
        cut = float(edge_cut(ga, mu_final))
        coco = float(coco_from_distances(ga, mu_final, self.topology.distances))
        return {
            "cut_before": cut,
            "cut_after": cut,
            "coco_before": coco,
            "coco_after": coco,
        }

    def _pickle_payload(self) -> tuple:
        """What crosses a process boundary instead of the Pipeline itself.

        The default ``REGISTRY`` travels as ``None`` and is re-resolved
        from the worker's own imports -- its topology builders are
        lambdas and must never enter a pickle stream.  A *custom*
        registry is included verbatim, so workers resolve the same
        strategies as the parent (an unpicklable custom registry fails
        loudly at submit time rather than silently resolving stage names
        against the wrong registry).
        """
        return (
            self.topology.graph,
            self.topology._labeling,
            self.topology._distances,
            self.topology.name,
            self.config,
            self._stage_overrides,
            None if self.registry is REGISTRY else self.registry,
        )

    def __reduce__(self) -> tuple:
        # Explicit stage instances survive when they are picklable --
        # all built-ins are.
        return (_rebuild_pipeline, self._pickle_payload())

    def _identity(
        self,
        ga: Graph,
        seed: SeedLike,
        partition_in: np.ndarray | None,
        mu_in: np.ndarray | None,
    ) -> dict:
        # Caller-supplied inputs enter the hash by *content* fingerprint
        # (None when the pipeline computed the stage itself), so two runs
        # share a hash only when they computed the same numbers.
        return {
            "schema": STORE_SCHEMA,
            "kind": "pipeline",
            "code": __version__,
            "topology": self.topology.name,
            "graph": {"name": ga.name, "n": int(ga.n), "m": int(ga.m)},
            "seed": int(seed) if isinstance(seed, (int, np.integer)) else None,
            "config": self.config.identity(),
            "inputs": {
                "partition": _array_fingerprint(partition_in),
                "mu": _array_fingerprint(mu_in),
            },
        }


# ----------------------------------------------------------------------
# run_batch worker plumbing
# ----------------------------------------------------------------------
#: Per-worker pipeline, set by the pool initializer.  Fork workers
#: inherit the parent's warmed caches through the payload objects; spawn
#: workers receive them pickled.
_BATCH_PIPELINE: "Pipeline | None" = None


def _rebuild_pipeline(
    graph: Graph,
    labeling: Any,
    distances: "np.ndarray | None",
    name: str,
    config: PipelineConfig,
    stage_overrides: dict,
    registry: "Registry | None" = None,
) -> "Pipeline":
    """Reconstruct a Pipeline from its picklable payload (see __reduce__)."""
    topology = Topology.from_graph(graph, labeling=labeling, name=name)
    topology._distances = distances
    return Pipeline(
        topology,
        config,
        registry=REGISTRY if registry is None else registry,
        **stage_overrides,
    )


def _batch_worker_init(payload: tuple) -> None:
    global _BATCH_PIPELINE
    _BATCH_PIPELINE = _rebuild_pipeline(*payload)


def _batch_worker_run(ga: Graph, seed: SeedLike) -> PipelineResult:
    assert _BATCH_PIPELINE is not None, "worker used before initializer ran"
    return _BATCH_PIPELINE.run(ga, seed=seed)
