"""The unified strategy registry behind :mod:`repro.api`.

Before this module, the repo grew three ad-hoc registries: the initial
mapping algorithms in ``mapping.mapper``, the topology builders in
``experiments.topologies`` and the scenario tables in
``experiments.matrix``.  All three now register into one namespaced
:class:`Registry`, so CLI, library and experiment traffic resolve
pluggable strategies the same way, and downstream code can add its own
partitioners / mappers / enhancers / topologies without patching any
module-private dict.

Namespaces (``kind``) in use by the built-in stages:

===================  ====================================================
kind                 values
===================  ====================================================
``partition``        :class:`PartitionStrategy` callables (``kway``)
``initial_mapping``  the paper's cases ``c1 .. c4``
``enhance``          :class:`EnhanceStrategy` callables (``timer``)
``topology``         processor-graph builders (``grid16x16``, ...)
``scenario``         experiment sweep scenarios (``paper``, ...)
``verify``           pipeline verification hooks
``report``           pipeline report hooks
``kernel_backend``   :class:`repro.core.backend.KernelBackend` instances
                     (``numpy``, ``numba``, ``numba-parallel``)
===================  ====================================================

This module is deliberately dependency-free (only :mod:`repro.errors`):
the modules that *define* strategies import the registry, never the
other way around, so there are no import cycles.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from collections.abc import Callable, Iterable, Iterator
from typing import Any

from repro.errors import ConfigurationError

#: Canonical namespace names, importable so call sites avoid typos.
PARTITION = "partition"
INITIAL_MAPPING = "initial_mapping"
ENHANCE = "enhance"
TOPOLOGY = "topology"
SCENARIO = "scenario"
VERIFY = "verify"
REPORT = "report"
KERNEL_BACKEND = "kernel_backend"


class Registry:
    """A namespaced ``(kind, name) -> value`` registry.

    Values are arbitrary objects -- stage callables, dataclass instances,
    builder thunks.  Registration is idempotent only under ``overwrite=True``;
    accidental double registration of a different value fails fast, which
    is what catches two plugins claiming the same strategy name.
    """

    def __init__(self) -> None:
        self._spaces: dict[str, dict[str, Any]] = {}
        self._listeners: dict[str, list[Callable[[str], None]]] = {}

    def subscribe(self, kind: str, listener: Callable[[str], None]) -> None:
        """Call ``listener(name)`` whenever ``kind``'s entries change.

        Lets derived caches (e.g. :class:`~repro.api.topology.Topology`
        sessions) invalidate themselves on re-registration instead of
        silently serving stale values.
        """
        self._listeners.setdefault(kind, []).append(listener)

    def _notify(self, kind: str, name: str) -> None:
        for listener in self._listeners.get(kind, ()):
            listener(name)

    # -- writing -------------------------------------------------------
    def register(
        self,
        kind: str,
        name: str | None = None,
        value: Any = None,
        *,
        overwrite: bool = False,
    ) -> Any:
        """Register ``value`` under ``(kind, name)``.

        Without ``value`` this returns a decorator, with ``name``
        defaulting to the decorated object's ``__name__``::

            @REGISTRY.register("verify")
            def balance(ctx): ...
        """
        if value is None:

            def decorator(obj: Any) -> Any:
                self.register(
                    kind, name or getattr(obj, "__name__", None), obj,
                    overwrite=overwrite,
                )
                return obj

            return decorator
        if not name:
            raise ConfigurationError(f"cannot register a {kind!r} without a name")
        space = self._spaces.setdefault(kind, {})
        if name in space and not overwrite and space[name] is not value:
            raise ConfigurationError(
                f"{kind} strategy {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        space[name] = value
        self._notify(kind, name)
        return value

    def unregister(self, kind: str, name: str) -> None:
        """Remove ``(kind, name)``; missing entries are ignored."""
        if self._spaces.get(kind, {}).pop(name, None) is not None:
            self._notify(kind, name)

    # -- reading -------------------------------------------------------
    def get(self, kind: str, name: str) -> Any:
        """The value registered under ``(kind, name)``.

        Unknown names raise :class:`ConfigurationError` listing what *is*
        registered -- the message callers relied on from the old per-module
        registries.
        """
        space = self._spaces.get(kind, {})
        if name not in space:
            known = ", ".join(sorted(space)) or "<nothing>"
            raise ConfigurationError(
                f"unknown {kind} {name!r}; known: {known}"
            )
        return space[name]

    def resolve(self, kind: str, spec: Any) -> Any:
        """``spec`` verbatim unless it is a string, then :meth:`get`.

        This is what lets pipelines be assembled "from stage names or
        instances" with one code path.
        """
        if isinstance(spec, str):
            return self.get(kind, spec)
        return spec

    def names(self, kind: str) -> tuple[str, ...]:
        """Sorted names registered under ``kind``."""
        return tuple(sorted(self._spaces.get(kind, {})))

    def kinds(self) -> tuple[str, ...]:
        """Sorted namespaces that have at least one entry."""
        return tuple(sorted(k for k, v in self._spaces.items() if v))

    def items(self, kind: str) -> Iterable[tuple[str, Any]]:
        """``(name, value)`` pairs of ``kind`` in sorted name order."""
        space = self._spaces.get(kind, {})
        return tuple((name, space[name]) for name in sorted(space))

    def __contains__(self, key: tuple[str, str]) -> bool:
        kind, name = key
        return name in self._spaces.get(kind, {})


#: The process-wide registry every built-in module registers into.
REGISTRY = Registry()


class RegistryView(MutableMapping):
    """A live dict-like view of one registry namespace.

    Backs the legacy module-level dicts the registry absorbed
    (``mapping.mapper._REGISTRY``, ``experiments.matrix.
    BUILTIN_SCENARIOS``): reads always reflect the registry's current
    state, and writes -- the pre-registry extension pattern
    ``table[name] = value`` -- register through instead of landing in a
    throwaway snapshot.
    """

    def __init__(self, registry: Registry, kind: str) -> None:
        self._registry = registry
        self._kind = kind

    def __getitem__(self, key: str) -> Any:
        if (self._kind, key) not in self._registry:
            raise KeyError(key)
        return self._registry.get(self._kind, key)

    def __setitem__(self, key: str, value: Any) -> None:
        self._registry.register(self._kind, key, value, overwrite=True)

    def __delitem__(self, key: str) -> None:
        if (self._kind, key) not in self._registry:
            raise KeyError(key)
        self._registry.unregister(self._kind, key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names(self._kind))

    def __len__(self) -> int:
        return len(self._registry.names(self._kind))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegistryView({self._kind!r}, {dict(self)!r})"


def register_topology(name: str, builder: Callable, *, overwrite: bool = False) -> Callable:
    """Convenience wrapper: register a processor-graph builder."""
    # repro: allow[REG001] reason=this IS the sanctioned public registration entry point; callers invoke it from their own module import scope
    return REGISTRY.register(TOPOLOGY, name, builder, overwrite=overwrite)
