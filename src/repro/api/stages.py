"""Typed stage protocols and the built-in stage implementations.

A :class:`~repro.api.pipeline.Pipeline` is a fixed sequence of slots --
partition, initial mapping, enhance -- plus pre/post verify and report
hooks.  Each slot accepts either a *name* resolved through the unified
:data:`~repro.api.registry.REGISTRY` or a strategy *instance* satisfying
the protocol, so downstream code can plug in its own algorithms without
touching this package.

Protocols (structural -- no subclassing required):

- :class:`PartitionStrategy`: ``(ga, k, *, epsilon, seed) -> Partition``
- :class:`InitialMappingStrategy`: ``(part, gp, *, seed) -> mu`` where
  ``mu`` is the vertex -> PE array,
- :class:`EnhanceStrategy`: ``(ga, topology, mu, *, seed, config) ->
  TimerResult``,
- :class:`VerifyHook` / :class:`ReportHook`: ``(ctx) -> None / value``
  over a :class:`StageContext`.

Importing this module registers the built-ins: partition ``kway``,
enhance ``timer``, verify ``mapping-valid`` / ``balance-preserved`` /
``labeling-isometric`` and report ``quality`` / ``summary``.  The
initial-mapping names (``c1 .. c4``) are registered by
:mod:`repro.mapping.mapper`, which this registry absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro.api.registry import ENHANCE, PARTITION, REGISTRY, REPORT, VERIFY
from repro.core.config import TimerConfig
from repro.core.enhancer import TimerResult, timer_enhance
from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.mapping.mapper import compute_initial_mapping
from repro.partitioning.kway import partition_kway
from repro.partitioning.partition import Partition
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.topology import Topology


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------
@runtime_checkable
class PartitionStrategy(Protocol):
    """Stage 1: split ``ga`` into ``k`` balanced blocks."""

    name: str

    def __call__(
        self, ga: Graph, k: int, *, epsilon: float, seed: SeedLike
    ) -> Partition: ...


@runtime_checkable
class InitialMappingStrategy(Protocol):
    """Stage 2: turn a partition into a vertex -> PE mapping ``mu``.

    May return either the mapping array, or ``(mu, seconds)`` to report
    the algorithm's own inner timing (excluding bookkeeping), which the
    pipeline then records as the stage time -- the paper's timing
    methodology.
    """

    name: str

    def __call__(
        self, part: Partition, gp: Graph, *, seed: SeedLike
    ) -> "np.ndarray | tuple[np.ndarray, float]": ...


@runtime_checkable
class EnhanceStrategy(Protocol):
    """Stage 3: improve ``mu`` on the topology (TIMER, or a stand-in)."""

    name: str

    def __call__(
        self,
        ga: Graph,
        topology: "Topology",
        mu: np.ndarray,
        *,
        seed: SeedLike,
        config: TimerConfig,
    ) -> TimerResult: ...


class VerifyHook(Protocol):
    """Pre/post invariant check; raise :class:`repro.errors.ReproError`."""

    def __call__(self, ctx: "StageContext") -> None: ...


class ReportHook(Protocol):
    """Post-run summarizer; the return value lands in ``result.reports``."""

    def __call__(self, ctx: "StageContext") -> Any: ...


@dataclass
class StageContext:
    """Everything a verify/report hook may inspect about one run.

    ``phase`` is ``"pre"`` before any stage executed (``mu_initial`` /
    ``mu_final`` only set when the caller provided a mapping) and
    ``"post"`` once the pipeline finished and ``metrics`` is populated.
    """

    ga: Graph
    topology: "Topology"
    seed: SeedLike = None
    partition: Partition | None = None
    mu_initial: np.ndarray | None = None
    mu_final: np.ndarray | None = None
    timer: TimerResult | None = None
    metrics: dict = field(default_factory=dict)
    phase: str = "pre"


# ----------------------------------------------------------------------
# Built-in stages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KwayPartition:
    """The multilevel k-way partitioner (KaHIP stand-in) as a stage."""

    name: str = "kway"

    def __call__(
        self, ga: Graph, k: int, *, epsilon: float, seed: SeedLike
    ) -> Partition:
        return partition_kway(ga, k, epsilon=epsilon, seed=seed)


@dataclass(frozen=True)
class CaseMapping:
    """Initial-mapping stage for one registered case (``c1 .. c4``).

    Thin adapter over :func:`repro.mapping.compute_initial_mapping`,
    which resolves the case through the same unified registry.  Returns
    ``(mu, seconds)`` where the seconds cover only the mapping algorithm
    itself (the paper's timing methodology).
    """

    case: str

    @property
    def name(self) -> str:
        return self.case

    def __call__(
        self, part: Partition, gp: Graph, *, seed: SeedLike
    ) -> tuple[np.ndarray, float]:
        return compute_initial_mapping(self.case, part, gp, seed=seed)


@dataclass(frozen=True)
class TimerEnhance:
    """Algorithm 1 (TIMER) as the enhance stage."""

    name: str = "timer"

    def __call__(
        self,
        ga: Graph,
        topology: "Topology",
        mu: np.ndarray,
        *,
        seed: SeedLike,
        config: TimerConfig,
    ) -> TimerResult:
        return timer_enhance(
            ga, topology.graph, topology.labeling, mu, seed=seed, config=config
        )


# ----------------------------------------------------------------------
# Built-in verify / report hooks
# ----------------------------------------------------------------------
def verify_mapping_valid(ctx: StageContext) -> None:
    """Mappings must cover ``V_a`` and stay inside ``V_p``."""
    for label, mu in (("initial", ctx.mu_initial), ("final", ctx.mu_final)):
        if mu is None:
            continue
        mu = np.asarray(mu)
        if mu.shape != (ctx.ga.n,):
            raise MappingError(
                f"{label} mapping has shape {mu.shape}, expected ({ctx.ga.n},)"
            )
        if mu.size and (mu.min() < 0 or mu.max() >= ctx.topology.n):
            raise MappingError(f"{label} mapping maps outside V_p")


def verify_balance_preserved(ctx: StageContext) -> None:
    """TIMER must preserve block sizes exactly (paper section 4)."""
    if ctx.mu_initial is None or ctx.mu_final is None:
        return
    k = ctx.topology.n
    before = np.bincount(np.asarray(ctx.mu_initial), minlength=k)
    after = np.bincount(np.asarray(ctx.mu_final), minlength=k)
    if not np.array_equal(before, after):
        raise MappingError("enhancement changed the block-size distribution")


def verify_labeling_isometric(ctx: StageContext) -> None:
    """Hamming distances of the topology labels must equal hop distances."""
    from repro.utils.bitops import pairwise_hamming

    ham = pairwise_hamming(ctx.topology.labeling.labels)
    if not np.array_equal(ham, ctx.topology.distances):
        raise MappingError("topology labeling is not isometric")


def report_quality(ctx: StageContext) -> dict:
    """The standard metric dict (cut / Coco before and after)."""
    return dict(ctx.metrics)


def report_summary(ctx: StageContext) -> str:
    """One human-readable line, the CLI's historical format."""
    m = ctx.metrics
    return (
        f"{ctx.ga.name} -> {ctx.topology.name}: "
        f"Coco {m.get('coco_before', float('nan')):.1f} -> "
        f"{m.get('coco_after', float('nan')):.1f}, "
        f"cut {m.get('cut_before', float('nan')):.1f} -> "
        f"{m.get('cut_after', float('nan')):.1f}"
    )


REGISTRY.register(PARTITION, "kway", KwayPartition())
REGISTRY.register(ENHANCE, "timer", TimerEnhance())
REGISTRY.register(VERIFY, "mapping-valid", verify_mapping_valid)
REGISTRY.register(VERIFY, "balance-preserved", verify_balance_preserved)
REGISTRY.register(VERIFY, "labeling-isometric", verify_labeling_isometric)
REGISTRY.register(REPORT, "quality", report_quality)
REGISTRY.register(REPORT, "summary", report_summary)

__all__ = [
    "PartitionStrategy",
    "InitialMappingStrategy",
    "EnhanceStrategy",
    "VerifyHook",
    "ReportHook",
    "StageContext",
    "KwayPartition",
    "CaseMapping",
    "TimerEnhance",
    "verify_mapping_valid",
    "verify_balance_preserved",
    "verify_labeling_isometric",
    "report_quality",
    "report_summary",
]
