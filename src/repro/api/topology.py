"""The :class:`Topology` session object -- one processor graph, all caches.

TIMER's economics hinge on amortization: recognizing a processor graph as
a partial cube and labeling it costs ``O(|Ep|^2)``-ish work, and the
all-pairs distance matrix behind Coco evaluation costs ``O(|Vp| |Ep|)``;
both are pure functions of the *topology* and independent of the
application graph.  A ``Topology`` owns that precomputation and shares it
across every :meth:`~repro.api.pipeline.Pipeline.run` -- which is exactly
the high-traffic serving shape: build the session once, stream many
application graphs through it.

All caches are lazy, so paths that never touch them (e.g. the experiment
runner, which evaluates Coco from labels) never pay for them.
``labelings_computed`` counts actual labeling computations; the batch
test asserts it stays at one across a whole ``run_batch``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.api.registry import REGISTRY, TOPOLOGY
from repro.errors import ConfigurationError
from repro.graphs.algorithms import all_pairs_distances
from repro.graphs.graph import Graph
from repro.partialcube.djokovic import PartialCubeLabeling, partial_cube_labeling

#: Process-wide session cache for registered topology names.  Entries
#: are dropped automatically when their builder is re-registered or
#: unregistered, so a session never outlives its registry entry.
_SESSIONS: dict[str, "Topology"] = {}

REGISTRY.subscribe(TOPOLOGY, lambda name: _SESSIONS.pop(name, None))


class Topology:
    """A processor graph plus its lazily computed, shared precomputation."""

    def __init__(
        self,
        graph: Graph,
        labeling: PartialCubeLabeling | None = None,
        name: str | None = None,
    ) -> None:
        self.graph = graph
        self.name = name or graph.name or "topology"
        self._labeling = labeling
        self._distances: np.ndarray | None = None
        #: number of times the partial-cube labeling was actually computed
        #: by this session (0 when it was supplied or never needed).
        self.labelings_computed = 0

    # -- constructors --------------------------------------------------
    @classmethod
    def from_name(cls, name: str) -> "Topology":
        """The shared session for a registered topology name.

        Sessions are cached per process, so every pipeline (and every
        experiment-runner task of a forked worker) resolving the same
        name shares one labeling and one distance matrix.
        """
        if name not in _SESSIONS:
            builder = REGISTRY.get(TOPOLOGY, name)
            _SESSIONS[name] = cls(builder(), name=name)
        return _SESSIONS[name]

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        labeling: PartialCubeLabeling | None = None,
        name: str | None = None,
    ) -> "Topology":
        """Wrap an in-memory processor graph (labeling optional)."""
        return cls(graph, labeling=labeling, name=name)

    @classmethod
    def from_file(cls, path: str | Path) -> "Topology":
        """Load a METIS graph file as a topology session."""
        from repro.graphs.io import read_metis

        path = Path(path)
        return cls(read_metis(str(path), name=path.stem), name=path.stem)

    @classmethod
    def from_spec(cls, spec: "str | Path | Graph | Topology") -> "Topology":
        """Registered name, METIS path, graph, or pass-through session.

        This is the CLI's historical resolution order: a registered name
        wins over a file of the same spelling.
        """
        if isinstance(spec, Topology):
            return spec
        if isinstance(spec, Graph):
            return cls.from_graph(spec)
        if (TOPOLOGY, str(spec)) in REGISTRY:
            return cls.from_name(str(spec))
        if Path(spec).is_file():
            return cls.from_file(spec)
        raise ConfigurationError(
            f"unknown topology {str(spec)!r}: neither a registered name nor "
            f"a METIS file; known names: "
            f"{', '.join(REGISTRY.names(TOPOLOGY)) or '<none>'}"
        )

    @staticmethod
    def clear_sessions() -> None:
        """Drop all cached named sessions (tests, topology re-registration)."""
        _SESSIONS.clear()

    # -- cached views --------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processing elements ``|V_p|``."""
        return self.graph.n

    @property
    def labeling(self) -> PartialCubeLabeling:
        """The partial-cube labeling, computed at most once per session."""
        if self._labeling is None:
            self._labeling = partial_cube_labeling(self.graph)
            self.labelings_computed += 1
        return self._labeling

    @property
    def distances(self) -> np.ndarray:
        """All-pairs hop distances (the NCM), computed at most once."""
        if self._distances is None:
            self._distances = all_pairs_distances(self.graph)
        return self._distances

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lab = self._labeling.dim if self._labeling is not None else "?"
        return f"Topology({self.name!r}, n={self.graph.n}, dim={lab})"
