"""The :class:`Topology` session object -- one processor graph, all caches.

TIMER's economics hinge on amortization: recognizing a processor graph as
a partial cube and labeling it costs ``O(|Ep|^2)``-ish work, and the
all-pairs distance matrix behind Coco evaluation costs ``O(|Vp| |Ep|)``;
both are pure functions of the *topology* and independent of the
application graph.  A ``Topology`` owns that precomputation and shares it
across every :meth:`~repro.api.pipeline.Pipeline.run` -- which is exactly
the high-traffic serving shape: build the session once, stream many
application graphs through it.

All caches are lazy, so paths that never touch them (e.g. the experiment
runner, which evaluates Coco from labels) never pay for them.
``labelings_computed`` counts actual labeling computations; the batch
test asserts it stays at one across a whole ``run_batch``.

Cross-process labeling cache
----------------------------
The in-process session cache dies with the process, so an experiment
sweep with spawn workers (or repeated CLI invocations) used to recompute
every labeling per process.  Setting the ``REPRO_LABELING_CACHE``
environment variable to a directory (the experiment runner points it at
``<store>/labelings`` automatically) persists each labeling as one
``.npz`` file keyed by the artifact store's identity-hash convention --
sha256 of a canonical identity covering the store schema, the code
version and a content fingerprint of the graph's edges.  Writes are
atomic (temp file + ``os.replace``), concurrent writers settle on one
complete record, and unreadable or mismatched files degrade to a
recompute, exactly like :class:`~repro.experiments.store.ArtifactStore`
records.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.api.registry import REGISTRY, TOPOLOGY
from repro.errors import ConfigurationError
from repro.graphs.algorithms import all_pairs_distances
from repro.graphs.graph import Graph
from repro.partialcube.djokovic import (
    PartialCubeLabeling,
    cut_edges_from_labels,
    partial_cube_labeling,
)

#: Environment variable naming the labeling cache directory ("" = off).
LABELING_CACHE_ENV = "REPRO_LABELING_CACHE"

#: Bumped when the cache file layout changes; part of every cache key,
#: so entries written by older code simply never hit (no migration
#: reads).  Schema 2 drops the verbatim ``cut_edges`` payload (derived
#: from the labels on load) and adds a content checksum verified on
#: every read.
_LABELING_CACHE_SCHEMA = 2

class SessionLRU:
    """Bounded LRU of named :class:`Topology` sessions, with counters.

    This is the process-wide session cache behind
    :meth:`Topology.from_name` -- and, by design, the *same* object the
    serving layer's :class:`repro.serve.cache.TopologyCache` operates
    on, so there is exactly one place a labeling can live in memory (no
    double-caching).  ``max_sessions=None`` (the default) keeps the
    historical unbounded behavior; a serving process bounds it and lets
    evicted labelings fall back to the disk tier.

    Counter updates are single bytecode-level int operations, safe under
    the GIL without a lock (metrics readers tolerate a stale snapshot).
    """

    def __init__(self, max_sessions: int | None = None) -> None:
        self._data: "dict[str, Topology]" = {}
        self.max_sessions = max_sessions
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, name: str) -> "Topology | None":
        """The cached session for ``name``, refreshing its recency."""
        topo = self._data.pop(name, None)
        if topo is None:
            self.misses += 1
            return None
        self._data[name] = topo  # re-insert = move to most recent
        self.hits += 1
        return topo

    def store(self, name: str, topo: "Topology") -> None:
        self._data.pop(name, None)
        self._data[name] = topo
        self._evict_over_limit()

    def set_limit(self, max_sessions: int | None) -> None:
        """Change the bound; shrinking evicts least-recent sessions now."""
        if max_sessions is not None and max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1 or None, got {max_sessions}"
            )
        self.max_sessions = max_sessions
        self._evict_over_limit()

    def _evict_over_limit(self) -> None:
        if self.max_sessions is None:
            return
        while len(self._data) > self.max_sessions:
            # dicts iterate in insertion order; the first key is the
            # least recently used (lookups re-insert).
            name = next(iter(self._data))
            del self._data[name]
            self.evictions += 1

    def pop(self, name: str) -> None:
        self._data.pop(name, None)

    def clear(self) -> None:
        """Drop every session and reset the counters (test isolation)."""
        self._data.clear()
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        return {
            "size": len(self._data),
            "limit": self.max_sessions,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __len__(self) -> int:
        return len(self._data)


#: Process-wide session cache for registered topology names.  Entries
#: are dropped automatically when their builder is re-registered or
#: unregistered, so a session never outlives its registry entry.
_SESSIONS = SessionLRU()

#: Process-wide labeling-computation tallies (see :func:`labeling_stats`).
_LABELING_STATS = {"computed": 0, "disk_hits": 0, "disk_misses": 0,
                   "disk_stores": 0, "disk_corrupt": 0}


def session_cache() -> SessionLRU:
    """The process-wide named-session LRU (one per process, by design)."""
    return _SESSIONS


def labeling_stats() -> dict:
    """Snapshot of labeling work done by this process.

    ``computed`` counts actual ``partial_cube_labeling`` executions
    across every session; ``disk_hits`` / ``disk_misses`` / ``disk_stores``
    count ``REPRO_LABELING_CACHE`` traffic (misses only tick when the
    cache is enabled).  The serving metrics endpoint exposes these, and
    the no-double-caching tests assert on deltas of ``computed``.
    """
    return dict(_LABELING_STATS)


REGISTRY.subscribe(TOPOLOGY, lambda name: _SESSIONS.pop(name))


class Topology:
    """A processor graph plus its lazily computed, shared precomputation."""

    def __init__(
        self,
        graph: Graph,
        labeling: PartialCubeLabeling | None = None,
        name: str | None = None,
    ) -> None:
        self.graph = graph
        self.name = name or graph.name or "topology"
        self._labeling = labeling
        self._distances: np.ndarray | None = None
        #: number of times the partial-cube labeling was actually computed
        #: by this session (0 when it was supplied or never needed).
        self.labelings_computed = 0

    # -- constructors --------------------------------------------------
    @classmethod
    def from_name(cls, name: str) -> "Topology":
        """The shared session for a registered topology name.

        Sessions are cached per process, so every pipeline (and every
        experiment-runner task of a forked worker) resolving the same
        name shares one labeling and one distance matrix.
        """
        topo = _SESSIONS.lookup(name)
        if topo is None:
            builder = REGISTRY.get(TOPOLOGY, name)
            topo = cls(builder(), name=name)
            _SESSIONS.store(name, topo)
        return topo

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        labeling: PartialCubeLabeling | None = None,
        name: str | None = None,
    ) -> "Topology":
        """Wrap an in-memory processor graph (labeling optional)."""
        return cls(graph, labeling=labeling, name=name)

    @classmethod
    def from_file(cls, path: str | Path) -> "Topology":
        """Load a METIS graph file as a topology session."""
        from repro.graphs.io import read_metis

        path = Path(path)
        return cls(read_metis(str(path), name=path.stem), name=path.stem)

    @classmethod
    def from_spec(cls, spec: "str | Path | Graph | Topology") -> "Topology":
        """Registered name, METIS path, graph, or pass-through session.

        This is the CLI's historical resolution order: a registered name
        wins over a file of the same spelling.
        """
        if isinstance(spec, Topology):
            return spec
        if isinstance(spec, Graph):
            return cls.from_graph(spec)
        if (TOPOLOGY, str(spec)) in REGISTRY:
            return cls.from_name(str(spec))
        if Path(spec).is_file():
            return cls.from_file(spec)
        raise ConfigurationError(
            f"unknown topology {str(spec)!r}: neither a registered name nor "
            f"a METIS file; known names: "
            f"{', '.join(REGISTRY.names(TOPOLOGY)) or '<none>'}"
        )

    @staticmethod
    def clear_sessions() -> None:
        """Drop all cached named sessions (tests, topology re-registration)."""
        _SESSIONS.clear()

    # -- cached views --------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processing elements ``|V_p|``."""
        return self.graph.n

    @property
    def labeling(self) -> PartialCubeLabeling:
        """The partial-cube labeling, computed at most once per session.

        With ``REPRO_LABELING_CACHE`` set, a disk hit replaces the
        computation entirely (``labelings_computed`` stays 0), and a
        fresh computation is persisted for every other process.
        """
        if self._labeling is None:
            cached = _load_cached_labeling(self.graph)
            if cached is not None:
                self._labeling = cached
            else:
                self._labeling = partial_cube_labeling(self.graph)
                self.labelings_computed += 1
                _LABELING_STATS["computed"] += 1
                _store_cached_labeling(self.graph, self._labeling)
        return self._labeling

    @property
    def distances(self) -> np.ndarray:
        """All-pairs hop distances (the NCM), computed at most once."""
        if self._distances is None:
            self._distances = all_pairs_distances(self.graph)
        return self._distances

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lab = self._labeling.dim if self._labeling is not None else "?"
        return f"Topology({self.name!r}, n={self.graph.n}, dim={lab})"


# ----------------------------------------------------------------------
# Cross-process labeling cache
# ----------------------------------------------------------------------
def labeling_cache_key(graph: Graph) -> str:
    """Store-convention identity hash of a graph's labeling.

    Keys by *content* (edge-array fingerprint), not by name, so two
    registrations of the same topology share one cache file and renaming
    never serves stale labels.
    """
    from repro._version import __version__
    from repro.experiments.store import STORE_SCHEMA, cell_key

    us, vs, ws = graph.edge_arrays()
    edges = hashlib.sha256()
    for arr in (us, vs, ws):
        edges.update(np.ascontiguousarray(arr).tobytes())
    return cell_key(
        {
            "schema": STORE_SCHEMA,
            "kind": "labeling",
            "cache_schema": _LABELING_CACHE_SCHEMA,
            "code": __version__,
            "graph": {"n": int(graph.n), "m": int(graph.m),
                      "edges": edges.hexdigest()},
        }
    )


def _cache_dir() -> Path | None:
    root = os.environ.get(LABELING_CACHE_ENV, "")
    return Path(root) if root else None


def _labeling_checksum(labels: np.ndarray, dim: int) -> np.ndarray:
    """Content digest of a cache entry, stored alongside the payload.

    Covers the label bytes plus the representation (dtype/shape) and
    ``dim``, so any bit rot inside the zip members -- which a valid zip
    container can still carry -- fails verification on read.
    """
    h = hashlib.sha256()
    h.update(str(labels.dtype).encode())
    h.update(repr(labels.shape).encode())
    h.update(np.int64(dim).tobytes())
    h.update(np.ascontiguousarray(labels).tobytes())
    return np.frombuffer(h.digest(), dtype=np.uint8)


def _quarantine_corrupt(path: Path) -> None:
    """Move a damaged cache entry aside so it is recomputed exactly once.

    The ``.corrupt`` rename keeps the evidence for operators without
    leaving a poison file that would fail every future read; rename
    failures fall back to deletion, and both are best-effort.
    """
    try:
        os.replace(path, path.with_suffix(".npz.corrupt"))
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass
    _LABELING_STATS["disk_corrupt"] += 1


def _load_cached_labeling(graph: Graph) -> PartialCubeLabeling | None:
    """Disk-cache lookup; corruption quarantines the entry and misses.

    A missing file is a plain miss.  An unreadable/truncated zip, a
    checksum mismatch, or labels that do not classify this graph's
    edges all count as *corrupt*: the entry is quarantined (renamed to
    ``.corrupt``), the ``disk_corrupt`` counter ticks, and the caller
    recomputes -- never a crash, never a silently wrong labeling.
    """
    root = _cache_dir()
    if root is None:
        return None
    path = root / f"{labeling_cache_key(graph)}.npz"
    if not path.exists():
        _LABELING_STATS["disk_misses"] += 1
        return None
    try:
        with np.load(path) as z:
            labels = z["labels"]
            dim = int(z["dim"])
            checksum = z["checksum"]
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
        # Truncated zip magic raises BadZipFile, not ValueError; any
        # unreadable file must degrade to a recompute, never a crash.
        _LABELING_STATS["disk_misses"] += 1
        _quarantine_corrupt(path)
        return None
    if not np.array_equal(checksum, _labeling_checksum(labels, dim)):
        _LABELING_STATS["disk_misses"] += 1
        _quarantine_corrupt(path)
        return None
    if labels.shape[0] != graph.n:
        # A verified payload for a different graph: impossible unless
        # the content-addressed key collided; treat as a plain miss.
        _LABELING_STATS["disk_misses"] += 1
        return None
    us, vs, _ = graph.edge_arrays()
    try:
        cut_edges = cut_edges_from_labels(labels, dim, us, vs)
    except ValueError:
        _LABELING_STATS["disk_misses"] += 1
        _quarantine_corrupt(path)
        return None
    _LABELING_STATS["disk_hits"] += 1
    return PartialCubeLabeling(labels=labels, dim=dim, cut_edges=cut_edges)


def _store_cached_labeling(graph: Graph, pc: PartialCubeLabeling) -> None:
    """Atomic cache write (temp + ``os.replace``); failures are silent.

    Since cache schema 2 only ``labels``/``dim``/``checksum`` are
    stored: ``cut_edges`` is derived data (class ``j`` == edges whose
    labels differ in bit ``j``) and rebuilding it on load through the
    recognition path's own assembly is byte-identical and cheaper than
    storing O(|Ep|) indices per entry.
    """
    root = _cache_dir()
    if root is None:
        return
    try:
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"{labeling_cache_key(graph)}.npz"
        labels = np.asarray(pc.labels)
        fd, tmp = tempfile.mkstemp(dir=root, prefix=".labeling-", suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez_compressed(
                    f,
                    labels=labels,
                    dim=np.int64(pc.dim),
                    checksum=_labeling_checksum(labels, pc.dim),
                )
            os.replace(tmp, path)
            _LABELING_STATS["disk_stores"] += 1
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:  # pragma: no cover - disk-full / permission paths
        pass
