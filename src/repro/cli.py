"""File-based command line interface: ``python -m repro <command>``.

Gives downstream users the paper's pipeline on their own METIS graphs
without writing Python:

- ``info GRAPH``                  -- vertex/edge counts, degree stats
- ``recognize GRAPH``             -- partial-cube verdict, dimension, labels
- ``partition GRAPH K``           -- balanced k-way partition (KaHIP stand-in)
- ``map GRAPH TOPOLOGY``          -- partition + initial mapping (c1..c4)
- ``enhance GRAPH TOPOLOGY MU``   -- run TIMER on an existing mapping
- ``serve``                       -- long-running batching mapping service
                                     (JSON over HTTP, or --stdio JSON lines)
- ``loadgen URL``                 -- deterministic open-loop load generator
- ``lint [PATHS]``                -- AST lint enforcing the repo contracts
                                     (see ``docs/development.md``)

``TOPOLOGY`` is either a registered name (``grid16x16``, ``torus8x8x8``,
``hq8``, ... -- see the unified registry, kind ``topology``) or a path to
a METIS file.  Assignments/mappings are plain text: one integer per line,
line i = block/PE of vertex i.

``map`` and ``enhance`` are thin consumers of :class:`repro.api.Pipeline`
-- the same staged path the library quickstart and the experiment harness
use -- with ``seed_policy="raw"`` pinning the CLI's historical per-stage
seeding, so outputs on fixed seeds are byte-identical across the API
redesign.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.api.pipeline import Pipeline, PipelineConfig
from repro.api.topology import Topology
from repro.core.config import TimerConfig
from repro.errors import NotPartialCubeError, ReproError
from repro.graphs.graph import Graph
from repro.graphs.io import read_metis
from repro.partialcube.djokovic import partial_cube_labeling
from repro.partitioning.kway import partition_kway


def _load_graph(path: str) -> Graph:
    return read_metis(path, name=Path(path).stem)


def _write_assignment(path: str | None, values: np.ndarray) -> None:
    text = "\n".join(str(int(v)) for v in values) + "\n"
    if path:
        Path(path).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)


def _read_assignment(path: str, n: int) -> np.ndarray:
    values = [int(line) for line in Path(path).read_text().split()]
    if len(values) != n:
        raise ReproError(f"mapping file has {len(values)} entries, expected {n}")
    return np.asarray(values, dtype=np.int64)


def cmd_info(args) -> int:
    g = _load_graph(args.graph)
    deg = g.degrees
    print(f"graph:    {g.name}")
    print(f"vertices: {g.n}")
    print(f"edges:    {g.m}")
    print(f"degree:   min {deg.min() if g.n else 0}, "
          f"mean {deg.mean() if g.n else 0:.2f}, max {deg.max() if g.n else 0}")
    print(f"total edge weight: {g.total_edge_weight():.1f}")
    return 0


def cmd_recognize(args) -> int:
    g = _load_graph(args.graph)
    try:
        pc = partial_cube_labeling(g)
    except NotPartialCubeError as exc:
        print(f"NOT a partial cube: {exc} (reason: {exc.reason})")
        return 1
    print(f"partial cube of dimension {pc.dim}")
    if args.labels:
        from repro.utils.bitops import label_to_int

        for v in range(g.n):
            print(f"{v} {label_to_int(pc.labels, v):0{pc.dim}b}")
    return 0


def cmd_partition(args) -> int:
    g = _load_graph(args.graph)
    part = partition_kway(g, args.k, epsilon=args.epsilon, seed=args.seed)
    print(f"cut = {part.edge_cut():.1f}, imbalance = {part.imbalance():.4f}",
          file=sys.stderr)
    _write_assignment(args.out, part.assignment)
    return 0


def _print_reports(res) -> None:
    """Render --report hook outputs on stderr (stdout carries the mapping)."""
    for name, value in res.reports.items():
        print(f"[report {name}] {value}", file=sys.stderr)


def cmd_map(args) -> int:
    g = _load_graph(args.graph)
    topology = Topology.from_spec(args.topology)
    # The mapping itself never needs the labeling, but the historical CLI
    # validated every topology as a partial cube up front -- keep that
    # contract (a non-partial-cube file fails loudly here, not later in
    # `enhance`).  Sessions cache it, so `enhance` then gets it for free.
    topology.labeling
    pipe = Pipeline(
        topology,
        PipelineConfig(
            initial_mapping=args.case,
            enhance="none",
            epsilon=args.epsilon,
            seed_policy="raw",
            post_verify=("mapping-valid",) + tuple(args.verify),
            reports=tuple(args.report),
            backend=args.backend,
        ),
    )
    res = pipe.run(g, seed=args.seed)
    print(
        f"Coco = {res.coco_after:.1f} "
        f"(mapping time {res.stage_seconds('initial_mapping'):.2f}s)",
        file=sys.stderr,
    )
    _print_reports(res)
    _write_assignment(args.out, res.mu_final)
    return 0


def cmd_enhance(args) -> int:
    g = _load_graph(args.graph)
    topology = Topology.from_spec(args.topology)
    mu = _read_assignment(args.mu, g.n)
    pipe = Pipeline(
        topology,
        PipelineConfig(
            partition="none",
            initial_mapping="none",
            enhance="timer",
            seed_policy="raw",
            timer=TimerConfig(n_hierarchies=args.nh, swap_strategy=args.strategy),
            pre_verify=("mapping-valid",),
            post_verify=("balance-preserved",) + tuple(args.verify),
            reports=tuple(args.report),
            backend=args.backend,
        ),
    )
    res = pipe.run(g, mu=mu, seed=args.seed)
    timer = res.timer
    print(
        f"Coco {res.coco_before:.1f} -> {res.coco_after:.1f} "
        f"({res.coco_improvement:.1%}), cut {res.cut_before:.1f} -> "
        f"{res.cut_after:.1f}, {timer.hierarchies_accepted}/{args.nh} accepted, "
        f"{timer.elapsed_seconds:.2f}s",
        file=sys.stderr,
    )
    _print_reports(res)
    _write_assignment(args.out, res.mu_final)
    return 0


def cmd_serve(args) -> int:
    # Imported here so the file-based commands never pay for asyncio.
    from repro.serve.service import ServeSettings, run_server

    settings = ServeSettings(
            host=args.host,
            port=args.port,
            window_ms=args.window_ms,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            jobs=args.jobs,
            max_sessions=args.max_sessions,
            max_pipelines=args.max_pipelines,
            labeling_cache=args.labeling_cache,
            max_graph_n=args.max_n,
            warm=tuple(args.warm),
            stdio=args.stdio,
            workers=args.workers,
            retry_attempts=args.retry_attempts,
            retry_base_ms=args.retry_base_ms,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset,
            faults=args.faults,
            backend=args.backend,
            response_cache=args.response_cache,
            response_cache_bytes=args.response_cache_mb * 1024 * 1024,
            shards=args.shards,
            trace=not args.no_trace,
            trace_buffer=args.trace_buffer,
            profile=args.profile,
        )
    if settings.shards > 0:
        if settings.stdio:
            print("repro serve: --shards requires HTTP (drop --stdio)",
                  file=sys.stderr)
            return 2
        from repro.serve.shard import run_sharded_server

        return run_sharded_server(settings)
    return run_server(settings)


def cmd_loadgen(args) -> int:
    from repro.serve.loadgen import LoadProfile, generate_load

    profile = LoadProfile(
        scenario=args.scenario,
        requests=args.requests,
        rate=args.rate,
        seed=args.seed,
        nh=args.nh,
        seed_pool=args.seed_pool,
        hot_keys=args.hot_keys,
        hot_fraction=args.hot_fraction,
        deadline_s=args.deadline,
        matrix_path=args.matrix,
        allow_degraded=args.allow_degraded,
        repeat_fraction=args.repeat_fraction,
        enhance_fraction=args.enhance_fraction,
        trace_sample=args.trace_sample,
    )
    report = generate_load(profile, args.url)
    print(report.render(), file=sys.stderr)
    if args.out:
        Path(args.out).write_text(
            json.dumps(report.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report.ok == report.requests else 3


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="TIMER mapping pipeline on METIS graph files.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    q = sub.add_parser("info", help="graph statistics")
    q.add_argument("graph")
    q.set_defaults(fn=cmd_info)

    q = sub.add_parser("recognize", help="partial-cube recognition + labels")
    q.add_argument("graph")
    q.add_argument("--labels", action="store_true", help="print vertex labels")
    q.set_defaults(fn=cmd_recognize)

    q = sub.add_parser("partition", help="balanced k-way partition")
    q.add_argument("graph")
    q.add_argument("k", type=int)
    q.add_argument("--epsilon", type=float, default=0.03)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("-o", "--out", default=None)
    q.set_defaults(fn=cmd_partition)

    def add_backend_flag(parser) -> None:
        parser.add_argument(
            "--backend",
            default="",
            metavar="NAME",
            help="kernel backend (numpy, numba, numba-parallel, auto); "
            "default: auto-select, honouring repro.api.set_default_backend",
        )

    def add_hook_flags(parser) -> None:
        parser.add_argument(
            "--verify",
            action="append",
            default=[],
            metavar="NAME",
            help="additional post-run verify hook from the registry "
            "(repeatable); unknown names list the known ones",
        )
        parser.add_argument(
            "--report",
            action="append",
            default=[],
            metavar="NAME",
            help="report hook from the registry (repeatable); results "
            "print to stderr",
        )

    q = sub.add_parser("map", help="partition + initial mapping")
    q.add_argument("graph")
    q.add_argument("topology", help="registered name or METIS file")
    q.add_argument("--case", choices=["c1", "c2", "c3", "c4"], default="c2")
    q.add_argument("--epsilon", type=float, default=0.03)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("-o", "--out", default=None)
    add_backend_flag(q)
    add_hook_flags(q)
    q.set_defaults(fn=cmd_map)

    q = sub.add_parser("enhance", help="run TIMER on an existing mapping")
    q.add_argument("graph")
    q.add_argument("topology")
    q.add_argument("mu", help="mapping file (one PE id per line)")
    q.add_argument("--nh", type=int, default=50)
    q.add_argument("--strategy", choices=["greedy", "kl"], default="greedy")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("-o", "--out", default=None)
    add_backend_flag(q)
    add_hook_flags(q)
    q.set_defaults(fn=cmd_enhance)

    q = sub.add_parser("serve", help="long-running batching mapping service")
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--port", type=int, default=8080, help="0 = ephemeral")
    q.add_argument("--window-ms", type=float, default=25.0,
                   help="micro-batching window (milliseconds)")
    q.add_argument("--max-batch", type=int, default=16,
                   help="dispatch a group at this many requests")
    q.add_argument("--max-queue", type=int, default=256,
                   help="admission bound on in-flight requests (429 beyond)")
    q.add_argument("--jobs", type=int, default=1,
                   help="worker processes per batch dispatch")
    q.add_argument("--max-sessions", type=int, default=None,
                   help="bound the topology session LRU (evictions fall "
                   "back to the labeling disk cache)")
    q.add_argument("--max-pipelines", type=int, default=64,
                   help="bound memoized per-group pipelines (pipelines pin "
                   "their topology session in memory)")
    q.add_argument("--labeling-cache", default=None, metavar="DIR",
                   help="enable the npz labeling disk cache in DIR")
    q.add_argument("--max-n", type=int, default=None,
                   help="reject application graphs above this many vertices")
    q.add_argument("--warm", action="append", default=[], metavar="TOPOLOGY",
                   help="precompute this topology's labeling at startup "
                   "(repeatable)")
    q.add_argument("--stdio", action="store_true",
                   help="JSON-lines over stdin/stdout instead of HTTP")
    q.add_argument("--workers", type=int, default=0,
                   help="supervised worker processes (0 = compute "
                   "in-process; >0 survives worker crashes)")
    q.add_argument("--retry-attempts", type=int, default=3,
                   help="total tries per request on transient failures")
    q.add_argument("--retry-base-ms", type=float, default=50.0,
                   help="base backoff delay (doubles per attempt, "
                   "deterministically jittered)")
    q.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive failures opening a group's circuit "
                   "breaker")
    q.add_argument("--breaker-reset", type=float, default=10.0,
                   help="seconds an open breaker waits before a "
                   "half-open probe")
    q.add_argument("--faults", default=None, metavar="JSON",
                   help="deterministic fault-injection plan (JSON; "
                   "overrides REPRO_FAULTS)")
    q.add_argument("--response-cache", type=int, default=128,
                   help="max entries in the run-identity response cache "
                   "(0 disables it)")
    q.add_argument("--response-cache-mb", type=int, default=64,
                   help="byte budget of the response cache in MiB "
                   "(0 disables it)")
    q.add_argument("--shards", type=int, default=0,
                   help="serve through a consistent-hash front end over "
                   "this many backend worker processes (0 = single "
                   "process); topologies pin to shards, keeping each "
                   "shard's session and response caches hot")
    q.add_argument("--no-trace", action="store_true",
                   help="disable end-to-end tracing (deterministic span "
                   "trees in /debug/traces; on by default, <2%% cost)")
    q.add_argument("--trace-buffer", type=int, default=256,
                   help="traces retained per process in the /debug/traces "
                   "ring buffer")
    q.add_argument("--profile", action="store_true",
                   help="attach cProfile top-frame hotspots to each "
                   "compute span (diagnostic; adds overhead)")
    add_backend_flag(q)
    q.set_defaults(fn=cmd_serve)

    q = sub.add_parser("loadgen", help="deterministic open-loop load generator")
    q.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8080")
    q.add_argument("--scenario", default="smoke",
                   help="scenario naming the request mix (default: smoke)")
    q.add_argument("--matrix", default=None, help="TOML/JSON matrix file")
    q.add_argument("--requests", type=int, default=60)
    q.add_argument("--rate", type=float, default=40.0,
                   help="offered load in requests/second")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--nh", type=int, default=2,
                   help="TIMER hierarchies per request")
    q.add_argument("--seed-pool", type=int, default=2,
                   help="distinct request seeds per catalog combination")
    q.add_argument("--hot-keys", type=int, default=3,
                   help="size of the hot request set")
    q.add_argument("--hot-fraction", type=float, default=0.6,
                   help="share of traffic on the hot set")
    q.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline in seconds")
    q.add_argument("--allow-degraded", action="store_true",
                   help="let the server satisfy requests from the "
                   "degradation ladder (cached / no-enhance results)")
    q.add_argument("--repeat-fraction", type=float, default=0.0,
                   help="share of requests repeating an earlier request "
                   "verbatim (response-cache hot keys)")
    q.add_argument("--enhance-fraction", type=float, default=0.0,
                   help="share of requests converted to /enhance with a "
                   "deterministic supplied mapping")
    q.add_argument("--trace-sample", type=float, default=1.0,
                   help="deterministic fraction of requests retained in "
                   "server-side trace buffers (the rest send a "
                   "{'trace': {'sample': false}} opt-out hint)")
    q.add_argument("--out", default=None, help="write the JSON report here")
    q.set_defaults(fn=cmd_loadgen)

    q = sub.add_parser(
        "lint",
        help="AST lint enforcing the repo's determinism / backend-dispatch "
        "/ serve-hygiene contracts (see docs/development.md)",
    )
    add_lint_arguments(q)
    q.set_defaults(fn=run_lint)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
