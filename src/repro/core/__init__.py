"""TIMER -- the paper's primary contribution (sections 4-6).

Pipeline implemented here:

1. :mod:`~repro.core.labels` -- extend the processor labeling to unique
   application-vertex labels ``l_a = l_p . l_e`` (§4).
2. :mod:`~repro.core.objective` -- the extended objective
   ``Coco+ = Coco - Div`` (§5) with vectorized and incremental forms.
3. :mod:`~repro.core.contraction` -- label-driven coarsening (§6,
   ``contract``).
4. :mod:`~repro.core.swaps` -- the greedy sibling-label swap pass run on
   every hierarchy level (Algorithm 1, lines 10-12).
5. :mod:`~repro.core.assemble` -- rebuilding a fine labeling from a
   swapped hierarchy (Algorithm 2).
6. :mod:`~repro.core.enhancer` -- :func:`timer_enhance`, Algorithm 1.
"""

from repro.core.config import TimerConfig
from repro.core.labels import ApplicationLabeling, build_application_labeling
from repro.core.objective import coco_plus, coco_of_labels, div_of_labels
from repro.core.enhancer import timer_enhance, TimerResult

__all__ = [
    "TimerConfig",
    "ApplicationLabeling",
    "build_application_labeling",
    "coco_plus",
    "coco_of_labels",
    "div_of_labels",
    "timer_enhance",
    "TimerResult",
]
