"""Rebuilding a fine labeling from a swapped hierarchy (Algorithm 2).

After the per-level swap passes, the hierarchy's level labels no longer
form consistent prefixes of the level-1 labels; ``assemble`` constructs a
new level-1 labeling that follows the hierarchy's *preferred digits* --
digit ``j`` of a vertex wants to equal the least significant digit of its
level-``j+1`` ancestor's (post-swap) label -- while staying a bijection
onto the original label set ``L``.

The paper's pseudocode enforces feasibility with a per-vertex existence
check against a mutating label array and inverts the preferred digit on
failure.  We implement a *counting* variant with the same preference rule
but a global guarantee:

    process digits from least to most significant; maintain the invariant
    that the number of vertices holding any partial suffix equals the
    number of labels in ``L`` with that suffix; within each suffix group,
    grant the preferred digit to as many vertices as the group's label
    capacity allows (in vertex order) and invert the overflow.

Granting exactly ``capacity`` digits per group keeps the invariant, so
after the last digit the new labeling is a permutation of ``L`` --
verified by an explicit multiset check.  When no coarse swap happened,
every preference is satisfiable and ``assemble`` returns the (post
level-1-swap) input labeling unchanged; a property test pins this down.

The paper inherits the most significant digit from the input labeling
(Algorithm 2, lines 17-18); we use it as the *preference* for the final
digit, forced only by the bijectivity constraint.
"""

from __future__ import annotations

import numpy as np

from repro.core.contraction import Level
from repro.utils.bitops import (
    get_label_bit,
    label_lsb,
    label_mask,
    label_sort_keys,
    set_label_bit,
)
from repro.utils.segments import group_ranks


def assemble(levels: list[Level], dim: int) -> np.ndarray:
    """New level-1 labels from a (post-swap) hierarchy.

    ``levels[0]`` is the finest level (its labels are the multiset ``L``
    the result must be a bijection onto); ``levels[j]`` is level ``j+1``
    whose labels' LSBs provide the preferred digit ``j``.  Works in both
    label representations; the output matches the input's.
    """
    L = levels[0].labels
    n = L.shape[0]
    if L.ndim == 1:
        new = (L & 1).astype(np.int64)  # digit 0: own post-swap LSB
    else:
        new = np.zeros_like(L)
        set_label_bit(new, 0, label_lsb(L))
    anc = np.arange(n, dtype=np.int64)
    for j in range(1, dim):
        if j < len(levels):
            parent = levels[j - 1].parent
            if parent is None:
                raise RuntimeError(f"level {j} has no parent pointers")
            anc = parent[anc]
            pref = label_lsb(levels[j].labels[anc])
        else:
            # No coarser level prescribes this digit (the MSB, and any
            # digit beyond the built hierarchy): prefer the vertex's own
            # original digit, as in Algorithm 2 lines 17-18.
            pref = get_label_bit(L, j)
        new = _assign_digit(new, pref, L, j)
    _check_bijection(new, L)
    return new


def _assign_digit(
    new: np.ndarray, pref: np.ndarray, L: np.ndarray, j: int
) -> np.ndarray:
    """Grant preferred digit ``j`` subject to per-suffix label capacities."""
    mask = label_mask(j, L) if L.ndim == 2 else (np.int64(1) << j) - 1
    l_suffix = L & mask
    if L.ndim == 1:
        uniq, inv_L = np.unique(l_suffix, return_inverse=True)
        gid = np.searchsorted(uniq, new & mask)
    else:
        suffix_keys = label_sort_keys(l_suffix)
        uniq, inv_L = np.unique(suffix_keys, return_inverse=True)
        gid = np.searchsorted(uniq, label_sort_keys(new & mask))
    capacity1 = np.zeros(uniq.shape[0], dtype=np.int64)
    np.add.at(capacity1, inv_L, get_label_bit(L, j))
    group_size = np.bincount(inv_L, minlength=uniq.shape[0])
    capacity0 = group_size - capacity1

    # Invariant: every vertex suffix exists among the labels.
    digit = pref.copy()

    ones = np.nonzero(pref == 1)[0]
    if ones.size:
        ranks = group_ranks(gid[ones])
        overflow = ones[ranks >= capacity1[gid[ones]]]
        digit[overflow] = 0
    zeros = np.nonzero(pref == 0)[0]
    if zeros.size:
        ranks = group_ranks(gid[zeros])
        overflow = zeros[ranks >= capacity0[gid[zeros]]]
        digit[overflow] = 1
    if new.ndim == 1:
        return new | (digit << j)
    out = new.copy()
    set_label_bit(out, j, digit)
    return out


def _check_bijection(new: np.ndarray, L: np.ndarray) -> None:
    if not np.array_equal(
        np.sort(label_sort_keys(new)), np.sort(label_sort_keys(L))
    ):
        raise RuntimeError(
            "assemble() produced labels that are not a permutation of L; "
            "this is a bug in the counting scheme"
        )
