"""The kernel-backend seam: one dispatch point for every hot kernel.

Every compute-bound call site in the package -- the batch swap-pass
kernels in :mod:`repro.core.kernels`, label ordering and popcounts in
:mod:`repro.utils.bitops`, the bit-packed all-pairs BFS in
:mod:`repro.graphs.algorithms` and the Djokovic class computation in
:mod:`repro.partialcube.djokovic` -- routes through the
:class:`KernelBackend` protocol defined here.  Backends are ordinary
registrations under the ``kernel_backend`` kind of the unified
:data:`~repro.api.registry.REGISTRY`, so a new execution tier (a GPU
backend, a C extension) is a registration, not a rewrite of the call
sites.

Built-in registrations:

``numpy``
    The always-available reference.  Every other backend is contracted
    to be **byte-identical** to it (enforced by
    ``tests/core/test_backend_equivalence.py``), which is why backend
    choice is deliberately *excluded* from pipeline identity hashes.
``numba``
    Compiled serial kernels (:mod:`repro.core.backend_numba`); usable
    only where numba imports.
``numba-parallel``
    The same kernels compiled with ``parallel=True``: thread-parallel
    swap-fixpoint rounds, source-sharded multi-source BFS and SWAR
    popcounts.

Selection
---------
Priority, highest first:

1. an explicit name passed to :func:`current_backend`;
2. the innermost active :func:`use_backend` scope (thread-local -- the
   pipeline wraps each run in one, so ``PipelineConfig.backend`` works
   under the serve tier's executor threads);
3. the process default set via :func:`set_default_backend`;
4. the ``REPRO_KERNEL_BACKEND`` environment variable -- **deprecated**,
   kept as a fallback with a :class:`DeprecationWarning`;
5. ``auto``: the fastest available tier
   (``numba-parallel`` > ``numba`` > ``numpy``).

Requesting a registered-but-unavailable backend degrades along
``numba-parallel -> numba -> numpy`` (the kernels are semantically
identical, so degrading is safe); requesting an *unknown* name raises
``ValueError``.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from collections.abc import Iterator

import numpy as np

from repro.api.registry import KERNEL_BACKEND, REGISTRY
from repro.utils import bitops
from repro.utils.segments import segment_sum

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "NumbaBackend",
    "NumbaParallelBackend",
    "available_backends",
    "known_backends",
    "current_backend",
    "resolve_backend_name",
    "get_backend",
    "set_default_backend",
    "use_backend",
]

#: Environment variable consulted as a *deprecated* selection fallback.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: ``auto`` preference order (first available wins).
_AUTO_ORDER = ("numba-parallel", "numba", "numpy")

#: Degradation chain for registered-but-unavailable backends.
_FALLBACK = {"numba-parallel": "numba", "numba": "numpy"}


# ----------------------------------------------------------------------
# The protocol (and its numpy reference implementation)
# ----------------------------------------------------------------------
class KernelBackend:
    """Typed kernel protocol; the base class *is* the numpy reference.

    Subclasses override any subset of the kernel methods; whatever they
    leave alone falls back to the reference implementation, so a backend
    only has to carry the kernels it actually accelerates.  Every
    override is contracted to return byte-identical results for
    integer-valued edge weights (all contracted levels of unit-weight
    graphs) -- callers never branch on which backend is active.
    """

    #: Registry name; also what ``PipelineResult.backend`` records.
    name = "numpy"
    #: True for tiers that JIT-compile their kernels.
    compiled = False
    #: True for tiers whose kernels run thread-parallel.
    parallel = False

    def available(self) -> bool:
        """Whether this backend can run in the current process."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

    # -- swap-pass kernels ---------------------------------------------
    def vertex_lsb_sums(
        self,
        lsb: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Per-vertex sum of ``w * (1 - 2*(lsb_u ^ lsb_t))`` over the CSR.

        ``lsb`` is the 0/1 int64 LSB array (not the labels), so one
        kernel serves both label representations.
        """
        # The source LSB is constant within a CSR segment, so instead of
        # gathering per-entry source labels:
        #   S[u] = W[u] - 2*T[u]  when lsb_u == 0
        #   S[u] = 2*T[u] - W[u]  when lsb_u == 1
        # with W the per-vertex weight sums and T the weight sums over
        # neighbors whose LSB is set.
        tw = segment_sum(weights * lsb[indices], indptr)
        wtot = segment_sum(weights, indptr)
        return np.where(lsb == 1, 2.0 * tw - wtot, wtot - 2.0 * tw)

    def greedy_fixpoint(
        self,
        deltas0: np.ndarray,
        own: np.ndarray,
        dst: np.ndarray,
        c0: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Solve the sequential-sweep swap fixpoint (see ``core.kernels``).

        ``deltas0`` are the start-of-sweep gains of the ``k`` sibling
        pairs; ``(own, dst, c0)`` list the ordered pair interactions
        (``dst < own``) with their initial contributions.  Returns
        ``(swap, deltas)``: the converged decision vector and the gains
        it was judged by.  Solved by synchronous iteration -- the
        correct prefix grows every step, so at most ``k`` iterations.
        """
        k = deltas0.shape[0]
        swap = deltas0 < 0.0
        deltas = deltas0
        for _ in range(k + 1):
            act = swap[dst]
            corr = np.bincount(own[act], weights=c0[act], minlength=k)
            deltas = deltas0 - 2.0 * corr
            new_swap = deltas < 0.0
            if np.array_equal(new_swap, swap):
                break
            swap = new_swap
        return swap, deltas

    # -- graph kernels -------------------------------------------------
    def all_pairs_distances(
        self, indptr: np.ndarray, indices: np.ndarray, n: int
    ) -> np.ndarray:
        """Dense ``(n, n)`` unweighted shortest-path matrix (-1 unreached).

        Bit-packed multi-source BFS: every vertex carries a bitset of
        the sources that reached it, and one BFS level for *all* sources
        at once is a single gather + ``np.bitwise_or.reduceat`` over the
        CSR -- ``O(m * n / 64)`` word operations per level.
        """
        if n == 0:
            return np.empty((0, 0), dtype=np.int64)
        words = (n + 63) // 64
        idx = np.arange(n)
        reached = np.zeros((n, words), dtype=np.uint64)
        reached[idx, idx // 64] = np.uint64(1) << (idx % 64).astype(np.uint64)
        dist = np.full((n, n), -1, dtype=np.int64)
        dist[idx, idx] = 0
        counts = np.diff(indptr)
        nonempty = counts > 0
        starts = indptr[:-1][nonempty]
        frontier = reached.copy()
        level = 0
        while frontier.any():
            level += 1
            nxt = np.zeros_like(reached)
            if indices.size:
                # nxt[u] = OR of the frontier bitsets of u's neighbors.
                nxt[nonempty] = np.bitwise_or.reduceat(
                    frontier[indices], starts, axis=0
                )
            new = nxt & ~reached
            if not new.any():
                break
            reached |= new
            # Decode the fresh (vertex, source) bits into distances.
            bits = np.unpackbits(new.view(np.uint8), axis=1, bitorder="little")
            vv, ss = np.nonzero(bits[:, :n])
            dist[vv, ss] = level
            frontier = new
        return dist

    # -- label ordering ------------------------------------------------
    def argsort_labels(self, labels: np.ndarray) -> np.ndarray:
        """Stable argsort of a label array in numeric bitvector order.

        Wide labels take the radix path (``np.lexsort`` over word
        columns, least significant first) whenever at most
        ``RADIX_SORT_MAX_WORDS`` columns actually *vary* -- constant
        columns cannot affect a stable order, so dropping them extends
        the measured ``W <= 2`` lexsort win to any total width (e.g.
        contracted hierarchy levels, whose high words are zero).
        """
        labels = np.asarray(labels)
        if labels.ndim == 1:
            return np.argsort(labels, kind="stable")
        n, width = labels.shape
        if n >= bitops.RADIX_SORT_THRESHOLD:
            if width <= bitops.RADIX_SORT_MAX_WORDS:
                return np.lexsort(labels.T)
            varying = np.nonzero(labels.min(axis=0) != labels.max(axis=0))[0]
            if varying.size == 0:
                return np.arange(n, dtype=np.int64)
            if varying.size <= bitops.RADIX_SORT_MAX_WORDS:
                return np.lexsort(labels[:, varying].T)
        return np.argsort(bitops.label_sort_keys(labels), kind="stable")

    # -- popcount kernels ----------------------------------------------
    def popcount_labels(self, x: np.ndarray) -> np.ndarray:
        """Per-label popcount (last axis is the word axis for wide input)."""
        x = np.asarray(x)
        if x.ndim >= 2 and x.dtype == np.uint64:
            return bitops.bitwise_count(x).sum(axis=-1, dtype=np.int64)
        return bitops.bitwise_count(x)

    def pairwise_hamming(self, labels: np.ndarray, block: int = 256) -> np.ndarray:
        """``(n, n)`` Hamming distance matrix of a label array.

        Row-blocked so the wide case never materializes the full
        ``(n, n, W)`` XOR tensor at once.
        """
        labels = np.asarray(labels)
        n = labels.shape[0]
        if labels.ndim == 1:
            return bitops.bitwise_count(labels[:, None] ^ labels[None, :])
        out = np.empty((n, n), dtype=np.int64)
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            out[lo:hi] = bitops.bitwise_count(
                labels[lo:hi, None, :] ^ labels[None, :, :]
            ).sum(axis=-1, dtype=np.int64)
        return out

    # -- partial-cube recognition --------------------------------------
    def djokovic_classes(self, g, distances: np.ndarray):
        """Djokovic class computation for a gated (connected, bipartite) graph.

        The reference strategy is the hybrid the old ``method="auto"``
        kwarg selected: the one-class-at-a-time loop capped at 64
        classes (unbeatable while classes pack into one word), falling
        back to the fully batched ``(m, n)`` side-matrix computation
        when the cap is hit (trees, where every edge is a class).
        Backends may reorder the internals but must return identical
        ``(edge_class, classes)``.
        """
        from repro.partialcube import djokovic as dj

        capped = dj._djokovic_classes_loop(
            g, distances, max_classes=bitops.MAX_LABEL_BITS + 1
        )
        if capped is not None:
            return capped
        return dj._djokovic_classes_vectorized(g, distances)


class NumpyBackend(KernelBackend):
    """The always-available byte-identity reference (base-class kernels)."""


class NumbaBackend(KernelBackend):
    """Compiled serial kernels; available only where numba imports.

    Kernels compile lazily on first use (one set per parallelism flag,
    cached on the instance), so merely registering the backend costs
    nothing and processes that never select it never pay for a JIT.
    """

    name = "numba"
    compiled = True
    _parallel = False

    def __init__(self) -> None:
        self._kernels: dict | None = None

    def available(self) -> bool:
        try:  # pragma: no cover - exercised only where numba is installed
            import numba  # noqa: F401
        except ImportError:
            return False
        return True

    # pragma: no cover on every kernel below - numba is absent from the
    # base image; the CI numba matrix leg runs them for real.
    def _jit(self) -> dict:  # pragma: no cover
        if self._kernels is None:
            from repro.core.backend_numba import build_kernels

            self._kernels = build_kernels(parallel=self._parallel)
        return self._kernels

    def vertex_lsb_sums(self, lsb, indptr, indices, weights):  # pragma: no cover
        return self._jit()["vertex_lsb_sums"](lsb, indptr, indices, weights)

    def greedy_fixpoint(self, deltas0, own, dst, c0):  # pragma: no cover
        k = int(deltas0.shape[0])
        # Group the interaction entries by owning pair.  The stable sort
        # keeps each pair's edges in their original sequence, which is
        # the order the reference np.bincount accumulates them in -- the
        # float sums stay byte-identical.
        order = np.argsort(own, kind="stable")
        own_indptr = np.searchsorted(own[order], np.arange(k + 1, dtype=np.int64))
        return self._jit()["greedy_fixpoint"](
            deltas0, own_indptr, dst[order], c0[order]
        )

    def all_pairs_distances(self, indptr, indices, n):  # pragma: no cover
        if n == 0:
            return np.empty((0, 0), dtype=np.int64)
        dist = np.full((n, n), -1, dtype=np.int64)
        self._jit()["all_pairs_bitset"](indptr, indices, n, dist)
        return dist

    def popcount_labels(self, x):  # pragma: no cover
        x = np.asarray(x)
        if x.ndim >= 2 and x.dtype == np.uint64:
            rows = np.ascontiguousarray(x).reshape(-1, x.shape[-1])
            return self._jit()["popcount_rows"](rows).reshape(x.shape[:-1])
        return bitops.bitwise_count(x)

    def pairwise_hamming(self, labels, block: int = 256):  # pragma: no cover
        labels = np.asarray(labels)
        n = labels.shape[0]
        if labels.ndim == 1:
            # Labels are non-negative, so the uint64 view is value-exact.
            wide = (
                np.ascontiguousarray(labels, dtype=np.int64)
                .view(np.uint64)
                .reshape(n, 1)
            )
        else:
            wide = np.ascontiguousarray(labels, dtype=np.uint64)
        out = np.zeros((n, n), dtype=np.int64)
        if n:
            self._jit()["pairwise_hamming"](wide, out)
        return out


class NumbaParallelBackend(NumbaBackend):
    """The numba kernels compiled with ``parallel=True`` (prange tiers)."""

    name = "numba-parallel"
    parallel = True
    _parallel = True


REGISTRY.register(KERNEL_BACKEND, "numpy", NumpyBackend())
REGISTRY.register(KERNEL_BACKEND, "numba", NumbaBackend())
REGISTRY.register(KERNEL_BACKEND, "numba-parallel", NumbaParallelBackend())


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
_default_override: str | None = None
_scope = threading.local()


def known_backends() -> tuple[str, ...]:
    """Every selectable name: registered backends plus ``auto``."""
    return REGISTRY.names(KERNEL_BACKEND) + ("auto",)


def available_backends() -> tuple[str, ...]:
    """Registered backends usable in this process (``numpy`` always)."""
    return tuple(
        name
        for name, backend in REGISTRY.items(KERNEL_BACKEND)
        if backend.available()
    )


def _validated(name: str) -> str:
    low = str(name).lower()
    if low != "auto" and (KERNEL_BACKEND, low) not in REGISTRY:
        known = ", ".join(known_backends())
        raise ValueError(f"unknown kernel backend {name!r}; expected one of: {known}")
    return low


def _env_request() -> str | None:
    value = os.environ.get(BACKEND_ENV_VAR)
    if not value:
        return None
    warnings.warn(
        f"{BACKEND_ENV_VAR} is deprecated; select a backend with "
        "repro.api.set_default_backend(), PipelineConfig.backend or the "
        "--backend CLI flag",
        DeprecationWarning,
        stacklevel=4,
    )
    return value


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve a request (or the ambient selection) to an available backend.

    ``None`` consults, in order: the innermost :func:`use_backend`
    scope, the :func:`set_default_backend` override, the deprecated
    environment variable, then ``auto``.  Unknown names raise
    ``ValueError``; known-but-unavailable ones degrade along the
    ``numba-parallel -> numba -> numpy`` chain.
    """
    choice = (
        name
        or getattr(_scope, "name", None)
        or _default_override
        or _env_request()
        or "auto"
    )
    choice = _validated(choice)
    if choice == "auto":
        for candidate in _AUTO_ORDER:
            if (KERNEL_BACKEND, candidate) in REGISTRY and REGISTRY.get(
                KERNEL_BACKEND, candidate
            ).available():
                return candidate
        return "numpy"
    while not REGISTRY.get(KERNEL_BACKEND, choice).available():
        choice = _FALLBACK.get(choice, "numpy")
    return choice


def current_backend(name: str | None = None) -> KernelBackend:
    """The :class:`KernelBackend` instance the kernels should use now."""
    return REGISTRY.get(KERNEL_BACKEND, resolve_backend_name(name))


def get_backend() -> str:
    """Resolved name of the active backend (after fallbacks)."""
    return resolve_backend_name()


def set_default_backend(name: str | None) -> None:
    """Set the process-wide default backend (``None`` restores auto/env).

    This is the supported replacement for exporting
    ``REPRO_KERNEL_BACKEND``; per-run selection goes through
    ``PipelineConfig.backend`` instead.
    """
    global _default_override
    if name is not None:
        name = _validated(name)
    _default_override = name


@contextmanager
def use_backend(name: str | None) -> Iterator[None]:
    """Scope a backend selection to the current thread.

    ``None``/empty is a no-op scope (inherit the ambient selection).
    Thread-local on purpose: the serve tier runs pipelines on executor
    threads, and one request's backend choice must not leak into a
    neighbor's.
    """
    if not name:
        yield
        return
    name = _validated(name)
    prev = getattr(_scope, "name", None)
    _scope.name = name
    try:
        yield
    finally:
        _scope.name = prev
