"""njit kernel factory behind the ``numba`` / ``numba-parallel`` backends.

Importing this module requires numba; :mod:`repro.core.backend` only
imports it lazily, from inside ``NumbaBackend``, after an availability
check -- the base image does not ship numba and every public entry point
must keep working without it.

:func:`build_kernels` compiles one kernel set per parallelism flag.  The
serial and parallel tiers share a single source: every data-parallel
loop is written with ``numba.prange``, which lowers to a plain ``range``
under ``parallel=False`` and to a thread-parallel loop under
``parallel=True``.  All kernels are written so the parallel iterations
touch disjoint output slots and keep any floating-point accumulation
*inside* one iteration in a fixed order -- that is what preserves the
byte-identity contract of the backend seam (see the equivalence suite in
``tests/core/test_backend_equivalence.py``).

Kernels
-------
``vertex_lsb_sums``
    The O(|E|) inner reduction of the batch swap pass; one independent
    accumulation per vertex (prange over vertices).
``greedy_fixpoint``
    The sequential-sweep fixpoint solve of ``batch_swap_pass``,
    restructured from numpy's masked ``bincount`` into a CSR-style
    per-pair segment sum (prange over pairs).  The caller groups the
    interaction entries by owning pair with a *stable* sort, so each
    pair's correction adds its edges in exactly the order the reference
    ``np.bincount`` does.
``all_pairs_bitset``
    The bit-packed multi-source BFS, sharded by source words: sources
    ``64*w .. 64*w + 63`` form one shard whose reached/frontier state is
    a single ``uint64`` per vertex, and shards run thread-parallel
    (prange over shards) writing disjoint column blocks of the distance
    matrix.
``pairwise_hamming`` / ``popcount_rows``
    SWAR (SIMD-within-a-register) popcount paths for wide labels; the
    pairwise kernel never materializes the ``(n, n, W)`` XOR tensor the
    numpy path has to block over.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_U0 = np.uint64(0)
_U1 = np.uint64(1)


@njit(cache=True, inline="always")
def _popcount64(x):
    # Classic SWAR popcount; exact for the full uint64 range.
    x = x - ((x >> _U1) & _M1)
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return (x * _H01) >> np.uint64(56)


def build_kernels(parallel: bool) -> dict:
    """Compile the kernel set for one parallelism flag."""

    @njit(cache=True, parallel=parallel)
    def vertex_lsb_sums(lsb, indptr, indices, weights):
        n = lsb.shape[0]
        out = np.zeros(n, dtype=np.float64)
        for u in prange(n):
            lu = lsb[u]
            acc = 0.0
            for k in range(indptr[u], indptr[u + 1]):
                x = lu ^ lsb[indices[k]]
                acc += weights[k] * (1.0 - 2.0 * x)
            out[u] = acc
        return out

    @njit(cache=True, parallel=parallel)
    def greedy_fixpoint(deltas0, own_indptr, dst_g, c0_g):
        k = deltas0.shape[0]
        swap = deltas0 < 0.0
        deltas = deltas0.copy()
        new_swap = np.empty(k, dtype=np.bool_)
        for _ in range(k + 1):
            for i in prange(k):
                corr = 0.0
                for e in range(own_indptr[i], own_indptr[i + 1]):
                    if swap[dst_g[e]]:
                        corr += c0_g[e]
                d = deltas0[i] - 2.0 * corr
                deltas[i] = d
                new_swap[i] = d < 0.0
            changed = False
            for i in range(k):
                if new_swap[i] != swap[i]:
                    changed = True
                    break
            if not changed:
                break
            swap = new_swap.copy()
        return swap, deltas

    @njit(cache=True, parallel=parallel)
    def all_pairs_bitset(indptr, indices, n, dist):
        words = (n + 63) // 64
        for w in prange(words):
            s0 = w * 64
            cnt = min(64, n - s0)
            reached = np.zeros(n, dtype=np.uint64)
            frontier = np.zeros(n, dtype=np.uint64)
            for j in range(cnt):
                bit = _U1 << np.uint64(j)
                reached[s0 + j] = bit
                frontier[s0 + j] = bit
                dist[s0 + j, s0 + j] = 0
            level = 0
            active = True
            while active:
                level += 1
                active = False
                nxt = np.zeros(n, dtype=np.uint64)
                for v in range(n):
                    acc = _U0
                    for e in range(indptr[v], indptr[v + 1]):
                        acc |= frontier[indices[e]]
                    new = acc & ~reached[v]
                    if new != _U0:
                        reached[v] |= new
                        nxt[v] = new
                        active = True
                        for j in range(cnt):
                            if (new >> np.uint64(j)) & _U1:
                                dist[v, s0 + j] = level
                frontier = nxt

    @njit(cache=True, parallel=parallel)
    def pairwise_hamming(labels, out):
        n, width = labels.shape
        for i in prange(n):
            for j in range(n):
                acc = _U0
                for w in range(width):
                    acc += _popcount64(labels[i, w] ^ labels[j, w])
                out[i, j] = np.int64(acc)

    @njit(cache=True, parallel=parallel)
    def popcount_rows(rows):
        n, width = rows.shape
        out = np.empty(n, dtype=np.int64)
        for i in prange(n):
            acc = _U0
            for w in range(width):
                acc += _popcount64(rows[i, w])
            out[i] = np.int64(acc)
        return out

    return {
        "vertex_lsb_sums": vertex_lsb_sums,
        "greedy_fixpoint": greedy_fixpoint,
        "all_pairs_bitset": all_pairs_bitset,
        "pairwise_hamming": pairwise_hamming,
        "popcount_rows": popcount_rows,
    }
