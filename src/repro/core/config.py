"""Configuration for the TIMER enhancer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimerConfig:
    """Tunable knobs of Algorithm 1.

    Attributes
    ----------
    n_hierarchies:
        the paper's ``N_H``: number of random bit-permutation hierarchies
        tried.  Quality/runtime trade-off; the paper uses 50 and notes 10
        already captures most of the gain.
    sweeps_per_level:
        how many greedy passes over the sibling pairs per hierarchy level.
        The paper does a single pass; values > 1 iterate until stable or
        the budget is exhausted (extension; see the ablation bench).
    swap_coarsest:
        also run a swap pass on the coarsest level (width-2 labels).  The
        paper's loop skips it; enabling is a cheap extension.
    verify_invariants:
        re-check label bijectivity and multiset preservation after every
        hierarchy (cheap; leave on outside of benchmarking).
    selection:
        which accepted iterate to return.  ``"best_coco"`` (default)
        returns the labeling with the lowest Coco among the initial state
        and all accepted hierarchies, guaranteeing the enhanced mapping is
        never worse in the paper's headline metric; ``"last"`` returns the
        final iterate exactly as Algorithm 1 is written.  The two differ
        only at small ``N_H``, where the Div term of ``Coco+`` can
        transiently trade Coco upward (see DESIGN.md).
    swap_strategy:
        local search used on every hierarchy level.  ``"greedy"`` (default)
        is the paper's single-pass hill climbing over sibling pairs;
        ``"kl"`` is the Kernighan-Lin-style sequence-with-rollback the
        paper's conclusion proposes as future work (more powerful, slower).
    """

    n_hierarchies: int = 50
    sweeps_per_level: int = 1
    swap_coarsest: bool = False
    verify_invariants: bool = True
    selection: str = "best_coco"
    swap_strategy: str = "greedy"

    def __post_init__(self) -> None:
        if self.n_hierarchies < 0:
            raise ConfigurationError(f"n_hierarchies must be >= 0, got {self.n_hierarchies}")
        if self.sweeps_per_level < 1:
            raise ConfigurationError(f"sweeps_per_level must be >= 1, got {self.sweeps_per_level}")
        if self.selection not in ("best_coco", "last"):
            raise ConfigurationError(
                f"selection must be 'best_coco' or 'last', got {self.selection!r}"
            )
        if self.swap_strategy not in ("greedy", "kl"):
            raise ConfigurationError(
                f"swap_strategy must be 'greedy' or 'kl', got {self.swap_strategy!r}"
            )
