"""Label-driven contraction for TIMER's hierarchies (paper section 6.1).

``contract`` (Algorithm 1, line 13) merges every pair of vertices whose
labels agree on all but the least significant digit, cuts that digit off,
and records the parent relation.  Because level-1 labels are unique, every
coarse vertex has at most two children, so a level-``i`` graph halves in
the limit and the whole hierarchy costs ``O(|E_a| * dim_Ga)``.

Unlike the partitioner's matching-based coarsening, the grouping here is
purely label-driven -- "oblivious to G_a's edges" as the paper stresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitops import copy_labels, shift_right_labels, unique_labels
from repro.utils.segments import group_reduce_sum


@dataclass
class Level:
    """One hierarchy level: edge arrays, labels and the parent pointers.

    ``labels`` are the level's (unique) label values; ``parent`` maps this
    level's vertex ids to the next-coarser level's ids and is filled in
    when the next level is built.  ``csr`` caches the symmetric adjacency
    ``(indptr, indices, weights)`` of the edge arrays -- the level's
    structure never changes after construction (swaps only permute
    ``labels``), so the swap kernels build it at most once per level via
    :func:`repro.core.kernels.level_csr`.
    """

    us: np.ndarray
    vs: np.ndarray
    ws: np.ndarray
    labels: np.ndarray
    parent: np.ndarray | None = None
    csr: tuple | None = None

    @property
    def n(self) -> int:
        return int(self.labels.shape[0])


def make_finest_level(ga_edges: tuple, labels: np.ndarray) -> Level:
    """Wrap ``G_a``'s edge arrays and the permuted labels as level 1.

    Accepts both label representations; the copy keeps narrow labels
    ``int64`` and wide labels ``(n, W)`` ``uint64``.
    """
    us, vs, ws = ga_edges
    return Level(us=us, vs=vs, ws=ws, labels=copy_labels(labels))


def contract_level(level: Level) -> Level:
    """Build the next-coarser level (cut the least significant digit).

    Sets ``level.parent`` as a side effect and returns the coarse level.
    Parallel edges arising from the contraction are merged by weight
    summation; edges collapsing inside a coarse vertex vanish (they can no
    longer influence any coarser gain).
    """
    prefixes = shift_right_labels(level.labels, 1)
    coarse_labels, parent = unique_labels(prefixes)
    level.parent = parent.astype(np.int64)
    cu = level.parent[level.us]
    cv = level.parent[level.vs]
    keep = cu != cv
    cu, cv, cw = cu[keep], cv[keep], level.ws[keep]
    if cu.size:
        # Merge parallel edges: canonical key, then one grouped sum.
        n_c = coarse_labels.shape[0]
        keys = np.minimum(cu, cv) * n_c + np.maximum(cu, cv)
        uniq, merged_w = group_reduce_sum(keys, cw)
        mu_ = uniq // n_c
        mv_ = uniq % n_c
    else:
        mu_ = np.empty(0, dtype=np.int64)
        mv_ = np.empty(0, dtype=np.int64)
        merged_w = np.empty(0, dtype=np.float64)
    return Level(us=mu_, vs=mv_, ws=merged_w, labels=coarse_labels)


def build_hierarchy(ga_edges: tuple, labels: np.ndarray, dim: int) -> list[Level]:
    """All levels ``1 .. dim-1`` without swap passes (testing helper).

    The enhancer interleaves swaps with contraction; this pure version
    exists so invariants of the contraction alone are testable.
    """
    levels = [make_finest_level(ga_edges, labels)]
    for _ in range(2, max(2, dim)):
        levels.append(contract_level(levels[-1]))
    return levels
