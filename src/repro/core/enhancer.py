"""Algorithm 1: the TIMER multi-hierarchical mapping enhancer.

``timer_enhance`` takes an application graph, a partial-cube processor
graph (or its precomputed labeling), an initial mapping ``mu`` and the
number of hierarchies ``N_H``; it returns the improved mapping plus full
before/after quality metrics.

Per hierarchy (paper lines 3-20):

1. draw a random permutation of the ``dim_Ga`` label bit positions and
   permute all labels (lines 6-7);
2. walk the hierarchy bottom-up: greedy sibling swaps on the current
   level (lines 10-12, :mod:`~repro.core.swaps`), then contract the least
   significant digit away (line 13, :mod:`~repro.core.contraction`);
3. reassemble a fine labeling from the swapped hierarchy (line 15,
   :mod:`~repro.core.assemble`), undo the permutation (line 16);
4. keep the new labeling only if ``Coco+`` did not get worse
   (lines 17-19).

The label *multiset* never changes, so the balance of the partition
induced by ``mu`` is preserved exactly (paper section 4).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.assemble import assemble
from repro.core.config import TimerConfig
from repro.core.contraction import Level, contract_level, make_finest_level
from repro.core.labels import ApplicationLabeling, build_application_labeling
from repro.core.objective import coco_of_labels, coco_plus, div_of_labels
from repro.core.swaps import kl_swap_pass, swap_pass
from repro.graphs.graph import Graph
from repro.partialcube.djokovic import PartialCubeLabeling, partial_cube_labeling
from repro.partitioning.metrics import edge_cut
from repro.utils.rng import SeedLike, make_rng
from repro.utils.bitops import label_sort_keys, permute_bits, unpermute_bits
from repro.utils.segments import build_csr
from repro.utils.stopwatch import Stopwatch


@dataclass
class TimerResult:
    """Outcome of a :func:`timer_enhance` run.

    ``mu_before`` / ``mu_after`` are vertex->PE arrays; the ``coco`` /
    ``cut`` pairs are the paper's two quality metrics evaluated on both.
    ``history`` holds the accepted ``Coco+`` value after every hierarchy
    (length ``N_H``), which the ablation benches plot.
    """

    labeling: ApplicationLabeling
    mu_before: np.ndarray
    mu_after: np.ndarray
    coco_before: float
    coco_after: float
    cut_before: float
    cut_after: float
    div_before: float
    div_after: float
    hierarchies_accepted: int
    elapsed_seconds: float
    history: list = field(default_factory=list)

    @property
    def coco_improvement(self) -> float:
        """Relative Coco reduction (positive = better), e.g. 0.18 = 18%."""
        if self.coco_before == 0:
            return 0.0
        return 1.0 - self.coco_after / self.coco_before


def timer_enhance(
    ga: Graph,
    gp: Graph | None,
    pc: PartialCubeLabeling | None,
    mu: np.ndarray,
    n_hierarchies: int | None = None,
    seed: SeedLike = None,
    config: TimerConfig | None = None,
) -> TimerResult:
    """Enhance the mapping ``mu`` of ``ga`` onto a partial cube (Alg. 1).

    Parameters
    ----------
    ga:
        application graph ``G_a``.
    gp:
        processor graph; may be ``None`` when ``pc`` is given.
    pc:
        precomputed partial-cube labeling of ``gp`` (recognition is
        ``O(|Ep|^2)`` and reusable across runs, so the harness computes it
        once); when ``None`` it is derived from ``gp``.
    mu:
        initial mapping ``V_a -> V_p`` (array of PE ids), e.g. from
        :func:`repro.mapping.compute_initial_mapping`.
    n_hierarchies:
        overrides ``config.n_hierarchies`` when given (the paper's NH).
    """
    cfg = config or TimerConfig()
    if n_hierarchies is not None:
        cfg = dataclasses.replace(cfg, n_hierarchies=n_hierarchies)
    if pc is None:
        if gp is None:
            raise ValueError("need gp or pc")
        pc = partial_cube_labeling(gp)
    rng = make_rng(seed)
    sw = Stopwatch()
    with sw:
        app = build_application_labeling(ga, pc, mu, seed=rng)
        result = _enhance_labeling(ga, app, cfg, rng)
    labeling, history, accepted = result
    mu_before = np.asarray(mu, dtype=np.int64)
    mu_after = labeling.mu()
    dim_p, dim_e = labeling.dim_p, labeling.dim_e
    return TimerResult(
        labeling=labeling,
        mu_before=mu_before,
        mu_after=mu_after,
        coco_before=coco_of_labels(ga, app.labels, dim_p, dim_e),
        coco_after=coco_of_labels(ga, labeling.labels, dim_p, dim_e),
        cut_before=edge_cut(ga, mu_before),
        cut_after=edge_cut(ga, mu_after),
        div_before=div_of_labels(ga, app.labels, dim_p, dim_e),
        div_after=div_of_labels(ga, labeling.labels, dim_p, dim_e),
        hierarchies_accepted=accepted,
        elapsed_seconds=sw.elapsed,
        history=history,
    )


def _enhance_labeling(
    ga: Graph,
    app: ApplicationLabeling,
    cfg: TimerConfig,
    rng: np.random.Generator,
) -> tuple[ApplicationLabeling, list, int]:
    dim = app.dim
    dim_e = app.dim_e
    edges = ga.edge_arrays()
    # The finest level's edge structure is identical in every hierarchy
    # (only the labels are re-permuted), so its CSR is built exactly once
    # per enhance run and handed to each hierarchy's level 1.  Coarser
    # levels differ per hierarchy and cache their own CSR on the Level.
    finest_csr = build_csr(ga.n, *edges)
    current = app.labels.copy()
    current_val = coco_plus(ga, current, app.dim_p, dim_e)
    history: list[float] = []
    accepted = 0
    original_sorted = np.sort(label_sort_keys(app.labels))
    # Selection policy "best_coco": remember the accepted iterate with the
    # lowest Coco (including the start), so the returned mapping never
    # regresses the paper's headline metric even at small N_H.
    best_coco = coco_of_labels(ga, current, app.dim_p, dim_e)
    best_labels = current

    for _ in range(cfg.n_hierarchies):
        if dim < 2:
            history.append(current_val)
            continue
        perm = rng.permutation(dim).astype(np.int64)
        candidate = _one_hierarchy(edges, current, dim, dim_e, perm, cfg, finest_csr)
        cand_val = coco_plus(ga, candidate, app.dim_p, dim_e)
        # Paper line 17: revert only when strictly worse.
        if cand_val <= current_val:
            if cfg.verify_invariants and not np.array_equal(
                np.sort(label_sort_keys(candidate)), original_sorted
            ):
                raise RuntimeError("label multiset changed during a hierarchy")
            current, current_val = candidate, cand_val
            accepted += 1
            cand_coco = coco_of_labels(ga, current, app.dim_p, dim_e)
            if cand_coco < best_coco:
                best_coco, best_labels = cand_coco, current
        history.append(current_val)
    final = best_labels if cfg.selection == "best_coco" else current
    out = app.with_labels(final)
    if cfg.verify_invariants:
        out.check_bijective()
    return out, history, accepted


def _one_hierarchy(
    edges: tuple,
    labels: np.ndarray,
    dim: int,
    dim_e: int,
    perm: np.ndarray,
    cfg: TimerConfig,
    finest_csr: tuple | None = None,
) -> np.ndarray:
    """Lines 5-16 of Algorithm 1 for one permutation."""
    plab = permute_bits(labels, perm)
    # Permuted bit j came from original bit perm[j]; original bits >= dim_e
    # belong to the lp part (+1 toward Coco), the rest to le (-1 via Div).
    signs = np.where(perm >= dim_e, 1, -1).astype(np.int64)
    do_swaps = kl_swap_pass if cfg.swap_strategy == "kl" else swap_pass
    levels: list[Level] = [make_finest_level(edges, plab)]
    levels[0].csr = finest_csr
    for i in range(2, dim):  # paper: i = 2 .. dim_Ga - 1
        lev = levels[-1]
        do_swaps(lev, int(signs[i - 2]), sweeps=cfg.sweeps_per_level)
        levels.append(contract_level(lev))
    if cfg.swap_coarsest and len(levels) >= 2:
        do_swaps(levels[-1], int(signs[dim - 2]), sweeps=cfg.sweeps_per_level)
    new_plab = assemble(levels, dim)
    return unpermute_bits(new_plab, perm)
