"""Vectorized batch-swap kernels for TIMER's hot loops (paper §6.3).

The running-time analysis promises ``O(|E|)`` per-level swap sweeps, but
the scalar implementation pays a Python-loop constant per sibling pair:
every gain evaluation slices fresh numpy views for both endpoints.  The
kernels here evaluate the gains of *all* sibling pairs in one vectorized
pass and apply improving swaps in conflict-free rounds whose outcome is
**provably identical** to the scalar greedy sweep in ascending
label-prefix order.

How the batch gain works
------------------------
A sibling swap exchanges the labels of a pair ``(u, v)`` that differ only
in bit 0, so only the LSB contribution of their incident edges moves.  Per
directed CSR entry ``a -> t`` the contribution is

    c(a, t) = w(a, t) * (1 - 2 * ((l_a ^ l_t) & 1))

and the pair's gain is ``sign * (S[u] + S[v] - c(u, v) - c(v, u))`` where
``S`` is the per-vertex segment sum of ``c`` over the CSR layout
(``np.add.reduceat``).  Because siblings always differ in bit 0,
``c(u, v) = -w(u, v)``, so the correction is ``+ 2 * w(u, v)``.

Greedy-equivalent conflict resolution
-------------------------------------
The scalar sweep applies swaps sequentially, so a pair's gain can depend
on earlier swaps.  The dependence has a closed form: within one sweep a
vertex LSB flips at most once (its pair swaps at most once), so the gain
pair ``i`` sees at its turn is

    d_i = d_i^0 - 2 * sum_{j < i, pair j swapped} C[i, j]

where ``d^0`` are the start-of-sweep batch gains and ``C[i, j]`` sums the
initial contributions ``c`` of the edges between the endpoints of pairs
``i`` and ``j``.  The sweep outcome is therefore the unique fixpoint of
``s_i = [d_i^0 - 2 * sum_{j<i} C[i,j] * s_j < 0]``, which the kernel
solves by synchronous iteration from the seed ``s = d^0 < 0``.  If an
iterate agrees with the true outcome on all pairs before position ``p``,
the next iterate is also correct at ``p`` (corrections only flow from
earlier pairs), so the correct prefix grows every iteration and the
iteration terminates in at most ``k`` steps -- in practice a handful,
because corrections only propagate along edges whose earlier endpoint
actually swaps.  The result is byte-identical to the scalar reference
whenever edge weights are exactly representable (e.g. integer-valued,
which all contracted levels of unit-weight graphs are).

Backend seam
------------
The innermost kernels -- the per-vertex LSB reduction and the fixpoint
solve -- dispatch through the :mod:`repro.core.backend` protocol
(``kernel_backend`` registrations in the unified registry: ``numpy`` /
``numba`` / ``numba-parallel``).  The legacy ``get_backend`` /
``set_backend`` / ``available_backends`` names are kept here as thin
shims over that module.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import current_backend, resolve_backend_name, set_default_backend
from repro.core.backend import available_backends  # noqa: F401  (re-exported shim)
from repro.core.contraction import Level
from repro.utils.bitops import argsort_labels, label_lsb
from repro.utils.segments import build_csr

__all__ = [
    "available_backends",
    "get_backend",
    "set_backend",
    "level_csr",
    "vertex_lsb_sums",
    "sibling_pairs",
    "sibling_pair_weights",
    "pair_interactions",
    "batch_pair_deltas",
    "pair_delta",
    "batch_swap_pass",
]


# ----------------------------------------------------------------------
# Backend seam (compatibility shims over repro.core.backend)
# ----------------------------------------------------------------------
def get_backend() -> str:
    """Resolved name of the active kernel backend (see ``repro.core.backend``)."""
    return resolve_backend_name()


def set_backend(name: str | None) -> None:
    """Force a process-default backend (``None`` restores env/auto).

    Shim over :func:`repro.core.backend.set_default_backend`, kept for
    the historical ``core.kernels`` import path.
    """
    set_default_backend(name)


# ----------------------------------------------------------------------
# Structure helpers
# ----------------------------------------------------------------------
def level_csr(level: Level) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached symmetric CSR adjacency of a hierarchy level.

    Built on first use and stored on ``level.csr``; a level's edge arrays
    are immutable (swap passes only permute labels), so one build per
    level suffices no matter how many sweeps or strategies run on it.
    """
    if level.csr is None:
        level.csr = build_csr(level.n, level.us, level.vs, level.ws)
    return level.csr


def sibling_pairs(labels: np.ndarray) -> np.ndarray:
    """``(k, 2)`` array of vertex pairs whose labels differ only in bit 0.

    Pairs are returned in ascending prefix order; labels are assumed
    unique (true on every hierarchy level).  Wide labels sort through
    their big-endian byte keys (:func:`~repro.utils.bitops.label_sort_keys`),
    which order exactly like the packed integers do on the narrow path.
    """
    if labels.ndim == 1:
        order = argsort_labels(labels)
        lab_sorted = labels[order]
        adjacent = (lab_sorted[1:] >> 1) == (lab_sorted[:-1] >> 1)
    else:
        order = argsort_labels(labels)
        lab_sorted = labels[order]
        # Siblings differ only in bit 0 of word 0: compare word 0 >> 1
        # and every higher word verbatim.
        adjacent = (lab_sorted[1:, 0] >> np.uint64(1)) == (
            lab_sorted[:-1, 0] >> np.uint64(1)
        )
        if labels.shape[1] > 1:
            adjacent &= (lab_sorted[1:, 1:] == lab_sorted[:-1, 1:]).all(axis=1)
    first = np.nonzero(adjacent)[0]
    return np.stack([order[first], order[first + 1]], axis=1)


def sibling_pair_weights(level: Level, pairs: np.ndarray) -> np.ndarray:
    """Weight of the (optional) edge inside each sibling pair.

    A swap leaves the pair's internal edge invariant, so its contribution
    must be subtracted from the per-vertex sums; pairs without an internal
    edge get 0.  Works off the level's undirected edge arrays: an edge is
    internal to a pair iff its endpoints are exactly the pair's two
    members (representation-agnostic -- no label comparison needed).
    """
    k = pairs.shape[0]
    out = np.zeros(k, dtype=np.float64)
    if k == 0 or level.us.size == 0:
        return out
    pair_of = np.full(level.n, -1, dtype=np.int64)
    local = np.arange(k, dtype=np.int64)
    pair_of[pairs[:, 0]] = local
    pair_of[pairs[:, 1]] = local
    eu = pair_of[level.us]
    internal = np.nonzero((eu >= 0) & (eu == pair_of[level.vs]))[0]
    if internal.size == 0:
        return out
    # Levels merge parallel edges, but accumulate defensively anyway.
    np.add.at(out, eu[internal], level.ws[internal])
    return out


def pair_interactions(
    pairs: np.ndarray,
    csr: tuple[np.ndarray, np.ndarray, np.ndarray],
    n: int,
    ordered: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """CSR entries whose endpoints lie in two *different* sibling pairs.

    Returns ``(own, dst, src, nbr, wt)`` arrays, one element per directed
    CSR edge ``src -> nbr`` with ``src`` in pair ``own`` and ``nbr`` in
    pair ``dst != own``.  These are exactly the edges whose LSB
    contribution to pair ``own``'s gain flips when pair ``dst`` swaps --
    the interaction structure both the batch greedy fixpoint and the
    vectorized KL gain maintenance are built on.  The layout depends only
    on the pair set (labels swap *within* pairs), so one build serves a
    whole sweep.

    With ``ordered=True`` only entries with ``dst < own`` are kept
    (exactly half the set -- each undirected edge appears once instead of
    twice), applied as part of the single filter pass; this is the subset
    the greedy fixpoint needs, where corrections only flow from
    earlier-ordered pairs.
    """
    indptr, indices, weights = csr
    k = pairs.shape[0]
    pu = pairs[:, 0]
    pv = pairs[:, 1]
    pair_of = np.full(n, -1, dtype=np.int64)
    local = np.arange(k, dtype=np.int64)
    pair_of[pu] = local
    pair_of[pv] = local
    verts = np.concatenate([pu, pv])
    starts = indptr[verts]
    counts = indptr[verts + 1] - starts
    total = int(counts.sum())
    excl = np.zeros(2 * k, dtype=np.int64)
    np.cumsum(counts[:-1], out=excl[1:])
    ks = np.repeat(starts - excl, counts) + np.arange(total, dtype=np.int64)
    own_full = np.repeat(np.concatenate([local, local]), counts)
    nbrs = indices[ks]
    dst_full = pair_of[nbrs]
    if ordered:
        keep = (dst_full >= 0) & (dst_full < own_full)
    else:
        keep = (dst_full >= 0) & (dst_full != own_full)
    return (
        own_full[keep],
        dst_full[keep],
        np.repeat(verts, counts)[keep],
        nbrs[keep],
        weights[ks[keep]],
    )


# ----------------------------------------------------------------------
# Gain kernels
# ----------------------------------------------------------------------
def vertex_lsb_sums(
    labels: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Per-vertex sum of LSB edge contributions ``w * (1 - 2*((l_u^l_t)&1))``.

    One gather + one segment reduction over the whole CSR -- this is the
    O(|E|) inner kernel of the batch swap pass.  Only the LSB of each
    label matters, so both width regimes reduce to the same int64 bit
    array before any arithmetic (and before the backend dispatch).
    """
    b = label_lsb(labels)
    return current_backend().vertex_lsb_sums(b, indptr, indices, weights)


def batch_pair_deltas(
    labels: np.ndarray,
    pairs: np.ndarray,
    csr: tuple[np.ndarray, np.ndarray, np.ndarray],
    sign: int,
    pair_w: np.ndarray,
) -> np.ndarray:
    """Swap gains of all ``pairs`` in one vectorized pass.

    Equals ``[_swap_delta(labels, *csr, u, v, sign) for u, v in pairs]``
    up to floating-point associativity (exactly, for integer-valued
    weights).  ``pair_w`` comes from :func:`sibling_pair_weights`.
    """
    indptr, indices, weights = csr
    sums = vertex_lsb_sums(labels, indptr, indices, weights)
    # The internal pair edge contributes -w on both sides (siblings always
    # differ in bit 0); excluding it adds +w per endpoint.
    return sign * (sums[pairs[:, 0]] + sums[pairs[:, 1]] + 2.0 * pair_w)


def pair_delta(
    labels: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    u: int,
    v: int,
    sign: int,
) -> float:
    """Scalar reference gain of swapping the sibling labels of ``u, v``.

    Kept as the ground truth the batch kernel is tested against, and as
    the single-pair recompute primitive of the KL pass.
    """
    b = label_lsb(labels)
    delta = 0.0
    for a, other in ((u, v), (v, u)):
        lo, hi = indptr[a], indptr[a + 1]
        nbrs = indices[lo:hi]
        wts = weights[lo:hi]
        keep = nbrs != other
        if not keep.all():
            nbrs = nbrs[keep]
            wts = wts[keep]
        if nbrs.size == 0:
            continue
        xor_bits = b[nbrs] ^ b[a]
        delta += float((wts * (1.0 - 2.0 * xor_bits)).sum())
    return sign * delta


# ----------------------------------------------------------------------
# Batch swap pass
# ----------------------------------------------------------------------
def batch_swap_pass(
    level: Level,
    sign: int,
    sweeps: int = 1,
    csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[int, float]:
    """Greedy sibling-swap pass, vectorized (labels mutate in place).

    Drop-in replacement for the scalar sweep: same ``(n_swaps,
    total_delta)`` contract, same final labeling (see module docstring for
    the equivalence argument).  ``csr`` may be passed when the caller
    already holds the level's adjacency; otherwise it is built once and
    cached on the level.
    """
    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign}")
    labels = level.labels
    if labels.shape[0] < 2 or level.us.size == 0:
        return 0, 0.0
    if csr is None:
        csr = level_csr(level)
    indptr, indices, weights = csr
    n = labels.shape[0]
    n_swaps = 0
    total_delta = 0.0
    # A swap exchanges labels *within* a pair, so the pair set, its prefix
    # order, the per-vertex pair index and the whole pair-interaction
    # layout are invariant across sweeps -- build them once.  Only the
    # labels-dependent values (gains and contribution signs) change.
    pairs = sibling_pairs(labels)
    k = pairs.shape[0]
    if k == 0:
        return 0, 0.0
    pu = pairs[:, 0]
    pv = pairs[:, 1]
    pair_w = sibling_pair_weights(level, pairs)
    # Pair-interaction list restricted to entries (a, t) with ``a`` in
    # pair ``own`` and ``t`` in an *earlier-ordered* pair ``dst`` --
    # exactly the edges whose contribution flips when pair ``dst`` swaps
    # before pair ``own`` is evaluated.
    own, dst, src_keep, nbrs_keep, w_keep = pair_interactions(
        pairs, csr, n, ordered=True
    )
    backend = current_backend()
    for _ in range(max(1, sweeps)):
        # Start-of-sweep gains for every pair in one vectorized pass.
        deltas0 = batch_pair_deltas(labels, pairs, csr, sign, pair_w)
        b = label_lsb(labels)
        c0 = sign * (w_keep * (1.0 - 2.0 * (b[src_keep] ^ b[nbrs_keep])))
        # Solve the sequential-sweep fixpoint by synchronous iteration:
        # the correct prefix of the decision vector grows every step, so
        # at most k iterations -- in practice a handful.  The solve is a
        # backend kernel (compiled + thread-parallel on the numba tiers).
        swap, deltas = backend.greedy_fixpoint(deltas0, own, dst, c0)
        cu, cv = pu[swap], pv[swap]
        if cu.size:
            tmp = labels[cu].copy()
            labels[cu] = labels[cv]
            labels[cv] = tmp
            n_swaps += int(cu.size)
            total_delta += float(deltas[swap].sum())
        else:
            break
    return n_swaps, total_delta
