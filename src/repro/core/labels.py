"""Application-vertex labels ``l_a = l_p . l_e`` (paper section 4).

Packing convention (consistent across the whole package): a label's
*high* ``dim_p`` bits are the processor label of the vertex's PE and its
*low* ``dim_e`` bits are the extension ``l_e`` that makes labels unique
inside each block.  The paper's "last digit" -- the one hierarchies cut
first -- is bit 0.

Labels with ``dim_p + dim_e <= 63`` stay in the narrow packed ``int64``
representation (byte-identical to the historical code); wider labelings
-- large fat-trees, any topology past 63 Djokovic classes -- use the
``(n, W)`` ``uint64`` wide representation of :mod:`repro.utils.bitops`.
Every accessor here is polymorphic over both.

``dim_e`` follows Definition 4.1: ``max_vp ceil(log2 |mu^-1(vp)|)``, and
the per-block extension values ``0 .. size-1`` are assigned in random
order ("shuffled") to give the diversification objective a random start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.partialcube.djokovic import PartialCubeLabeling
from repro.utils.bitops import (
    MAX_LABEL_BITS,
    bit_length_for,
    label_mask,
    label_sort_keys,
    narrow_labels,
    resize_label_words,
    shift_left_labels,
    shift_right_labels,
    widen_labels,
    words_for_bits,
)
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import as_int_array, check_assignment


@dataclass(frozen=True)
class ApplicationLabeling:
    """A bijective labeling of ``V_a`` encoding a mapping onto ``V_p``.

    Attributes
    ----------
    labels:
        packed ``l_a`` per application vertex -- narrow 1-D ``int64`` or
        wide ``(n, W)`` ``uint64``.
    dim_p / dim_e:
        widths of the processor part and the extension part.
    pe_labels:
        processor label per PE id (``pe_labels[p]`` = ``l_p`` of PE ``p``);
        needed to translate label prefixes back into PE ids.
    """

    labels: np.ndarray
    dim_p: int
    dim_e: int
    pe_labels: np.ndarray

    @property
    def dim(self) -> int:
        """Total label width ``dim_Ga`` (Definition 4.1)."""
        return self.dim_p + self.dim_e

    @property
    def n(self) -> int:
        return int(self.labels.shape[0])

    def lp_part(self) -> np.ndarray:
        """Processor-label prefix of every vertex (the ``mu`` encoding)."""
        return shift_right_labels(self.labels, self.dim_e)

    def le_part(self) -> np.ndarray:
        """Extension suffix of every vertex."""
        return self.labels & label_mask(self.dim_e, self.labels)

    def mu(self) -> np.ndarray:
        """Decode the mapping ``mu : V_a -> V_p`` from the labels."""
        # lp prefixes use dim_p bits; bring them to pe_labels'
        # representation so the sort keys are directly comparable.
        lp = self.lp_part()
        if self.pe_labels.ndim == 1:
            if lp.ndim == 2:
                lp = narrow_labels(lp)
        else:
            lp = resize_label_words(lp, self.pe_labels.shape[1])
        pe_keys = label_sort_keys(self.pe_labels)
        order = np.argsort(pe_keys, kind="stable")
        sorted_keys = pe_keys[order]
        lp_keys = label_sort_keys(lp)
        pos = np.searchsorted(sorted_keys, lp_keys)
        if (pos >= sorted_keys.shape[0]).any() or not np.array_equal(
            sorted_keys[pos], lp_keys
        ):
            raise MappingError("label prefix does not correspond to any PE")
        return order[pos]

    def with_labels(self, labels: np.ndarray) -> "ApplicationLabeling":
        labels = np.asarray(labels)
        if labels.ndim == 1:
            labels = labels.astype(np.int64, copy=False)
        else:
            labels = labels.astype(np.uint64, copy=False)
        return ApplicationLabeling(
            labels=labels,
            dim_p=self.dim_p,
            dim_e=self.dim_e,
            pe_labels=self.pe_labels,
        )

    def check_bijective(self) -> None:
        """Labels must be pairwise distinct (paper requirement 3)."""
        if np.unique(label_sort_keys(self.labels)).shape[0] != self.n:
            raise MappingError("application labels are not unique")


def dim_extension(mu: np.ndarray, n_pe: int) -> int:
    """``max_vp ceil(log2 |mu^-1(vp)|)`` -- the extension width (Def. 4.1)."""
    sizes = np.bincount(np.asarray(mu, dtype=np.int64), minlength=n_pe)
    return bit_length_for(int(sizes.max())) if sizes.size else 0


def build_application_labeling(
    ga: Graph,
    pc: PartialCubeLabeling,
    mu: np.ndarray,
    seed: SeedLike = None,
) -> ApplicationLabeling:
    """Construct ``l_a`` from a mapping (paper section 4).

    Steps: transport ``l_p`` through ``mu``; number the vertices of each
    block ``0 .. size-1`` in random order; concatenate.  Chooses the
    narrow representation whenever ``dim_p + dim_e <= 63`` (the
    historical fast path, byte-identical) and the wide multi-word one
    beyond.
    """
    mu = as_int_array("mu", mu, ga.n)
    check_assignment("mu", mu, pc.n)
    dim_p = pc.dim
    dim_e = dim_extension(mu, pc.n)
    rng = make_rng(seed)
    le = np.empty(ga.n, dtype=np.int64)
    for pe in range(pc.n):
        members = np.nonzero(mu == pe)[0]
        if members.size:
            le[members] = rng.permutation(members.size)
    if dim_p + dim_e <= MAX_LABEL_BITS and pc.labels.ndim == 1:
        labels = (pc.labels[mu] << dim_e) | le
    else:
        words = words_for_bits(dim_p + dim_e)
        base = widen_labels(pc.labels, words)
        labels = shift_left_labels(base[mu], dim_e)
        # dim_e < 64 always (block sizes are array sizes), so the
        # extension lives entirely in word 0.
        labels[:, 0] |= le.view(np.uint64)
    out = ApplicationLabeling(
        labels=labels, dim_p=dim_p, dim_e=dim_e, pe_labels=pc.labels
    )
    out.check_bijective()
    return out
