"""The extended objective ``Coco+ = Coco - Div`` (paper section 5).

With packed labels, both terms are Hamming sums over disjoint bit masks:

- ``Coco(l_a) = sum_e w(e) * popcount(xor & lp_mask)`` -- Eq. (9).  (The
  paper sums over ``E_a without E_a^p``, but edges in ``E_a^p`` contribute
  zero anyway, so the restriction is vacuous and the vectorized form is
  exact.)
- ``Div(l_a) = sum_e w(e) * popcount(xor & le_mask)`` -- Eq. (12),
  the diversity of label extensions (same vacuous-restriction argument).

Both width regimes share this shape: narrow labels use plain int masks
and a single-word popcount, wide labels use ``(W,)`` ``uint64`` mask
vectors broadcast over the ``(m, W)`` XOR rows with a per-row popcount
reduction -- still one vectorized pass over the edges either way.

For permuted labels inside a hierarchy, each bit position carries a sign
(+1 for lp bits, -1 for le bits); :func:`coco_plus_signed` evaluates the
objective for an arbitrary sign vector, which is what the per-level swap
gains are based on.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.bitops import mask_of_width, popcount_labels, wide_mask


def _masks(dim_p: int, dim_e: int, labels: np.ndarray):
    """(lp_mask, le_mask) in the representation matching ``labels``."""
    if np.asarray(labels).ndim == 1:
        return mask_of_width(dim_p) << dim_e, mask_of_width(dim_e)
    words = labels.shape[1]
    return (
        wide_mask(dim_p + dim_e, words) ^ wide_mask(dim_e, words),
        wide_mask(dim_e, words),
    )


def coco_of_labels(ga: Graph, labels: np.ndarray, dim_p: int, dim_e: int) -> float:
    """Eq. (9): hop-bytes of the mapping encoded in the label prefixes."""
    lp_mask, _ = _masks(dim_p, dim_e, labels)
    us, vs, ws = ga.edge_arrays()
    xor = (labels[us] ^ labels[vs]) & lp_mask
    return float((ws * popcount_labels(xor)).sum())


def div_of_labels(ga: Graph, labels: np.ndarray, dim_p: int, dim_e: int) -> float:
    """Eq. (12): weighted Hamming diversity of the label extensions."""
    _, le_mask = _masks(dim_p, dim_e, labels)
    us, vs, ws = ga.edge_arrays()
    xor = (labels[us] ^ labels[vs]) & le_mask
    return float((ws * popcount_labels(xor)).sum())


def coco_plus(ga: Graph, labels: np.ndarray, dim_p: int, dim_e: int) -> float:
    """Eq. (14): ``Coco+ = Coco - Div``."""
    lp_mask, le_mask = _masks(dim_p, dim_e, labels)
    us, vs, ws = ga.edge_arrays()
    xor = labels[us] ^ labels[vs]
    return float(
        (
            ws
            * (
                popcount_labels(xor & lp_mask).astype(np.float64)
                - popcount_labels(xor & le_mask)
            )
        ).sum()
    )


def coco_plus_edges(
    us: np.ndarray,
    vs: np.ndarray,
    ws: np.ndarray,
    labels: np.ndarray,
    lp_mask,
    le_mask,
) -> float:
    """``Coco+`` over explicit edge arrays (used on hierarchy levels).

    ``lp_mask`` / ``le_mask`` are ints for narrow labels and ``(W,)``
    ``uint64`` vectors for wide ones (see :func:`_masks`).
    """
    xor = labels[us] ^ labels[vs]
    return float(
        (
            ws
            * (
                popcount_labels(xor & lp_mask).astype(np.float64)
                - popcount_labels(xor & le_mask)
            )
        ).sum()
    )


def coco_plus_signed(
    ga: Graph, labels: np.ndarray, signs: np.ndarray
) -> float:
    """``Coco+`` for permuted labels with per-bit signs.

    ``signs[j]`` is +1 when bit ``j`` of the (permuted) labels is an lp
    bit and -1 when it is an le bit.  Equivalent to :func:`coco_plus` on
    unpermuted labels; kept separate for tests that pin down the
    permutation bookkeeping.
    """
    signs = np.asarray(signs, dtype=np.int64)
    if np.asarray(labels).ndim == 1:
        pos_mask = 0
        neg_mask = 0
        for j, s in enumerate(signs):
            if s > 0:
                pos_mask |= 1 << j
            else:
                neg_mask |= 1 << j
    else:
        words = labels.shape[1]
        pos_mask = np.zeros(words, dtype=np.uint64)
        neg_mask = np.zeros(words, dtype=np.uint64)
        for j, s in enumerate(signs):
            target = pos_mask if s > 0 else neg_mask
            target[j // 64] |= np.uint64(1) << np.uint64(j % 64)
    us, vs, ws = ga.edge_arrays()
    xor = labels[us] ^ labels[vs]
    return float(
        (
            ws
            * (
                popcount_labels(xor & pos_mask).astype(np.float64)
                - popcount_labels(xor & neg_mask)
            )
        ).sum()
    )
