"""Greedy sibling-label swap pass (Algorithm 1, lines 10-12).

On every hierarchy level, the candidate moves are exchanges of *sibling*
labels: two vertices whose labels agree on everything except the least
significant digit.  Such a swap changes only the LSB contribution of the
two vertices' incident edges, so its effect on the level's ``Coco+``
estimate is computable in ``O(deg(u) + deg(v))``:

    delta = sign * [ sum_{t~u, t!=v} w(u,t) * (1 - 2*(b_u xor b_t))
                   + sum_{t~v, t!=u} w(v,t) * (1 - 2*(b_v xor b_t)) ]

where ``b_x`` is the LSB of ``x``'s current label and ``sign`` is +1 when
the level's LSB is an lp bit (it contributes to Coco) and -1 when it is an
le bit (it contributes to -Div).  The pass greedily applies every swap
with negative delta, in ascending label-prefix order, optionally repeating
until stable.
"""

from __future__ import annotations

import numpy as np

from repro.core.contraction import Level


def build_adjacency(level: Level) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency (indptr, indices, weights) of a level's edge arrays."""
    n = level.n
    src = np.concatenate([level.us, level.vs])
    dst = np.concatenate([level.vs, level.us])
    wt = np.concatenate([level.ws, level.ws])
    order = np.argsort(src, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst[order], wt[order]


def sibling_pairs(labels: np.ndarray) -> np.ndarray:
    """``(k, 2)`` array of vertex pairs whose labels differ only in bit 0.

    Pairs are returned in ascending prefix order; labels are assumed
    unique (true on every hierarchy level).
    """
    order = np.argsort(labels, kind="stable")
    lab_sorted = labels[order]
    adjacent = (lab_sorted[1:] >> 1) == (lab_sorted[:-1] >> 1)
    first = np.nonzero(adjacent)[0]
    return np.stack([order[first], order[first + 1]], axis=1)


def swap_pass(level: Level, sign: int, sweeps: int = 1) -> tuple[int, float]:
    """Run greedy sibling swaps on ``level`` (labels mutate in place).

    Returns ``(n_swaps, total_delta)`` where ``total_delta`` is the summed
    (negative) change of the level's ``Coco+`` estimate.
    """
    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign}")
    labels = level.labels
    if labels.shape[0] < 2 or level.us.size == 0:
        return 0, 0.0
    indptr, indices, weights = build_adjacency(level)
    n_swaps = 0
    total_delta = 0.0
    for _ in range(max(1, sweeps)):
        swapped_this_sweep = 0
        pairs = sibling_pairs(labels)
        for u, v in pairs:
            u, v = int(u), int(v)
            delta = _swap_delta(labels, indptr, indices, weights, u, v, sign)
            if delta < 0.0:
                labels[u], labels[v] = labels[v], labels[u]
                n_swaps += 1
                swapped_this_sweep += 1
                total_delta += delta
        if swapped_this_sweep == 0:
            break
    return n_swaps, total_delta


def _swap_delta(
    labels: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    u: int,
    v: int,
    sign: int,
) -> float:
    delta = 0.0
    for a, other in ((u, v), (v, u)):
        lo, hi = indptr[a], indptr[a + 1]
        nbrs = indices[lo:hi]
        wts = weights[lo:hi]
        keep = nbrs != other
        if not keep.all():
            nbrs = nbrs[keep]
            wts = wts[keep]
        if nbrs.size == 0:
            continue
        xor_bits = (labels[nbrs] ^ labels[a]) & 1
        delta += float((wts * (1.0 - 2.0 * xor_bits)).sum())
    return sign * delta


def kl_swap_pass(level: Level, sign: int, sweeps: int = 1) -> tuple[int, float]:
    """Kernighan-Lin-style swap pass (the paper's future-work variant).

    Where :func:`swap_pass` applies only immediately-improving swaps, this
    pass executes a full *sequence* of sibling swaps in best-gain-first
    order -- including negative-gain moves that may unlock later gains --
    and then rolls back to the best prefix of the sequence, exactly like
    classic KL/FM.  Each sibling pair moves at most once per sweep.

    Same contract as :func:`swap_pass`: labels mutate in place, the label
    multiset is preserved, returns ``(n_swaps_kept, total_delta)`` with
    ``total_delta <= 0``.
    """
    import heapq

    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign}")
    labels = level.labels
    if labels.shape[0] < 2 or level.us.size == 0:
        return 0, 0.0
    indptr, indices, weights = build_adjacency(level)
    kept_swaps = 0
    kept_delta = 0.0
    for _ in range(max(1, sweeps)):
        pairs = sibling_pairs(labels)
        if pairs.shape[0] == 0:
            break
        # pair id per vertex for gain invalidation
        pair_of = {}
        for pid, (u, v) in enumerate(pairs):
            pair_of[int(u)] = pid
            pair_of[int(v)] = pid
        done = np.zeros(pairs.shape[0], dtype=bool)
        current = np.empty(pairs.shape[0], dtype=np.float64)
        heap: list[tuple[float, int, float]] = []
        for pid, (u, v) in enumerate(pairs):
            d = _swap_delta(labels, indptr, indices, weights, int(u), int(v), sign)
            current[pid] = d
            heapq.heappush(heap, (d, pid, d))
        executed: list[int] = []
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        while heap:
            d, pid, d_rec = heapq.heappop(heap)
            if done[pid] or current[pid] != d_rec:
                continue
            u, v = int(pairs[pid][0]), int(pairs[pid][1])
            d_now = _swap_delta(labels, indptr, indices, weights, u, v, sign)
            if d_now != d_rec:
                current[pid] = d_now
                heapq.heappush(heap, (d_now, pid, d_now))
                continue
            done[pid] = True
            labels[u], labels[v] = labels[v], labels[u]
            executed.append(pid)
            cum += d_now
            if cum < best_cum - 1e-12:
                best_cum = cum
                best_len = len(executed)
            # invalidate gains of pairs adjacent to u or v
            for a in (u, v):
                for t in indices[indptr[a] : indptr[a + 1]]:
                    qid = pair_of.get(int(t))
                    if qid is not None and not done[qid]:
                        x, y = int(pairs[qid][0]), int(pairs[qid][1])
                        d_new = _swap_delta(
                            labels, indptr, indices, weights, x, y, sign
                        )
                        if d_new != current[qid]:
                            current[qid] = d_new
                            heapq.heappush(heap, (d_new, qid, d_new))
        # roll back past the best prefix
        for pid in executed[best_len:]:
            u, v = int(pairs[pid][0]), int(pairs[pid][1])
            labels[u], labels[v] = labels[v], labels[u]
        kept_swaps += best_len
        kept_delta += best_cum
        if best_len == 0:
            break
    return kept_swaps, kept_delta
