"""Greedy sibling-label swap pass (Algorithm 1, lines 10-12).

On every hierarchy level, the candidate moves are exchanges of *sibling*
labels: two vertices whose labels agree on everything except the least
significant digit.  Such a swap changes only the LSB contribution of the
two vertices' incident edges, so its effect on the level's ``Coco+``
estimate is computable in ``O(deg(u) + deg(v))``:

    delta = sign * [ sum_{t~u, t!=v} w(u,t) * (1 - 2*(b_u xor b_t))
                   + sum_{t~v, t!=u} w(v,t) * (1 - 2*(b_v xor b_t)) ]

where ``b_x`` is the LSB of ``x``'s current label and ``sign`` is +1 when
the level's LSB is an lp bit (it contributes to Coco) and -1 when it is an
le bit (it contributes to -Div).  The pass greedily applies every swap
with negative delta, in ascending label-prefix order, optionally repeating
until stable.

The production path is the vectorized batch kernel in
:mod:`repro.core.kernels` (one CSR gather + segment reduction for *all*
pairs, conflict-free commit rounds equivalent to the sequential sweep).
The original scalar sweep is kept as :func:`swap_pass_reference` -- it is
the ground truth for the equivalence tests and the "before" side of the
kernel benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.contraction import Level
from repro.core.kernels import (
    batch_pair_deltas,
    batch_swap_pass,
    level_csr,
    pair_delta,
    pair_interactions,
    sibling_pair_weights,
    sibling_pairs,
)
from repro.utils.bitops import label_lsb, swap_label_rows
from repro.utils.segments import build_csr

__all__ = [
    "build_adjacency",
    "sibling_pairs",
    "swap_pass",
    "swap_pass_reference",
    "kl_swap_pass",
    "kl_swap_pass_reference",
]


def build_adjacency(level: Level) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency (indptr, indices, weights) of a level's edge arrays."""
    return build_csr(level.n, level.us, level.vs, level.ws)


def swap_pass(
    level: Level,
    sign: int,
    sweeps: int = 1,
    csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[int, float]:
    """Run greedy sibling swaps on ``level`` (labels mutate in place).

    Returns ``(n_swaps, total_delta)`` where ``total_delta`` is the summed
    (negative) change of the level's ``Coco+`` estimate.  Delegates to the
    vectorized :func:`repro.core.kernels.batch_swap_pass`, which produces
    the same final labeling as the scalar sweep.
    """
    return batch_swap_pass(level, sign, sweeps=sweeps, csr=csr)


def swap_pass_reference(level: Level, sign: int, sweeps: int = 1) -> tuple[int, float]:
    """The original scalar greedy sweep (per-pair Python loop).

    Kept verbatim as the semantic reference: the batch kernel must match
    its final labeling byte-for-byte on integer-weight levels.
    """
    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign}")
    labels = level.labels
    if labels.shape[0] < 2 or level.us.size == 0:
        return 0, 0.0
    indptr, indices, weights = build_adjacency(level)
    n_swaps = 0
    total_delta = 0.0
    for _ in range(max(1, sweeps)):
        swapped_this_sweep = 0
        pairs = sibling_pairs(labels)
        for u, v in pairs:
            u, v = int(u), int(v)
            delta = _swap_delta(labels, indptr, indices, weights, u, v, sign)
            if delta < 0.0:
                swap_label_rows(labels, u, v)
                n_swaps += 1
                swapped_this_sweep += 1
                total_delta += delta
        if swapped_this_sweep == 0:
            break
    return n_swaps, total_delta


#: Scalar per-pair gain; lives in :mod:`repro.core.kernels` now but stays
#: importable from here for backward compatibility.
_swap_delta = pair_delta


def kl_swap_pass(
    level: Level,
    sign: int,
    sweeps: int = 1,
    csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[int, float]:
    """Kernighan-Lin-style swap pass (the paper's future-work variant).

    Where :func:`swap_pass` applies only immediately-improving swaps, this
    pass executes a full *sequence* of sibling swaps in best-gain-first
    order -- including negative-gain moves that may unlock later gains --
    and then rolls back to the best prefix of the sequence, exactly like
    classic KL/FM.  Each sibling pair moves at most once per sweep.

    Same contract as :func:`swap_pass`: labels mutate in place, the label
    multiset is preserved, returns ``(n_swaps_kept, total_delta)`` with
    ``total_delta <= 0``.

    Gain maintenance is fully vectorized on the batch kernels: the
    initial table comes from :func:`~repro.core.kernels.batch_pair_deltas`
    and every execution updates the affected gains through the
    precomputed :func:`~repro.core.kernels.pair_interactions` edge list.
    Within one sequence a vertex LSB flips at most once, so the gain pair
    ``q`` sees is exactly ``d_q^0 - 2 * sum over executed pairs j of the
    start-of-sweep contributions between q and j`` -- no per-pair
    adjacency slicing remains (the closed form the batch greedy fixpoint
    already relies on).  Final labelings are byte-identical to
    :func:`kl_swap_pass_reference` whenever edge weights are exactly
    representable (integer-valued, as on all contracted levels of
    unit-weight graphs).
    """
    import heapq

    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign}")
    labels = level.labels
    if labels.shape[0] < 2 or level.us.size == 0:
        return 0, 0.0
    if csr is None:
        csr = level_csr(level)
    kept_swaps = 0
    kept_delta = 0.0
    for _ in range(max(1, sweeps)):
        pairs = sibling_pairs(labels)
        k = pairs.shape[0]
        if k == 0:
            break
        done = np.zeros(k, dtype=bool)
        pair_w = sibling_pair_weights(level, pairs)
        current = batch_pair_deltas(labels, pairs, csr, sign, pair_w)
        # Interaction list grouped by the *swapping* pair: when pair j
        # executes, entry (own=q, dst=j) contributes -2 * c0 to q's gain,
        # with c0 the signed start-of-sweep LSB contribution of its edge.
        own, dst, src, nbr, wt = pair_interactions(pairs, csr, labels.shape[0])
        b = label_lsb(labels)
        c0 = sign * (wt * (1.0 - 2.0 * (b[src] ^ b[nbr])))
        by_dst = np.argsort(dst, kind="stable")
        own_by_dst = own[by_dst]
        c0_by_dst = c0[by_dst]
        dst_indptr = np.searchsorted(dst[by_dst], np.arange(k + 1))
        heap: list[tuple[float, int, float]] = [
            (float(current[pid]), pid, float(current[pid])) for pid in range(k)
        ]
        heapq.heapify(heap)
        executed: list[int] = []
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        while heap:
            d, pid, d_rec = heapq.heappop(heap)
            if done[pid] or current[pid] != d_rec:
                continue
            u, v = int(pairs[pid][0]), int(pairs[pid][1])
            done[pid] = True
            swap_label_rows(labels, u, v)
            executed.append(pid)
            cum += d
            if cum < best_cum - 1e-12:
                best_cum = cum
                best_len = len(executed)
            # Batch gain update for every pair touching the executed one.
            lo, hi = int(dst_indptr[pid]), int(dst_indptr[pid + 1])
            if lo == hi:
                continue
            owners = own_by_dst[lo:hi]
            np.subtract.at(current, owners, 2.0 * c0_by_dst[lo:hi])
            for qid in np.unique(owners):
                if not done[qid]:
                    d_new = float(current[qid])
                    heapq.heappush(heap, (d_new, int(qid), d_new))
        # roll back past the best prefix
        for pid in executed[best_len:]:
            u, v = int(pairs[pid][0]), int(pairs[pid][1])
            swap_label_rows(labels, u, v)
        kept_swaps += best_len
        kept_delta += best_cum
        if best_len == 0:
            break
    return kept_swaps, kept_delta


def kl_swap_pass_reference(
    level: Level,
    sign: int,
    sweeps: int = 1,
    csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[int, float]:
    """The original KL pass with scalar heap-gain recomputation.

    Kept verbatim as the semantic ground truth for the vectorized
    :func:`kl_swap_pass`: the equivalence test drives both over the same
    hierarchy levels and asserts byte-identical final labelings.
    """
    import heapq

    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign}")
    labels = level.labels
    if labels.shape[0] < 2 or level.us.size == 0:
        return 0, 0.0
    if csr is None:
        csr = level_csr(level)
    indptr, indices, weights = csr
    kept_swaps = 0
    kept_delta = 0.0
    for _ in range(max(1, sweeps)):
        pairs = sibling_pairs(labels)
        if pairs.shape[0] == 0:
            break
        # pair id per vertex for gain invalidation
        pair_of = {}
        for pid, (u, v) in enumerate(pairs):
            pair_of[int(u)] = pid
            pair_of[int(v)] = pid
        done = np.zeros(pairs.shape[0], dtype=bool)
        pair_w = sibling_pair_weights(level, pairs)
        current = batch_pair_deltas(labels, pairs, csr, sign, pair_w)
        heap: list[tuple[float, int, float]] = [
            (float(current[pid]), pid, float(current[pid]))
            for pid in range(pairs.shape[0])
        ]
        heapq.heapify(heap)
        executed: list[int] = []
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        while heap:
            d, pid, d_rec = heapq.heappop(heap)
            if done[pid] or current[pid] != d_rec:
                continue
            u, v = int(pairs[pid][0]), int(pairs[pid][1])
            d_now = pair_delta(labels, indptr, indices, weights, u, v, sign)
            if d_now != d_rec:
                current[pid] = d_now
                heapq.heappush(heap, (d_now, pid, d_now))
                continue
            done[pid] = True
            swap_label_rows(labels, u, v)
            executed.append(pid)
            cum += d_now
            if cum < best_cum - 1e-12:
                best_cum = cum
                best_len = len(executed)
            # invalidate gains of pairs adjacent to u or v
            for a in (u, v):
                for t in indices[indptr[a] : indptr[a + 1]]:
                    qid = pair_of.get(int(t))
                    if qid is not None and not done[qid]:
                        x, y = int(pairs[qid][0]), int(pairs[qid][1])
                        d_new = pair_delta(
                            labels, indptr, indices, weights, x, y, sign
                        )
                        if d_new != current[qid]:
                            current[qid] = d_new
                            heapq.heappush(heap, (d_new, qid, d_new))
        # roll back past the best prefix
        for pid in executed[best_len:]:
            u, v = int(pairs[pid][0]), int(pairs[pid][1])
            swap_label_rows(labels, u, v)
        kept_swaps += best_len
        kept_delta += best_cum
        if best_len == 0:
            break
    return kept_swaps, kept_delta
