"""Exception hierarchy for the :mod:`repro` package.

Keeping a small, explicit hierarchy lets callers distinguish between
user errors (bad arguments, malformed files) and structural errors
(graph is not a partial cube, mapping is infeasible) without string
matching on messages.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphFormatError(ReproError):
    """A graph file or in-memory description is malformed."""


class NotPartialCubeError(ReproError):
    """Raised when a processor graph fails partial-cube recognition.

    The optional ``reason`` attribute carries the specific structural
    violation (non-bipartite, overlapping Djokovic classes, distance
    mismatch) for diagnostics.
    """

    def __init__(self, message: str, reason: str = "unknown"):
        super().__init__(message)
        self.reason = reason


class BalanceError(ReproError):
    """A partition or mapping violates its balance constraint."""


class MappingError(ReproError):
    """A mapping is structurally invalid (wrong size, out of range, ...)."""


class ConfigurationError(ReproError):
    """Invalid algorithm configuration."""


class TransientError(ReproError):
    """A failure that is expected to clear on retry.

    Worker-process death, cache I/O hiccups, injected chaos faults and
    load-shedding all land here.  The serving layer maps transients to
    ``503`` (or ``429`` for admission rejects) with a ``Retry-After``
    hint; the scheduler's retry policy only ever retries this class --
    anything else recomputing would just fail again.
    """

    #: seconds a client should wait before retrying (serve layers may
    #: override per instance; 0 means "immediately").
    retry_after: float = 0.0


class PermanentError(ReproError):
    """A failure no retry can fix (maps to HTTP 500).

    Distinguished from plain :class:`ReproError` (client-input problems,
    HTTP 400): a ``PermanentError`` means the *service* definitively
    failed this unit of work -- e.g. a poison request that crashes every
    worker it touches.
    """


class WorkerCrashError(TransientError):
    """A pool worker died (crash/OOM/kill) while running a task.

    Transient because the supervisor restarts the worker and requeues
    the work; it only surfaces to callers when the retry budget is
    spent without isolating a poison item.
    """


class PoisonRequestError(PermanentError):
    """One isolated work item repeatedly crashed its worker.

    Produced by the supervised pool's bisection: after a batch crash is
    narrowed down to a single item that still kills a fresh worker, that
    item is failed permanently (HTTP 500) so the rest of the batch can
    succeed.
    """


class CircuitOpenError(TransientError):
    """A group's circuit breaker is open; load is being shed (HTTP 503)."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
