"""Exception hierarchy for the :mod:`repro` package.

Keeping a small, explicit hierarchy lets callers distinguish between
user errors (bad arguments, malformed files) and structural errors
(graph is not a partial cube, mapping is infeasible) without string
matching on messages.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphFormatError(ReproError):
    """A graph file or in-memory description is malformed."""


class NotPartialCubeError(ReproError):
    """Raised when a processor graph fails partial-cube recognition.

    The optional ``reason`` attribute carries the specific structural
    violation (non-bipartite, overlapping Djokovic classes, distance
    mismatch) for diagnostics.
    """

    def __init__(self, message: str, reason: str = "unknown"):
        super().__init__(message)
        self.reason = reason


class BalanceError(ReproError):
    """A partition or mapping violates its balance constraint."""


class MappingError(ReproError):
    """A mapping is structurally invalid (wrong size, out of range, ...)."""


class ConfigurationError(ReproError):
    """Invalid algorithm configuration."""
