"""Experiment harness regenerating every table and figure of the paper.

- :mod:`~repro.experiments.topologies` -- the five processor graphs of §7
  (2DGrid(16x16), 3DGrid(8x8x8), 2DTorus(16x16), 3DTorus(8x8x8), 8-dim
  hypercube) plus small variants for tests.
- :mod:`~repro.experiments.instances` -- synthetic stand-ins for the 15
  complex networks of Table 1.
- :mod:`~repro.experiments.cases` -- experimental cases c1..c4 (initial
  mapping algorithms).
- :mod:`~repro.experiments.metrics` -- the min/mean/max quotient and
  geometric-mean machinery of §7.1.
- :mod:`~repro.experiments.runner` -- the parallel, resumable factorial
  driver (deterministic per-cell seeding; ``jobs=N`` == ``jobs=1``).
- :mod:`~repro.experiments.store` -- content-addressed on-disk cell
  records backing ``--resume``.
- :mod:`~repro.experiments.matrix` -- declarative TOML/JSON scenario
  matrices (builtin: ``paper``, ``widened``, ``smoke``).
- :mod:`~repro.experiments.reporting` -- text/CSV rendering of Table 1/2/3
  and the Figure 5 series.
- ``python -m repro.experiments`` -- command line entry point.
"""

from repro.experiments.topologies import (
    PAPER_TOPOLOGIES,
    WIDENED_TOPOLOGIES,
    make_topology,
    topology_names,
)
from repro.experiments.instances import (
    INSTANCES,
    InstanceSpec,
    generate_instance,
    instance_names,
)
from repro.experiments.cases import CASES, run_case
from repro.experiments.metrics import (
    MinMeanMax,
    QuotientSummary,
    geometric_mean,
    geometric_std,
    summarize_cell,
)
from repro.experiments.runner import (
    CellResult,
    ExperimentConfig,
    cell_identity,
    run_experiment,
)
from repro.experiments.store import ArtifactStore, cell_key
from repro.experiments.matrix import BUILTIN_SCENARIOS, Scenario, get_scenario, load_matrix
from repro.experiments.claims import ClaimCheck, validate_paper_claims, render_claims

__all__ = [
    "PAPER_TOPOLOGIES",
    "WIDENED_TOPOLOGIES",
    "make_topology",
    "topology_names",
    "INSTANCES",
    "InstanceSpec",
    "generate_instance",
    "instance_names",
    "CASES",
    "run_case",
    "MinMeanMax",
    "QuotientSummary",
    "geometric_mean",
    "geometric_std",
    "summarize_cell",
    "ExperimentConfig",
    "run_experiment",
    "cell_identity",
    "CellResult",
    "ArtifactStore",
    "cell_key",
    "BUILTIN_SCENARIOS",
    "Scenario",
    "get_scenario",
    "load_matrix",
    "ClaimCheck",
    "validate_paper_claims",
    "render_claims",
]
