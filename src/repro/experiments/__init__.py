"""Experiment harness regenerating every table and figure of the paper.

- :mod:`~repro.experiments.topologies` -- the five processor graphs of §7
  (2DGrid(16x16), 3DGrid(8x8x8), 2DTorus(16x16), 3DTorus(8x8x8), 8-dim
  hypercube) plus small variants for tests.
- :mod:`~repro.experiments.instances` -- synthetic stand-ins for the 15
  complex networks of Table 1.
- :mod:`~repro.experiments.cases` -- experimental cases c1..c4 (initial
  mapping algorithms).
- :mod:`~repro.experiments.metrics` -- the min/mean/max quotient and
  geometric-mean machinery of §7.1.
- :mod:`~repro.experiments.runner` -- the factorial driver.
- :mod:`~repro.experiments.reporting` -- text/CSV rendering of Table 1/2/3
  and the Figure 5 series.
- ``python -m repro.experiments`` -- command line entry point.
"""

from repro.experiments.topologies import (
    PAPER_TOPOLOGIES,
    make_topology,
    topology_names,
)
from repro.experiments.instances import (
    INSTANCES,
    InstanceSpec,
    generate_instance,
    instance_names,
)
from repro.experiments.cases import CASES, run_case
from repro.experiments.metrics import (
    MinMeanMax,
    QuotientSummary,
    geometric_mean,
    geometric_std,
    summarize_cell,
)
from repro.experiments.runner import ExperimentConfig, run_experiment, CellResult
from repro.experiments.claims import ClaimCheck, validate_paper_claims, render_claims

__all__ = [
    "PAPER_TOPOLOGIES",
    "make_topology",
    "topology_names",
    "INSTANCES",
    "InstanceSpec",
    "generate_instance",
    "instance_names",
    "CASES",
    "run_case",
    "MinMeanMax",
    "QuotientSummary",
    "geometric_mean",
    "geometric_std",
    "summarize_cell",
    "ExperimentConfig",
    "run_experiment",
    "CellResult",
    "ClaimCheck",
    "validate_paper_claims",
    "render_claims",
]
