"""Terminal bar charts for the Figure 5 panels.

The paper's Figure 5 is a grouped bar plot of quality quotients around a
y=1 reference line.  Without a plotting dependency we render the same
information as horizontal ASCII bars anchored at 1.0: bars to the left
mean improvement (< 1), to the right deterioration (> 1).
"""

from __future__ import annotations

import io

#: columns per 0.1 of quotient deviation from 1.0
SCALE = 40
SPAN = 0.5  # plot range: 1.0 +- SPAN


def bar_for(quotient: float, width: int = SCALE) -> str:
    """Render one quotient as a bar around the 1.0 axis.

    >>> bar_for(1.0).count('|')
    1
    """
    clipped = max(1.0 - SPAN, min(1.0 + SPAN, quotient))
    offset = int(round((clipped - 1.0) / SPAN * width))
    left = " " * (width + min(0, offset)) + "#" * max(0, -offset)
    right = "#" * max(0, offset)
    return f"{left}|{right}".ljust(2 * width + 1)


def render_fig5_chart(result, case: str) -> str:
    """ASCII rendition of one Figure 5 panel (mean Cut and Co quotients)."""
    from repro.experiments.cases import CASES

    agg = result.aggregate()
    buf = io.StringIO()
    buf.write(
        f"Figure 5 ({case} = {CASES.get(case, '?')}) -- bars left of '|' are "
        "improvements\n"
    )
    axis_lo, axis_hi = 1.0 - SPAN, 1.0 + SPAN
    buf.write(f"{'':<22}{axis_lo:<{SCALE}.2f}1.0{axis_hi:>{SCALE - 2}.2f}\n")
    for topo in result.config.topologies:
        q = agg.get(topo, {}).get(case)
        if q is None:
            continue
        for metric, key in (("Cut", "q_cut"), ("Co", "q_coco")):
            value = q[key]["mean"]
            buf.write(
                f"{topo + ' ' + metric:<20} [{bar_for(value)}] {value:5.3f}\n"
            )
    return buf.getvalue()
