"""Experimental cases c1..c4 (paper §7.1, "Baselines").

Each case fixes how the initial mapping ``mu_1`` is obtained:

- **c1** SCOTCH: dual recursive bipartitioning mapper (our DRB stand-in).
  Runtime quotients for c1 are relative to the *mapping* time.
- **c2** IDENTITY: block i -> PE i on the KaHIP-stand-in partition.
- **c3** GREEDYALLC, **c4** GREEDYMIN: greedy construction mappings.
  Runtime quotients for c2-c4 are relative to the *partitioning* time.

:func:`run_case` executes one (instance, topology, case, seed) cell:
partition -> initial mapping -> TIMER -> metrics.  Since the API
redesign it is a thin consumer of :class:`repro.api.Pipeline` (one
shared-stream seed, initial-mapping stage for the case, TIMER enhance),
byte-identical to the pre-pipeline hand-wired sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.api.pipeline import Pipeline, PipelineConfig
from repro.api.topology import Topology
from repro.core.config import TimerConfig
from repro.core.enhancer import TimerResult
from repro.graphs.graph import Graph
from repro.partialcube.djokovic import PartialCubeLabeling
from repro.partitioning.partition import Partition
from repro.utils.rng import SeedLike

#: case id -> human name, in paper order
CASES: dict[str, str] = {
    "c1": "SCOTCH (DRB)",
    "c2": "IDENTITY",
    "c3": "GREEDYALLC",
    "c4": "GREEDYMIN",
}


@dataclass(frozen=True)
class CaseRun:
    """Raw measurements of one experiment cell repetition."""

    case: str
    instance: str
    topology: str
    seed: int
    coco_before: float
    coco_after: float
    cut_before: float
    cut_after: float
    timer_seconds: float
    baseline_seconds: float  # partition time (c2-c4) or mapping time (c1)
    partition_seconds: float
    mapping_seconds: float
    hierarchies_accepted: int

    @property
    def coco_quotient(self) -> float:
        return self.coco_after / self.coco_before if self.coco_before else 1.0

    @property
    def cut_quotient(self) -> float:
        return self.cut_after / self.cut_before if self.cut_before else 1.0

    @property
    def time_quotient(self) -> float:
        return (
            self.timer_seconds / self.baseline_seconds
            if self.baseline_seconds
            else float("inf")
        )

    #: wall-clock fields -- honest measurements, excluded from the
    #: deterministic section of stored cell records (see experiments.store)
    TIMING_FIELDS = (
        "timer_seconds",
        "baseline_seconds",
        "partition_seconds",
        "mapping_seconds",
    )

    def to_payload(self) -> tuple[dict, dict]:
        """Split into JSON-ready ``(data, timing)`` dicts.

        ``data`` holds everything reproducible from the cell's derived
        seed (quality metrics, identity echoes); ``timing`` holds the
        wall-clock measurements.
        """
        data: dict = {}
        timing: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (np.floating, float)):
                value = float(value)
            elif isinstance(value, np.integer):
                value = int(value)
            (timing if f.name in self.TIMING_FIELDS else data)[f.name] = value
        return data, timing

    @classmethod
    def from_payload(cls, data: dict, timing: dict) -> "CaseRun":
        """Inverse of :meth:`to_payload` (ignores unknown keys)."""
        known = {f.name for f in fields(cls)}
        merged = {k: v for k, v in {**data, **timing}.items() if k in known}
        return cls(**merged)


def run_case(
    case: str,
    ga: Graph,
    gp: Graph,
    pc: PartialCubeLabeling,
    part: Partition,
    partition_seconds: float,
    topology_name: str,
    seed: SeedLike,
    timer_config: TimerConfig,
) -> tuple[CaseRun, TimerResult]:
    """Execute one cell: initial mapping + TIMER + metric collection.

    The partition is passed in (and its time separately) because all of
    c2..c4 share it -- mirroring the paper, where one KaHIP partition
    feeds every mapping algorithm.
    """
    if case not in CASES:
        raise KeyError(f"unknown case {case!r}")
    pipeline = Pipeline(
        Topology.from_graph(gp, labeling=pc, name=topology_name),
        PipelineConfig(
            partition="none",
            initial_mapping=case,
            enhance="timer",
            seed_policy="stream",
            timer=timer_config,
        ),
    )
    pres = pipeline.run(ga, partition=part, seed=seed)
    result = pres.timer
    mapping_seconds = pres.stage_seconds("initial_mapping")
    baseline = mapping_seconds if case == "c1" else partition_seconds
    run = CaseRun(
        case=case,
        instance=ga.name,
        topology=topology_name,
        seed=int(seed) if isinstance(seed, (int, np.integer)) else -1,
        coco_before=result.coco_before,
        coco_after=result.coco_after,
        cut_before=result.cut_before,
        cut_after=result.cut_after,
        timer_seconds=result.elapsed_seconds,
        baseline_seconds=baseline,
        partition_seconds=partition_seconds,
        mapping_seconds=mapping_seconds,
        hierarchies_accepted=result.hierarchies_accepted,
    )
    return run, result
