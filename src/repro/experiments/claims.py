"""Programmatic checks of the paper's §7.2 narrative claims.

EXPERIMENTS.md compares paper-vs-measured by hand; this module does the
same mechanically for any :class:`~repro.experiments.runner.ExperimentResult`,
so benches and CI can assert "the reproduction still reproduces" after
any refactor.  Each check returns a :class:`ClaimCheck` rather than
raising, so a report can show all verdicts at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import ExperimentResult


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of one §7.2 claim evaluated on measured data."""

    claim_id: str
    description: str
    passed: bool
    details: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.claim_id}: {self.description} -- {self.details}"


def _mean_coco_quotients(result: ExperimentResult) -> dict[tuple[str, str], float]:
    agg = result.aggregate()
    return {
        (topo, case): by_case[case]["q_coco"]["mean"]
        for topo, by_case in agg.items()
        for case in by_case
    }


def _family_mean(quotients: dict, prefix: str) -> float:
    vals = [q for (topo, _), q in quotients.items() if topo.startswith(prefix)]
    return float(np.mean(vals)) if vals else float("nan")


def check_coco_improves(result: ExperimentResult) -> ClaimCheck:
    """§7.2: 'TIMER successfully reduces communication costs'."""
    quotients = _mean_coco_quotients(result)
    worst = max(quotients.values()) if quotients else float("nan")
    mean = float(np.mean(list(quotients.values()))) if quotients else float("nan")
    return ClaimCheck(
        "coco-improves",
        "mean Coco quotient < 1 across cells",
        bool(quotients) and mean < 1.0,
        f"mean quotient {mean:.3f}, worst cell {worst:.3f}",
    )


def check_cut_inflates_modestly(result: ExperimentResult) -> ClaimCheck:
    """§7.2: edge cut worsens by roughly 2-11% on average."""
    agg = result.aggregate()
    cuts = [
        by_case[case]["q_cut"]["mean"]
        for by_case in agg.values()
        for case in by_case
    ]
    mean = float(np.mean(cuts)) if cuts else float("nan")
    return ClaimCheck(
        "cut-inflates-modestly",
        "mean cut quotient in (1.0, 1.25)",
        bool(cuts) and 1.0 <= mean < 1.25,
        f"mean cut quotient {mean:.3f}",
    )


def check_grids_beat_hypercube(result: ExperimentResult) -> ClaimCheck:
    """§7.2: 'the better the connectivity of Gp, the harder to improve'."""
    quotients = _mean_coco_quotients(result)
    grid = _family_mean(quotients, "grid")
    hq = _family_mean(quotients, "hq")
    ok = not np.isnan(grid) and not np.isnan(hq) and grid <= hq + 0.03
    return ClaimCheck(
        "grids-beat-hypercube",
        "grid Coco quotients <= hypercube quotients (+3% slack)",
        ok,
        f"grid mean {grid:.3f}, hq mean {hq:.3f}",
    )


def check_c1_most_improvable(result: ExperimentResult) -> ClaimCheck:
    """§7.2: the generic DRB mapping leaves the most room for TIMER."""
    quotients = _mean_coco_quotients(result)
    by_case: dict[str, list[float]] = {}
    for (_, case), q in quotients.items():
        by_case.setdefault(case, []).append(q)
    means = {case: float(np.mean(v)) for case, v in by_case.items()}
    if "c1" not in means or len(means) < 2:
        return ClaimCheck(
            "c1-most-improvable", "needs cases c1 + construction cases",
            False, f"cases present: {sorted(means)}",
        )
    construction = [means[c] for c in ("c3", "c4") if c in means]
    ok = bool(construction) and means["c1"] <= min(construction) + 0.02
    return ClaimCheck(
        "c1-most-improvable",
        "c1 improves at least as much as greedy-construction cases",
        ok,
        ", ".join(f"{c}={m:.3f}" for c, m in sorted(means.items())),
    )


def check_time_ordering(result: ExperimentResult) -> ClaimCheck:
    """Table 2 commentary: mapping baselines are far cheaper than
    partitioning, so qT(c1) >> qT(c2..c4)."""
    agg = result.aggregate()
    ratios = []
    for by_case in agg.values():
        if "c1" in by_case and "c2" in by_case:
            ratios.append(
                by_case["c1"]["q_time"]["mean"] / by_case["c2"]["q_time"]["mean"]
            )
    ok = bool(ratios) and min(ratios) > 1.5
    return ClaimCheck(
        "time-ordering",
        "qT(c1) exceeds qT(c2) by >1.5x on every topology",
        ok,
        f"min ratio {min(ratios):.2f}" if ratios else "no c1/c2 cells",
    )


ALL_CHECKS = (
    check_coco_improves,
    check_cut_inflates_modestly,
    check_grids_beat_hypercube,
    check_c1_most_improvable,
    check_time_ordering,
)


def validate_paper_claims(result: ExperimentResult) -> list[ClaimCheck]:
    """Run every §7.2 claim check against a sweep result."""
    return [check(result) for check in ALL_CHECKS]


def render_claims(checks: list[ClaimCheck]) -> str:
    """Human-readable verdict block."""
    lines = ["Paper-claim validation (section 7.2):"]
    for c in checks:
        mark = "PASS" if c.passed else "FAIL"
        lines.append(f"  [{mark}] {c.claim_id:<24} {c.details}")
    return "\n".join(lines) + "\n"
