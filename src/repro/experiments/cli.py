"""Command line interface: ``python -m repro.experiments <artifact>``.

Artifacts: ``table1``, ``table2``, ``table3``, ``fig5`` (all four cases),
``all`` (everything + summary), ``csv`` (raw runs).  Sizing knobs map to
:class:`~repro.experiments.runner.ExperimentConfig`.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.instances import instance_names
from repro.experiments.reporting import (
    render_fig5,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    to_csv,
)
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.topologies import PAPER_TOPOLOGIES


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    p.add_argument(
        "artifact",
        choices=["table1", "table2", "table3", "fig5", "all", "csv"],
        help="which paper artifact to regenerate",
    )
    p.add_argument("--instances", nargs="*", default=None,
                   help=f"instance subset (default: all 15); known: {', '.join(instance_names())}")
    p.add_argument("--topologies", nargs="*", default=list(PAPER_TOPOLOGIES))
    p.add_argument("--cases", nargs="*", default=["c1", "c2", "c3", "c4"])
    p.add_argument("--reps", type=int, default=3, help="repetitions per cell (paper: 5)")
    p.add_argument("--nh", type=int, default=8, help="TIMER hierarchies (paper: 50)")
    p.add_argument("--divisor", type=int, default=64,
                   help="instance size divisor vs the paper (default 64)")
    p.add_argument("--n-max", type=int, default=4096)
    p.add_argument("--seed", type=int, default=2018)
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--out", type=str, default=None, help="write to file instead of stdout")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    chunks: list[str] = []
    if args.artifact == "table1":
        chunks.append(render_table1(divisor=args.divisor, seed=args.seed))
    else:
        config = ExperimentConfig(
            instances=tuple(args.instances) if args.instances else (),
            topologies=tuple(args.topologies),
            cases=tuple(args.cases),
            repetitions=args.reps,
            n_hierarchies=args.nh,
            divisor=args.divisor,
            n_max=args.n_max,
            seed=args.seed,
            verbose=args.verbose,
        )
        result = run_experiment(config)
        if args.artifact in ("table2", "all"):
            chunks.append(render_table2(result))
        if args.artifact in ("table3", "all"):
            chunks.append(render_table3(result))
        if args.artifact in ("fig5", "all"):
            from repro.experiments.ascii_chart import render_fig5_chart

            for case in config.cases:
                chunks.append(render_fig5(result, case))
                chunks.append(render_fig5_chart(result, case))
        if args.artifact == "all":
            chunks.append(render_summary(result))
            from repro.experiments.claims import render_claims, validate_paper_claims

            chunks.append(render_claims(validate_paper_claims(result)))
        if args.artifact == "csv":
            chunks.append(to_csv(result))
    text = "\n".join(chunks)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
