"""Command line interface: ``python -m repro.experiments <artifact>``.

Artifacts: ``table1``, ``table2``, ``table3``, ``fig5`` (all four cases),
``all`` (everything + summary), ``csv`` (raw runs), ``json``
(machine-readable aggregate), ``sweep`` (run + provenance report, the
entry point for populating an artifact store), ``gc`` (prune store
records whose code/schema versions no longer match; ``--dry-run`` to
preview).

The sweep shape resolves in three layers, later wins:

1. :class:`~repro.experiments.runner.ExperimentConfig` defaults,
2. a named scenario (``--scenario``, optionally from a ``--matrix``
   TOML/JSON file; builtins: ``paper``, ``widened``, ``smoke``),
3. explicit sizing flags (``--reps``, ``--nh``, ...).

Orchestration knobs: ``--jobs N`` runs cells on ``N`` worker processes
(byte-identical to ``--jobs 1``); ``--store DIR`` persists each completed
cell; ``--resume`` (requires a store) skips cells already on disk.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.experiments.instances import instance_names
from repro.experiments.matrix import get_scenario
from repro.experiments.reporting import (
    render_fig5,
    render_json,
    render_provenance,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    to_csv,
)
from repro.experiments.runner import ExperimentConfig, run_experiment

ARTIFACTS = (
    "table1", "table2", "table3", "fig5", "all", "csv", "json", "sweep", "gc",
)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    p.add_argument(
        "artifact",
        choices=list(ARTIFACTS),
        help="which artifact to regenerate",
    )
    p.add_argument("--instances", nargs="*", default=None,
                   help=f"instance subset (default: all 15); known: {', '.join(instance_names())}")
    p.add_argument("--topologies", nargs="*", default=None,
                   help="topology subset (default: the paper's five)")
    p.add_argument("--cases", nargs="*", default=None,
                   help="case subset (default: c1 c2 c3 c4)")
    p.add_argument("--reps", type=int, default=None,
                   help="repetitions per cell (default 3; paper: 5)")
    p.add_argument("--nh", type=int, default=None,
                   help="TIMER hierarchies (default 8; paper: 50)")
    p.add_argument("--divisor", type=int, default=None,
                   help="instance size divisor vs the paper (default 64)")
    p.add_argument("--n-max", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--matrix", type=str, default=None,
                   help="TOML/JSON scenario-matrix file (see docs/experiments.md)")
    p.add_argument("--scenario", type=str, default=None,
                   help="scenario name from --matrix or the builtins "
                        "(paper, widened, smoke)")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes (results are identical for any value)")
    p.add_argument("--dispatch", choices=("pool", "shards"), default="pool",
                   help="multi-process dispatch: 'pool' sends whole "
                        "(instance, rep) tasks to any free worker; 'shards' "
                        "splits tasks per topology and pins each split to "
                        "its consistent-hash worker (warm sessions, same "
                        "bytes)")
    p.add_argument("--store", type=str, default=None,
                   help="artifact-store directory; every completed cell is "
                        "persisted there as one JSON file")
    p.add_argument("--resume", action="store_true",
                   help="skip cells already present in --store")
    p.add_argument("--dry-run", action="store_true",
                   help="gc only: report stale records without deleting")
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--out", type=str, default=None, help="write to file instead of stdout")
    return p


def resolve_config(args: argparse.Namespace) -> ExperimentConfig:
    """Layer scenario and explicit flags over the defaults."""
    if args.matrix and not args.scenario:
        raise SystemExit("--matrix requires --scenario <name>")
    if args.scenario:
        base = get_scenario(args.scenario, args.matrix).config
    else:
        base = ExperimentConfig()
    overrides: dict = {}
    for flag, field_name in (
        ("instances", "instances"),
        ("topologies", "topologies"),
        ("cases", "cases"),
        ("reps", "repetitions"),
        ("nh", "n_hierarchies"),
        ("divisor", "divisor"),
        ("n_max", "n_max"),
        ("seed", "seed"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[field_name] = (
                tuple(value) if field_name in ("instances", "topologies", "cases")
                else value
            )
    if args.verbose:
        overrides["verbose"] = True
    return replace(base, **overrides)


def run_gc(args) -> int:
    """The ``gc`` artifact: prune version-mismatched store records."""
    from pathlib import Path

    from repro._version import __version__
    from repro.experiments.store import ArtifactStore

    if not args.store:
        raise SystemExit("gc requires --store DIR")
    if not Path(args.store).is_dir():
        # ArtifactStore would silently mkdir; for gc a missing store is
        # always a typo, not a request to create an empty one.
        raise SystemExit(f"gc: store directory {args.store!r} does not exist")
    report = ArtifactStore(args.store).prune(
        code=__version__, dry_run=args.dry_run
    )
    text = report.render()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.resume and not args.store:
        raise SystemExit("--resume requires --store DIR")
    if args.artifact == "gc":
        return run_gc(args)
    config = resolve_config(args)
    chunks: list[str] = []
    if args.artifact == "table1":
        chunks.append(render_table1(divisor=config.divisor, seed=config.seed))
    else:
        result = run_experiment(
            config, jobs=args.jobs, store=args.store, resume=args.resume,
            dispatch=args.dispatch,
        )
        if args.artifact in ("table2", "all"):
            chunks.append(render_table2(result))
        if args.artifact in ("table3", "all"):
            chunks.append(render_table3(result))
        if args.artifact in ("fig5", "all"):
            from repro.experiments.ascii_chart import render_fig5_chart

            for case in config.cases:
                chunks.append(render_fig5(result, case))
                chunks.append(render_fig5_chart(result, case))
        if args.artifact == "all":
            chunks.append(render_summary(result))
            from repro.experiments.claims import render_claims, validate_paper_claims

            chunks.append(render_claims(validate_paper_claims(result)))
        if args.artifact == "csv":
            chunks.append(to_csv(result))
        if args.artifact == "json":
            chunks.append(render_json(result))
        if args.artifact == "sweep":
            chunks.append(render_provenance(result, store=args.store))
            chunks.append(render_summary(result))
    text = "\n".join(chunks)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
