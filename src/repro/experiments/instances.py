"""Synthetic stand-ins for the paper's 15 complex networks (Table 1).

The paper benchmarks on SNAP/DIMACS downloads that are unavailable
offline; per the substitution policy in DESIGN.md each instance is
replaced by a random-graph model matching its *type* (file-sharing,
social, citation, router, web) and approximate density, scaled down so a
pure-Python pipeline completes the full factorial.

``scale`` controls the vertex count: ``n = clip(paper_n // divisor,
n_min, n_max)``.  Every generated instance is reduced to its largest
connected component (the paper itself uses e.g. the PGP giant component)
and regenerated deterministically from ``(name, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.graphs import generators as gen
from repro.graphs.algorithms import largest_component
from repro.graphs.generators.random_graphs import (
    configuration_model,
    powerlaw_degree_sequence,
)
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class InstanceSpec:
    """One Table-1 row: paper metadata plus our synthetic recipe."""

    name: str
    paper_n: int
    paper_m: int
    kind: str
    #: builder(n, rng) -> Graph
    builder: Callable[[int, np.random.Generator], Graph]


def _config_powerlaw(gamma: float, min_deg: int):
    def build(n: int, rng: np.random.Generator) -> Graph:
        seq = powerlaw_degree_sequence(n, gamma, min_deg, seed=rng)
        return configuration_model(seq, seed=rng)

    return build


def _ba(m: int):
    return lambda n, rng: gen.barabasi_albert(n, m, seed=rng)


def _plc(m: int, p: float):
    return lambda n, rng: gen.powerlaw_cluster(n, m, p, seed=rng)


def _rmat(edge_factor: int, a: float = 0.57, b: float = 0.19, c: float = 0.19):
    def build(n: int, rng: np.random.Generator) -> Graph:
        scale = max(1, int(np.ceil(np.log2(max(2, n)))))
        return gen.rmat(scale, edge_factor, a=a, b=b, c=c, seed=rng)

    return build


def _ws(k: int, beta: float):
    return lambda n, rng: gen.watts_strogatz(n, k, beta, seed=rng)


#: Table 1, in paper order.  Average degrees mirror the paper's m/n.
INSTANCES: tuple[InstanceSpec, ...] = (
    InstanceSpec("p2p-Gnutella", 6_405, 29_215, "file-sharing network",
                 _config_powerlaw(2.3, 2)),
    InstanceSpec("PGPgiantcompo", 10_680, 24_316, "PGP user web of trust",
                 _plc(2, 0.6)),
    InstanceSpec("email-EuAll", 16_805, 60_260, "email connections",
                 _config_powerlaw(1.9, 2)),
    InstanceSpec("as-22july06", 22_963, 48_436, "internet routers",
                 _config_powerlaw(2.1, 1)),
    InstanceSpec("soc-Slashdot0902", 28_550, 379_445, "news network",
                 _rmat(13)),
    InstanceSpec("loc-brightkite_edges", 56_739, 212_945, "location-based friendship",
                 _plc(4, 0.4)),
    InstanceSpec("loc-gowalla_edges", 196_591, 950_327, "location-based friendship",
                 _plc(5, 0.4)),
    InstanceSpec("citationCiteseer", 268_495, 1_156_647, "citation network",
                 _ba(4)),
    InstanceSpec("coAuthorsCiteseer", 227_320, 814_134, "citation network",
                 _plc(4, 0.7)),
    InstanceSpec("wiki-Talk", 232_314, 1_458_806, "user interactions",
                 _rmat(6, a=0.62, b=0.18, c=0.18)),
    InstanceSpec("coAuthorsDBLP", 299_067, 977_676, "citation network",
                 _plc(3, 0.7)),
    InstanceSpec("web-Google", 356_648, 2_093_324, "hyperlink network",
                 _rmat(6, a=0.6, b=0.2, c=0.15)),
    InstanceSpec("coPapersCiteseer", 434_102, 16_036_720, "citation network",
                 _ba(8)),
    InstanceSpec("coPapersDBLP", 540_486, 15_245_729, "citation network",
                 _ba(8)),
    InstanceSpec("as-skitter", 554_930, 5_797_663, "internet service providers",
                 _config_powerlaw(2.25, 2)),
)

_BY_NAME = {spec.name: spec for spec in INSTANCES}


def instance_names() -> tuple[str, ...]:
    return tuple(spec.name for spec in INSTANCES)


def get_instance(name: str) -> InstanceSpec:
    if name not in _BY_NAME:
        raise KeyError(f"unknown instance {name!r}; known: {', '.join(_BY_NAME)}")
    return _BY_NAME[name]


def instance_fingerprint(name: str) -> str:
    """Stable recipe fingerprint for artifact-store cell identities.

    Captures the Table-1 metadata the synthetic recipe is derived from,
    so renaming-preserving recipe edits that change the target size or
    kind invalidate cached cells (structural builder changes are covered
    by the code-version component of the key).
    """
    spec = get_instance(name)
    return f"{spec.paper_n}:{spec.paper_m}:{spec.kind}"


def scaled_n(spec: InstanceSpec, divisor: int, n_min: int = 384, n_max: int = 4096) -> int:
    """Vertex budget for ``spec`` under a scale divisor."""
    return int(np.clip(spec.paper_n // divisor, n_min, n_max))


def generate_instance(
    name: str,
    seed: SeedLike = None,
    divisor: int = 64,
    n_min: int = 384,
    n_max: int = 4096,
) -> Graph:
    """Generate the synthetic stand-in for Table-1 row ``name``.

    The result is the largest connected component, relabeled 0..n-1, with
    ``graph.name`` set to the paper instance name.
    """
    spec = get_instance(name)
    rng = make_rng(seed)
    n = scaled_n(spec, divisor, n_min, n_max)
    g = spec.builder(n, rng)
    giant, _ = largest_component(g)
    return Graph(
        giant.indptr,
        giant.indices,
        giant.weights,
        giant.vertex_weights,
        name=spec.name,
        _validate=False,
    )
