"""Declarative scenario matrices for experiment sweeps (TOML/JSON).

A *scenario* is a named, fully-resolved :class:`ExperimentConfig`.  A
*matrix file* declares a set of scenarios plus shared defaults, so sweeps
are data, not code::

    # sweeps.toml
    [defaults]
    reps = 3
    nh = 8
    cases = ["c1", "c2", "c3", "c4"]

    [scenario.paper]
    description = "the paper's Table 2 / Figure 5 grid"
    topologies = ["grid16x16", "grid8x8x8", "torus16x16", "torus8x8x8", "hq8"]

    [scenario.interconnects]
    topologies = ["fattree2x5", "dragonfly8x5", "torus8x8x4"]
    reps = 5

The same shape works as JSON (``{"defaults": {...}, "scenario": {...}}``)
for environments without a TOML writer.  Keys match
:class:`ExperimentConfig` field names, with the CLI's short aliases
(``reps``, ``nh``) accepted; unknown keys, topologies, cases and
instances fail fast at load time rather than hours into a sweep.

:data:`BUILTIN_SCENARIOS` ships the three canonical matrices (``paper``,
``widened``, ``smoke``) so the CLI works without any file.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, fields, replace
from pathlib import Path

from repro.api.registry import REGISTRY, SCENARIO, RegistryView
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentConfig, _validate_config
from repro.experiments.topologies import (
    PAPER_TOPOLOGIES,
    WIDE_TOPOLOGIES,
    WIDENED_TOPOLOGIES,
)

#: matrix-file key -> ExperimentConfig field (CLI flag spellings)
_ALIASES = {"reps": "repetitions", "nh": "n_hierarchies"}

_TUPLE_FIELDS = ("instances", "topologies", "cases")


@dataclass(frozen=True)
class Scenario:
    """One named sweep of a matrix."""

    name: str
    config: ExperimentConfig
    description: str = ""


def config_from_mapping(mapping: dict, defaults: dict | None = None) -> ExperimentConfig:
    """Build a validated :class:`ExperimentConfig` from plain dicts.

    ``mapping`` wins over ``defaults`` key-by-key; both accept the alias
    spellings.  Raises :class:`ConfigurationError` on unknown keys or
    unknown instances/topologies/cases.
    """
    merged: dict = {}
    for source in (defaults or {}), mapping:
        for key, value in source.items():
            merged[_ALIASES.get(key, key)] = value
    known = {f.name for f in fields(ExperimentConfig)}
    unknown = sorted(set(merged) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown scenario keys {unknown}; known: {sorted(known)} "
            f"(aliases: {sorted(_ALIASES)})"
        )
    for key in _TUPLE_FIELDS:
        if key in merged:
            merged[key] = tuple(merged[key])
    config = ExperimentConfig(**merged)
    _validate_config(config)
    return config


def load_matrix(path: str | Path) -> dict[str, Scenario]:
    """Parse a TOML/JSON matrix file into ``{name: Scenario}``.

    The format is picked by suffix (``.toml`` / ``.json``); scenarios
    come back in file order.
    """
    path = Path(path)
    if path.suffix == ".toml":
        with open(path, "rb") as f:
            raw = tomllib.load(f)
    elif path.suffix == ".json":
        with open(path, encoding="utf-8") as f:
            raw = json.load(f)
    else:
        raise ConfigurationError(
            f"matrix file {path} must end in .toml or .json"
        )
    if not isinstance(raw, dict) or not isinstance(raw.get("scenario", None), dict):
        raise ConfigurationError(
            f"matrix file {path} needs a [scenario.<name>] table per sweep"
        )
    defaults = raw.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ConfigurationError(f"[defaults] in {path} must be a table")
    scenarios: dict[str, Scenario] = {}
    for name, body in raw["scenario"].items():
        if not isinstance(body, dict):
            raise ConfigurationError(f"scenario {name!r} in {path} must be a table")
        body = dict(body)
        description = str(body.pop("description", ""))
        try:
            config = config_from_mapping(body, defaults)
        except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"scenario {name!r} in {path}: {exc}") from exc
        scenarios[name] = Scenario(name=name, config=config, description=description)
    return scenarios


# Built-in scenarios register at module import scope (REG001): the
# registry's contents must never depend on who called what, when.
_paper = ExperimentConfig()
for _scenario in (
    Scenario("paper", _paper, "the paper's five topologies at laptop scale"),
    Scenario(
        "widened",
        replace(_paper, topologies=PAPER_TOPOLOGIES + WIDENED_TOPOLOGIES),
        "paper grid plus fat-tree, dragonfly and anisotropic 3-D torus",
    ),
    Scenario(
        "smoke",
        ExperimentConfig(
            # fattree4x3 (85 PEs, 84 Djokovic classes) keeps one
            # wide-label topology in every smoke sweep.
            instances=("p2p-Gnutella", "PGPgiantcompo"),
            topologies=("grid4x4", "hq4", "dragonfly4x2", "fattree4x3"),
            cases=("c2", "c4"),
            repetitions=1,
            n_hierarchies=2,
            divisor=1024,
            n_min=128,
            n_max=192,
        ),
        "minutes-scale end-to-end check (CI, demos)",
    ),
    Scenario(
        "wide",
        ExperimentConfig(
            instances=("p2p-Gnutella", "PGPgiantcompo"),
            topologies=WIDE_TOPOLOGIES,
            cases=("c2",),
            repetitions=1,
            n_hierarchies=2,
            divisor=256,
            n_min=1100,
            n_max=1536,
            seed=2018,
        ),
        "wide-label topologies past the lifted 63-class cap "
        "(fattree2x7 = 255 PEs / 4-word labels, dragonfly16x6 = 1024 PEs)",
    ),
):
    REGISTRY.register(SCENARIO, _scenario.name, _scenario)
del _paper, _scenario


#: Kept under the pre-registry name as a *live* view of the unified
#: registry (kind ``scenario``): reads always reflect later
#: registrations and item assignment registers through, so the
#: ``repro.experiments.BUILTIN_SCENARIOS`` re-export stays consistent.
BUILTIN_SCENARIOS = RegistryView(REGISTRY, SCENARIO)


def builtin_scenarios() -> dict[str, Scenario]:
    """All scenarios registered in the unified registry (kind ``scenario``)."""
    return dict(REGISTRY.items(SCENARIO))


def get_scenario(name: str, matrix_path: str | Path | None = None) -> Scenario:
    """Scenario ``name`` from ``matrix_path`` or the registered builtins."""
    if matrix_path:
        table = load_matrix(matrix_path)
        if name not in table:
            raise ConfigurationError(
                f"unknown scenario {name!r} in {matrix_path}; "
                f"known: {', '.join(table)}"
            )
        return table[name]
    return REGISTRY.get(SCENARIO, name)
