"""The paper's evaluation statistics (§7.1, "Metrics and parameters").

Per (instance, topology, case) cell the paper runs 5 repetitions and
forms min/mean/max of running time ``T``, edge cut and Coco; each is
divided by the corresponding statistic *before* TIMER (for times: by the
partitioning or mapping time), giving 9 quotients.  Geometric means of the
quotients over the 15 application graphs -- plus geometric standard
deviations -- are what Table 2 and Figure 5 plot.

This module implements exactly that aggregation, decoupled from the
runner so it can be unit-tested on synthetic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class MinMeanMax:
    """min/mean/max of a sample (the paper's per-cell statistics)."""

    min: float
    mean: float
    max: float

    @staticmethod
    def of(values: Sequence[float]) -> "MinMeanMax":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot summarize an empty sample")
        return MinMeanMax(float(arr.min()), float(arr.mean()), float(arr.max()))

    def divided_by(self, other: "MinMeanMax") -> "MinMeanMax":
        """Elementwise quotient (after / before)."""
        def q(a: float, b: float) -> float:
            return a / b if b != 0 else float("inf")

        return MinMeanMax(q(self.min, other.min), q(self.mean, other.mean), q(self.max, other.max))

    def to_dict(self) -> dict:
        """Plain-dict form for JSON reports and artifact uploads."""
        return {"min": self.min, "mean": self.mean, "max": self.max}


@dataclass(frozen=True)
class QuotientSummary:
    """The 9 quotients of one cell: qT, qCut, qCo (each min/mean/max)."""

    q_time: MinMeanMax
    q_cut: MinMeanMax
    q_coco: MinMeanMax

    def to_dict(self) -> dict:
        """Plain-dict form for JSON reports and artifact uploads."""
        return {
            "q_time": self.q_time.to_dict(),
            "q_cut": self.q_cut.to_dict(),
            "q_coco": self.q_coco.to_dict(),
        }


def summarize_cell(
    times: Sequence[float],
    baseline_times: Sequence[float],
    cuts_before: Sequence[float],
    cuts_after: Sequence[float],
    cocos_before: Sequence[float],
    cocos_after: Sequence[float],
) -> QuotientSummary:
    """Quotients for one (instance, topology, case) cell.

    Follows the paper: each of TIMER's min/mean/max is divided by the
    min/mean/max of the *pre-TIMER* quantity (for time: the baseline
    algorithm's time).
    """
    return QuotientSummary(
        q_time=MinMeanMax.of(times).divided_by(MinMeanMax.of(baseline_times)),
        q_cut=MinMeanMax.of(cuts_after).divided_by(MinMeanMax.of(cuts_before)),
        q_coco=MinMeanMax.of(cocos_after).divided_by(MinMeanMax.of(cocos_before)),
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises on non-positive entries (quotients are > 0)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of an empty sample")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def geometric_std(values: Iterable[float]) -> float:
    """Geometric standard deviation (paper's variance indicator)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric std of an empty sample")
    if (arr <= 0).any():
        raise ValueError("geometric std requires positive values")
    logs = np.log(arr)
    return float(np.exp(logs.std(ddof=0)))


def aggregate_over_instances(
    summaries: Sequence[QuotientSummary],
) -> dict[str, dict[str, float]]:
    """Geometric mean + std of each quotient over the instance axis.

    Returns ``{"q_time": {"min": .., "mean": .., "max": .., "min_gstd":
    .., ...}, "q_cut": ..., "q_coco": ...}`` -- the numbers behind one
    topology row of Table 2 / one group of bars in Figure 5.
    """
    out: dict[str, dict[str, float]] = {}
    for attr in ("q_time", "q_cut", "q_coco"):
        cells = [getattr(s, attr) for s in summaries]
        entry: dict[str, float] = {}
        for stat in ("min", "mean", "max"):
            vals = [getattr(c, stat) for c in cells]
            entry[stat] = geometric_mean(vals)
            entry[f"{stat}_gstd"] = geometric_std(vals)
        out[attr] = entry
    return out
