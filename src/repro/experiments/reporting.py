"""Text/CSV rendering of the paper's tables and figures.

Every public function returns a string (tables as fixed-width text,
figures as labeled data series) so benches, the CLI and EXPERIMENTS.md
share one formatting path.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict

import numpy as np

from repro._version import __version__
from repro.experiments.cases import CASES
from repro.experiments.instances import INSTANCES, generate_instance
from repro.experiments.metrics import geometric_mean
from repro.experiments.runner import ExperimentResult


def render_table1(divisor: int = 64, seed: int = 2018, generated: bool = True) -> str:
    """Table 1: the complex-network suite (paper sizes and our stand-ins)."""
    buf = io.StringIO()
    buf.write("Table 1: complex networks used for benchmarking\n")
    buf.write(
        f"{'Name':<24}{'paper #V':>10}{'paper #E':>11}"
        + (f"{'ours #V':>9}{'ours #E':>9}" if generated else "")
        + "  Type\n"
    )
    for spec in INSTANCES:
        row = f"{spec.name:<24}{spec.paper_n:>10,}{spec.paper_m:>11,}"
        if generated:
            g = generate_instance(spec.name, seed=seed, divisor=divisor)
            row += f"{g.n:>9,}{g.m:>9,}"
        row += f"  {spec.kind}"
        buf.write(row + "\n")
    return buf.getvalue()


def render_table2(result: ExperimentResult) -> str:
    """Table 2: running-time quotients qT (geometric min/mean/max)."""
    agg = result.aggregate()
    buf = io.StringIO()
    buf.write(
        "Table 2: TIMER running time relative to SCOTCH mapping (c1) or "
        "partitioning (c2-c4)\n"
    )
    cases = result.config.cases
    header = f"{'topology':<14}"
    for case in cases:
        header += f"{case + ' qTmin':>12}{case + ' qTmean':>12}{case + ' qTmax':>12}"
    buf.write(header + "\n")
    for topo in result.config.topologies:
        row = f"{topo:<14}"
        for case in cases:
            q = agg.get(topo, {}).get(case)
            if q is None:
                row += " " * 36
            else:
                t = q["q_time"]
                row += f"{t['min']:>12.4f}{t['mean']:>12.4f}{t['max']:>12.4f}"
        buf.write(row + "\n")
    return buf.getvalue()


def render_table3(result: ExperimentResult) -> str:
    """Table 3: partitioning times per instance for each PE count."""
    ks = sorted({k for (_, k) in result.partition_times})
    buf = io.StringIO()
    buf.write("Table 3: partitioner running times in seconds (mean over reps)\n")
    buf.write(f"{'Name':<24}" + "".join(f"{'k=' + str(k):>12}" for k in ks) + "\n")
    means: dict[int, list[float]] = {k: [] for k in ks}
    for spec in INSTANCES:
        times_row = []
        for k in ks:
            samples = result.partition_times.get((spec.name, k))
            if samples:
                t = float(np.mean(samples))
                times_row.append(t)
                means[k].append(t)
            else:
                times_row.append(float("nan"))
        if all(np.isnan(t) for t in times_row):
            continue
        buf.write(
            f"{spec.name:<24}"
            + "".join(f"{t:>12.3f}" for t in times_row)
            + "\n"
        )
    if any(means[k] for k in ks):
        buf.write(
            f"{'Arithmetic mean':<24}"
            + "".join(f"{np.mean(means[k]):>12.3f}" if means[k] else " " * 12 for k in ks)
            + "\n"
        )
        buf.write(
            f"{'Geometric mean':<24}"
            + "".join(
                f"{geometric_mean(means[k]):>12.3f}" if means[k] else " " * 12
                for k in ks
            )
            + "\n"
        )
    return buf.getvalue()


def render_fig5(result: ExperimentResult, case: str) -> str:
    """Figure 5 panel for ``case``: relative Cut and Coco per topology.

    Emits the six series of the paper's plot (minCut, Cut, maxCut, minCo,
    Co, maxCo) as aligned columns; values < 1 mean TIMER improved the
    metric.
    """
    agg = result.aggregate()
    buf = io.StringIO()
    buf.write(
        f"Figure 5 ({case} = {CASES.get(case, '?')}): quality quotients after "
        "TIMER (geometric means over instances; < 1 is better)\n"
    )
    buf.write(
        f"{'topology':<14}{'minCut':>9}{'Cut':>9}{'maxCut':>9}"
        f"{'minCo':>9}{'Co':>9}{'maxCo':>9}\n"
    )
    for topo in result.config.topologies:
        q = agg.get(topo, {}).get(case)
        if q is None:
            continue
        cut, co = q["q_cut"], q["q_coco"]
        buf.write(
            f"{topo:<14}{cut['min']:>9.3f}{cut['mean']:>9.3f}{cut['max']:>9.3f}"
            f"{co['min']:>9.3f}{co['mean']:>9.3f}{co['max']:>9.3f}\n"
        )
    return buf.getvalue()


def render_summary(result: ExperimentResult) -> str:
    """Headline numbers matching §7.2's narrative claims."""
    agg = result.aggregate()
    buf = io.StringIO()
    co_by_family: dict[str, list[float]] = {"grid": [], "torus": [], "hq": []}
    all_co: list[float] = []
    all_cut: list[float] = []
    for topo, by_case in agg.items():
        for case, q in by_case.items():
            co = q["q_coco"]["mean"]
            all_co.append(co)
            all_cut.append(q["q_cut"]["mean"])
            for fam in co_by_family:
                if topo.startswith(fam):
                    co_by_family[fam].append(co)
    if all_co:
        buf.write(
            f"Coco reduction, mean quotients: best {1 - min(all_co):.1%}, "
            f"worst {1 - max(all_co):.1%}\n"
        )
        buf.write(f"Edge-cut change (mean quotient - 1): {np.mean(all_cut) - 1:+.1%}\n")
        for fam, vals in co_by_family.items():
            if vals:
                buf.write(
                    f"{fam}: average Coco improvement {1 - float(np.mean(vals)):.1%}\n"
                )
    return buf.getvalue()


def render_provenance(result: ExperimentResult, store: str | None = None) -> str:
    """How the sweep executed: shape, worker count, cache reuse.

    The companion to ``--resume``: after a restart this is where "zero
    recomputed cells" becomes visible.
    """
    cfg = result.config
    total = result.cells_computed + result.cells_cached
    buf = io.StringIO()
    buf.write("Sweep provenance\n")
    buf.write(
        f"  grid: {len(cfg.resolved_instances())} instances x "
        f"{len(cfg.topologies)} topologies x {len(cfg.cases)} cases x "
        f"{cfg.repetitions} reps = {total} cells\n"
    )
    buf.write(
        f"  executed: {result.cells_computed} computed, "
        f"{result.cells_cached} replayed from store\n"
    )
    buf.write(f"  jobs: {result.jobs}\n")
    if result.worker_restarts:
        buf.write(f"  worker restarts: {result.worker_restarts}\n")
    buf.write(f"  store: {store if store else '(none)'}\n")
    buf.write(f"  seed: {cfg.seed}  code: {__version__}\n")
    return buf.getvalue()


def render_json(result: ExperimentResult) -> str:
    """Machine-readable aggregate (CI artifacts, external plotting).

    Everything Table 2 / Figure 5 need, plus per-cell quotient summaries
    and execution provenance, as one JSON document.
    """
    doc = {
        "config": asdict(result.config),
        "provenance": {
            "jobs": result.jobs,
            "worker_restarts": result.worker_restarts,
            "cells_computed": result.cells_computed,
            "cells_cached": result.cells_cached,
            "code": __version__,
        },
        "instances": {
            name: {"n": n, "m": m}
            for name, (n, m) in sorted(result.instance_stats.items())
        },
        "aggregate": result.aggregate(),
        "cells": [
            {
                "instance": cell.instance,
                "topology": cell.topology,
                "case": cell.case,
                "repetitions": len(cell.runs),
                "summary": cell.summary().to_dict(),
            }
            for cell in result.cells
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def to_csv(result: ExperimentResult) -> str:
    """Raw per-run measurements as CSV (one row per repetition)."""
    buf = io.StringIO()
    buf.write(
        "instance,topology,case,seed,coco_before,coco_after,cut_before,"
        "cut_after,timer_seconds,baseline_seconds,q_coco,q_cut,q_time\n"
    )
    for cell in result.cells:
        for r in cell.runs:
            buf.write(
                f"{r.instance},{r.topology},{r.case},{r.seed},"
                f"{r.coco_before},{r.coco_after},{r.cut_before},{r.cut_after},"
                f"{r.timer_seconds:.4f},{r.baseline_seconds:.4f},"
                f"{r.coco_quotient:.5f},{r.cut_quotient:.5f},{r.time_quotient:.4f}\n"
            )
    return buf.getvalue()
