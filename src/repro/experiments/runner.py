"""Factorial experiment driver.

Runs (instances x topologies x cases x repetitions), sharing partitions
across cases and topologies with equal PE counts -- exactly as the paper
shares one KaHIP partition per (instance, |V_p|) across the mapping
baselines.  Results come back both raw (:class:`CellResult` per cell) and
aggregated (Table 2 / Figure 5 structures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TimerConfig
from repro.experiments.cases import CASES, CaseRun, run_case
from repro.experiments.instances import generate_instance, instance_names
from repro.experiments.metrics import (
    QuotientSummary,
    aggregate_over_instances,
    summarize_cell,
)
from repro.experiments.topologies import PAPER_TOPOLOGIES, make_topology
from repro.graphs.graph import Graph
from repro.partitioning.kway import partition_kway
from repro.partitioning.partition import Partition
from repro.utils.rng import spawn_rngs
from repro.utils.stopwatch import Stopwatch


@dataclass(frozen=True)
class ExperimentConfig:
    """Shape and budget of an experiment sweep.

    Defaults are sized for a laptop-scale regeneration; the paper's exact
    shape is ``instances=all 15, repetitions=5, n_hierarchies=50,
    divisor=1`` (full-size graphs), which pure Python cannot afford --
    DESIGN.md records the scaling as a substitution.
    """

    instances: tuple[str, ...] = ()
    topologies: tuple[str, ...] = PAPER_TOPOLOGIES
    cases: tuple[str, ...] = ("c1", "c2", "c3", "c4")
    repetitions: int = 3
    n_hierarchies: int = 8
    epsilon: float = 0.03
    divisor: int = 64
    n_min: int = 384
    n_max: int = 4096
    seed: int = 2018  # the paper's year; any fixed value works
    verbose: bool = False

    def resolved_instances(self) -> tuple[str, ...]:
        return self.instances if self.instances else instance_names()


@dataclass
class CellResult:
    """All repetitions of one (instance, topology, case) cell."""

    instance: str
    topology: str
    case: str
    runs: list = field(default_factory=list)

    def summary(self) -> QuotientSummary:
        runs: list[CaseRun] = self.runs
        return summarize_cell(
            times=[r.timer_seconds for r in runs],
            baseline_times=[r.baseline_seconds for r in runs],
            cuts_before=[r.cut_before for r in runs],
            cuts_after=[r.cut_after for r in runs],
            cocos_before=[r.coco_before for r in runs],
            cocos_after=[r.coco_after for r in runs],
        )


@dataclass
class ExperimentResult:
    """Everything a reporting routine needs."""

    config: ExperimentConfig
    cells: list = field(default_factory=list)
    partition_times: dict = field(default_factory=dict)  # (instance, k) -> [s]
    instance_stats: dict = field(default_factory=dict)  # name -> (n, m)

    def aggregate(self) -> dict:
        """``{topology: {case: {q_time/q_cut/q_coco: {...}}}}``."""
        out: dict[str, dict[str, dict]] = {}
        for topo in self.config.topologies:
            out[topo] = {}
            for case in self.config.cases:
                summaries = [
                    c.summary()
                    for c in self.cells
                    if c.topology == topo and c.case == case
                ]
                if summaries:
                    out[topo][case] = aggregate_over_instances(summaries)
        return out


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Execute the sweep described by ``config``."""
    result = ExperimentResult(config=config)
    instances = config.resolved_instances()
    # Independent RNG per (instance, repetition); topology/case reuse the
    # same partition within a repetition, like the paper.
    streams = spawn_rngs(config.seed, len(instances) * config.repetitions)
    timer_cfg = TimerConfig(n_hierarchies=config.n_hierarchies)

    topo_objs = {name: make_topology(name) for name in config.topologies}
    pe_counts = sorted({gp.n for gp, _ in topo_objs.values()})

    for inst_idx, inst_name in enumerate(instances):
        for rep in range(config.repetitions):
            rng = streams[inst_idx * config.repetitions + rep]
            inst_seed = int(rng.integers(0, 2**31 - 1))
            ga = generate_instance(
                inst_name,
                seed=inst_seed,
                divisor=config.divisor,
                n_min=config.n_min,
                n_max=config.n_max,
            )
            result.instance_stats[inst_name] = (ga.n, ga.m)
            # One partition per PE count, shared by all topologies/cases.
            partitions: dict[int, tuple[Partition, float]] = {}
            for k in pe_counts:
                sw = Stopwatch()
                with sw:
                    part = partition_kway(ga, k, epsilon=config.epsilon, seed=rng)
                partitions[k] = (part, sw.elapsed)
                result.partition_times.setdefault((inst_name, k), []).append(sw.elapsed)
            for topo_name in config.topologies:
                gp, pc = topo_objs[topo_name]
                part, part_secs = partitions[gp.n]
                for case in config.cases:
                    run, _ = run_case(
                        case,
                        ga,
                        gp,
                        pc,
                        part,
                        part_secs,
                        topo_name,
                        seed=int(rng.integers(0, 2**31 - 1)),
                        timer_config=timer_cfg,
                    )
                    _record(result, inst_name, topo_name, case, run)
                    if config.verbose:
                        print(
                            f"[{inst_name} rep{rep} {topo_name} {case}] "
                            f"qCo={run.coco_quotient:.3f} qCut={run.cut_quotient:.3f} "
                            f"qT={run.time_quotient:.2f}"
                        )
    return result


def _record(
    result: ExperimentResult, instance: str, topology: str, case: str, run: CaseRun
) -> None:
    for cell in result.cells:
        if (
            cell.instance == instance
            and cell.topology == topology
            and cell.case == case
        ):
            cell.runs.append(run)
            return
    result.cells.append(
        CellResult(instance=instance, topology=topology, case=case, runs=[run])
    )
