"""Parallel, resumable factorial experiment driver.

Runs (instances x topologies x cases x repetitions), sharing partitions
across cases and topologies with equal PE counts -- exactly as the paper
shares one KaHIP partition per (instance, |V_p|) across the mapping
baselines.  Results come back both raw (:class:`CellResult` per cell) and
aggregated (Table 2 / Figure 5 structures).

Orchestration design (ISSUE 2)
------------------------------
Every randomized step seeds itself from the *identity* of what it
computes, not from its position in an execution order:

- instance generation from ``(seed, "instance", name, rep)``,
- partitioning from ``(seed, "partition", name, rep, k)``,
- each cell's mapping + TIMER from ``(seed, "case", name, rep, topology,
  case)``,

all via :func:`repro.utils.rng.derive_seed_sequence`.  Execution order
therefore cannot influence any result: ``jobs=N`` is byte-identical to
``jobs=1`` (deterministic sections; wall-clock timings are honest and
excluded), dropping a topology from the sweep never perturbs the others,
and adding repetitions never reshuffles earlier ones.

The unit of parallel work is one ``(instance, repetition)`` *task* --
large enough to amortize instance generation and to preserve the paper's
partition sharing across the task's topologies and cases, small enough
that a laptop sweep saturates a handful of workers.  Tasks go to a
``multiprocessing`` pool (fork on Linux, spawn elsewhere; the choice
cannot affect results); results come back in submission order.

With an :class:`~repro.experiments.store.ArtifactStore` attached, every
completed cell is persisted as one JSON record and ``resume=True`` skips
cells whose record already exists -- an interrupted sweep restarts where
it died, and a finished sweep replays instantly from disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.topology import LABELING_CACHE_ENV, Topology
from repro.core.config import TimerConfig
from repro.errors import ConfigurationError, PermanentError
from repro.experiments.cases import CASES, CaseRun, run_case
from repro.experiments.instances import (
    generate_instance,
    get_instance,
    instance_fingerprint,
    instance_names,
)
from repro.experiments.metrics import (
    QuotientSummary,
    aggregate_over_instances,
    summarize_cell,
)
from repro.experiments.store import STORE_SCHEMA, ArtifactStore, cell_key
from repro.experiments.topologies import PAPER_TOPOLOGIES, topology_names
from repro.obs import get_logger
from repro.obs.trace import TraceBuffer, Tracer
from repro.partitioning.kway import partition_kway
from repro.partitioning.partition import Partition
from repro.utils.parallel import preferred_mp_context
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.stopwatch import Stopwatch
from repro._version import __version__


@dataclass(frozen=True)
class ExperimentConfig:
    """Shape and budget of an experiment sweep.

    Defaults are sized for a laptop-scale regeneration; the paper's exact
    shape is ``instances=all 15, repetitions=5, n_hierarchies=50,
    divisor=1`` (full-size graphs), which pure Python cannot afford --
    DESIGN.md records the scaling as a substitution.
    """

    instances: tuple[str, ...] = ()
    topologies: tuple[str, ...] = PAPER_TOPOLOGIES
    cases: tuple[str, ...] = ("c1", "c2", "c3", "c4")
    repetitions: int = 3
    n_hierarchies: int = 8
    epsilon: float = 0.03
    divisor: int = 64
    n_min: int = 384
    n_max: int = 4096
    seed: int = 2018  # the paper's year; any fixed value works
    verbose: bool = False

    def resolved_instances(self) -> tuple[str, ...]:
        return self.instances if self.instances else instance_names()


@dataclass
class CellResult:
    """All repetitions of one (instance, topology, case) cell."""

    instance: str
    topology: str
    case: str
    runs: list = field(default_factory=list)

    def summary(self) -> QuotientSummary:
        runs: list[CaseRun] = self.runs
        return summarize_cell(
            times=[r.timer_seconds for r in runs],
            baseline_times=[r.baseline_seconds for r in runs],
            cuts_before=[r.cut_before for r in runs],
            cuts_after=[r.cut_after for r in runs],
            cocos_before=[r.coco_before for r in runs],
            cocos_after=[r.coco_after for r in runs],
        )


@dataclass
class ExperimentResult:
    """Everything a reporting routine needs."""

    config: ExperimentConfig
    cells: list = field(default_factory=list)
    partition_times: dict = field(default_factory=dict)  # (instance, k) -> [s]
    instance_stats: dict = field(default_factory=dict)  # name -> (n, m)
    cells_computed: int = 0  # cell repetitions executed this run
    cells_cached: int = 0  # cell repetitions replayed from the store
    jobs: int = 1
    #: sweep workers restarted after a crash (their tasks were requeued)
    worker_restarts: int = 0

    def aggregate(self) -> dict:
        """``{topology: {case: {q_time/q_cut/q_coco: {...}}}}``."""
        out: dict[str, dict[str, dict]] = {}
        for topo in self.config.topologies:
            out[topo] = {}
            for case in self.config.cases:
                summaries = [
                    c.summary()
                    for c in self.cells
                    if c.topology == topo and c.case == case
                ]
                if summaries:
                    out[topo][case] = aggregate_over_instances(summaries)
        return out


def cell_identity(
    config: ExperimentConfig, instance: str, rep: int, topology: str, case: str
) -> dict:
    """The store-key material of one cell repetition.

    Only result-relevant knobs enter: execution parameters (worker count,
    verbosity) and the *other* axes of the sweep are excluded, so growing
    a sweep (more topologies, more reps) reuses every already-stored
    cell.
    """
    return {
        "schema": STORE_SCHEMA,
        "code": __version__,
        "instance": instance,
        "instance_fingerprint": instance_fingerprint(instance),
        "topology": topology,
        "case": case,
        "rep": rep,
        "seed": config.seed,
        "n_hierarchies": config.n_hierarchies,
        "epsilon": config.epsilon,
        "divisor": config.divisor,
        "n_min": config.n_min,
        "n_max": config.n_max,
    }


@dataclass(frozen=True)
class _Task:
    """One worker unit: the missing cells of an (instance, repetition)."""

    config: ExperimentConfig
    instance: str
    rep: int
    cells: tuple  # ((topology, case), ...) in sweep order


def _run_task(task: _Task) -> list:
    """Execute a task's cells; returns ``[(key, record), ...]``.

    Runs inside a worker process (or inline for ``jobs=1`` -- same code
    path either way).  All seeds derive from cell identities, so the
    records are independent of scheduling.
    """
    config = task.config
    inst_seed = derive_seed(config.seed, "instance", task.instance, task.rep)
    ga = generate_instance(
        task.instance,
        seed=inst_seed,
        divisor=config.divisor,
        n_min=config.n_min,
        n_max=config.n_max,
    )
    timer_cfg = TimerConfig(n_hierarchies=config.n_hierarchies)
    # One partition per PE count needed by this task's cells, shared by
    # all its topologies/cases -- the paper's sharing, now per task.
    partitions: dict[int, tuple[Partition, float]] = {}
    out = []
    for topo_name, case in task.cells:
        # One Topology session per name and process: recognition/labeling
        # run once and are shared by every cell (and, under fork, by every
        # worker inheriting the parent's session cache).
        topo = Topology.from_name(topo_name)
        gp, pc = topo.graph, topo.labeling
        if gp.n not in partitions:
            rng = derive_rng(config.seed, "partition", task.instance, task.rep, gp.n)
            sw = Stopwatch()
            with sw:
                part = partition_kway(ga, gp.n, epsilon=config.epsilon, seed=rng)
            partitions[gp.n] = (part, sw.elapsed)
        part, part_secs = partitions[gp.n]
        case_seed = derive_seed(
            config.seed, "case", task.instance, task.rep, topo_name, case
        )
        run, _ = run_case(
            case,
            ga,
            gp,
            pc,
            part,
            part_secs,
            topo_name,
            seed=case_seed,
            timer_config=timer_cfg,
        )
        identity = cell_identity(config, task.instance, task.rep, topo_name, case)
        data, timing = run.to_payload()
        data.update(instance_n=ga.n, instance_m=ga.m, pe_count=gp.n)
        timing["spans"] = _cell_spans(identity, task, topo_name, case, timing)
        record = {"schema": STORE_SCHEMA, "identity": identity, "data": data,
                  "timing": timing}
        out.append((cell_key(identity), record))
    return out


def _cell_spans(
    identity: dict, task: _Task, topo_name: str, case: str, timing: dict
) -> list[dict]:
    """The cell's stage timings as a span tree (flat dicts, JSON-ready).

    The trace id derives from the cell identity -- the same identity
    that keys the artifact record -- so replayed sweeps produce the
    same tree structure and traces are diffable across runs.  Durations
    come from the already-measured monotonic stopwatches; the spans
    live in the record's ``timing`` section, excluded from identity
    like every other wall-time measurement.
    """
    tracer = Tracer(
        process="runner",
        buffer=TraceBuffer(max_traces=1, max_spans_per_trace=16),
    )
    ctx = tracer.start_trace(identity)
    root = tracer.span(
        "cell",
        ctx,
        instance=task.instance,
        rep=task.rep,
        topology=topo_name,
        case=case,
    )
    for stage, key in (
        ("partition", "partition_seconds"),
        ("initial_mapping", "mapping_seconds"),
        ("enhance", "timer_seconds"),
        ("baseline", "baseline_seconds"),
    ):
        if key not in timing:
            continue
        child = tracer.span(f"stage:{stage}", root.context)
        child.finish(duration=float(timing[key]))
    root.finish(
        duration=sum(float(v) for v in timing.values() if isinstance(v, (int, float)))
    )
    return tracer.buffer.get(ctx.trace_id)


def _validate_config(config: ExperimentConfig) -> None:
    known_topologies = set(topology_names())
    for name in config.topologies:
        if name not in known_topologies:
            raise ConfigurationError(
                f"unknown topology {name!r}; known: {', '.join(sorted(known_topologies))}"
            )
    for case in config.cases:
        if case not in CASES:
            raise ConfigurationError(
                f"unknown case {case!r}; known: {', '.join(CASES)}"
            )
    for name in config.resolved_instances():
        get_instance(name)  # raises KeyError with the known names
    if config.repetitions < 1:
        raise ConfigurationError(
            f"repetitions must be >= 1, got {config.repetitions}"
        )


def _sweep_runner(_ctx: object, task: _Task) -> list:
    """Pool adapter: :class:`SupervisedPool` calls ``runner(ctx, item)``."""
    return _run_task(task)


def _execute(tasks: list, jobs: int, dispatch: str = "pool") -> tuple[list, int]:
    """Run tasks inline or on a supervised pool; outputs in task order.

    Returns ``(outputs, worker_restarts)`` where ``outputs[i]`` is the
    ``[(key, record), ...]`` list for ``tasks[i]`` -- or the exception
    that permanently failed it after the pool's crash recovery gave up.
    A crashed worker does not lose the sweep: its (instance, repetition)
    task is requeued onto a restarted worker, so ``--resume`` semantics
    stay exact (every record that *could* be computed is).

    ``dispatch="shards"`` additionally splits each task per *topology*
    and pins every split to the worker the serve tier's
    :class:`~repro.serve.shard.ShardRouter` owns that topology on, so a
    sweep warms exactly one session (labeling + distances) per topology
    per worker -- the same locality the sharded service exploits.  Byte
    identity is unaffected: every seed derives from a cell identity
    (instance seeds from ``(seed, "instance", ...)``, partition seeds
    from ``(seed, "partition", ..., k)``), never from which process or
    in which grouping a cell ran.

    Determinism never depends on the start method -- so the pool uses
    the shared policy of
    :func:`repro.utils.parallel.preferred_mp_context` (fork on Linux so
    workers share the parent's imports and topology-labeling cache,
    spawn elsewhere).
    """
    if dispatch not in ("pool", "shards"):
        raise ConfigurationError(
            f"dispatch must be 'pool' or 'shards', got {dispatch!r}"
        )
    if jobs <= 1 or not tasks or (dispatch == "pool" and len(tasks) <= 1):
        return [_run_task(t) for t in tasks], 0
    from repro.serve.pool import SupervisedPool

    ctx = preferred_mp_context()
    if dispatch == "shards":
        return _execute_sharded(tasks, jobs, ctx)
    with SupervisedPool(
        _sweep_runner,
        workers=min(jobs, len(tasks)),
        mp_context=ctx,
        name="sweep",
    ) as pool:
        # One pool task per sweep task (singleton items): a crash
        # requeues exactly its (instance, rep) cell block, and repeated
        # crashes poison only that block instead of the whole sweep.
        futures = [pool.submit("sweep", None, [task])[0] for task in tasks]
        outputs: list = []
        for future in futures:
            try:
                outputs.append(future.result())
            except Exception as exc:  # gather, don't fail fast
                outputs.append(exc)
        restarts = pool.restarts
    return outputs, restarts


def _execute_sharded(tasks: list, jobs: int, ctx) -> tuple[list, int]:
    """Topology-pinned fan-out: every (task, topology) split runs on the
    worker that consistent-hash-owns the topology.

    Outputs are reassembled into the original per-task cell order, so
    callers cannot tell the dispatch modes apart (asserted byte-for-byte
    in the tests); a failed split fails its whole original task, exactly
    like a poisoned task under ``dispatch="pool"``.
    """
    from repro.serve.pool import SupervisedPool
    from repro.serve.shard import ShardRouter

    router = ShardRouter([str(i) for i in range(jobs)])
    splits: list[tuple[int, list[int], _Task, int]] = []
    for ti, task in enumerate(tasks):
        groups: dict[str, list[int]] = {}
        for ci, (topo_name, _case) in enumerate(task.cells):
            groups.setdefault(topo_name, []).append(ci)
        for topo_name, idxs in groups.items():
            sub = _Task(
                task.config,
                task.instance,
                task.rep,
                tuple(task.cells[i] for i in idxs),
            )
            splits.append((ti, idxs, sub, int(router.route(topo_name))))
    with SupervisedPool(
        _sweep_runner, workers=int(jobs), mp_context=ctx, name="sweep"
    ) as pool:
        futures = [
            pool.submit("sweep", None, [sub], worker=pin)[0]
            for _ti, _idxs, sub, pin in splits
        ]
        rows: list[list] = [[None] * len(t.cells) for t in tasks]
        errors: list[Exception | None] = [None] * len(tasks)
        for (ti, idxs, _sub, _pin), future in zip(splits, futures):
            try:
                records = future.result()
            except Exception as exc:  # gather, don't fail fast
                errors[ti] = exc
                continue
            for ci, record in zip(idxs, records):
                rows[ti][ci] = record
        restarts = pool.restarts
    outputs = [
        errors[ti] if errors[ti] is not None else rows[ti]
        for ti in range(len(tasks))
    ]
    return outputs, restarts


def run_experiment(
    config: ExperimentConfig,
    jobs: int = 1,
    store: ArtifactStore | str | Path | None = None,
    resume: bool = False,
    dispatch: str = "pool",
) -> ExperimentResult:
    """Execute the sweep described by ``config``.

    Parameters
    ----------
    jobs:
        worker processes; ``1`` runs inline.  Any value yields
        byte-identical deterministic results.
    store:
        an :class:`ArtifactStore` (or its root path) that persists every
        completed cell.  Without a store nothing is written.
    resume:
        reuse store records whose identity matches instead of
        recomputing (requires ``store``).
    dispatch:
        ``"pool"`` (default) sends whole (instance, repetition) tasks to
        any free worker; ``"shards"`` splits tasks per topology and pins
        the splits to consistent-hash-owned workers (see
        :func:`_execute`).  Both modes are byte-identical to ``jobs=1``.
    """
    _validate_config(config)
    if resume and store is None:
        raise ConfigurationError("resume=True requires an artifact store")
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    # Persist topology labelings next to the cells so worker processes
    # (and later sweeps against the same store) load them from disk
    # instead of recomputing per process.  The env var crosses both fork
    # and spawn boundaries; an explicit operator setting wins, and the
    # default is scoped to this sweep so one store's cache never bleeds
    # into the next sweep (or the embedding process).
    cache_env_added = False
    if store is not None and not os.environ.get(LABELING_CACHE_ENV):
        os.environ[LABELING_CACHE_ENV] = str(store.root / "labelings")
        cache_env_added = True
    try:
        return _run_experiment(config, jobs, store, resume, dispatch)
    finally:
        if cache_env_added:
            os.environ.pop(LABELING_CACHE_ENV, None)


def _run_experiment(
    config: ExperimentConfig,
    jobs: int,
    store: ArtifactStore | None,
    resume: bool,
    dispatch: str = "pool",
) -> ExperimentResult:
    instances = config.resolved_instances()
    reps = range(config.repetitions)
    grid = [(t, c) for t in config.topologies for c in config.cases]

    cached: dict[tuple, dict] = {}  # (instance, rep, topo, case) -> record
    tasks: list[_Task] = []
    for inst_name in instances:
        for rep in reps:
            missing = []
            for topo_name, case in grid:
                if store is not None and resume:
                    identity = cell_identity(config, inst_name, rep, topo_name, case)
                    record = store.get(cell_key(identity))
                    if record is not None and record.get("identity") == identity:
                        cached[(inst_name, rep, topo_name, case)] = record
                        continue
                missing.append((topo_name, case))
            if missing:
                tasks.append(_Task(config, inst_name, rep, tuple(missing)))

    fresh: dict[tuple, dict] = {}
    failed: list[tuple[str, int, Exception]] = []
    task_outputs, worker_restarts = _execute(tasks, jobs, dispatch)
    for task, outputs in zip(tasks, task_outputs):
        if isinstance(outputs, Exception):
            failed.append((task.instance, task.rep, outputs))
            continue
        for (topo_name, case), (key, record) in zip(task.cells, outputs):
            fresh[(task.instance, task.rep, topo_name, case)] = record
            if store is not None:
                store.put(key, record)
    if failed:
        # Every successful cell is already persisted above, so a re-run
        # with --resume recomputes only the cells listed here.
        detail = "; ".join(
            f"{inst} rep{rep}: {type(exc).__name__}: {exc}"
            for inst, rep, exc in failed
        )
        raise PermanentError(
            f"{len(failed)} sweep task(s) failed after crash recovery "
            f"({len(fresh)} cell(s) stored; rerun with resume): {detail}"
        )

    result = ExperimentResult(
        config=config,
        cells_computed=len(fresh),
        cells_cached=len(cached),
        jobs=max(1, int(jobs)),
        worker_restarts=worker_restarts,
    )
    seen_partitions: set[tuple] = set()
    for inst_name in instances:
        for rep in reps:
            for topo_name, case in grid:
                ident = (inst_name, rep, topo_name, case)
                record = fresh.get(ident) or cached[ident]
                data, timing = record["data"], record["timing"]
                run = CaseRun.from_payload(data, timing)
                _record(result, inst_name, topo_name, case, run)
                result.instance_stats[inst_name] = (
                    data["instance_n"],
                    data["instance_m"],
                )
                pk = (inst_name, rep, data["pe_count"])
                if pk not in seen_partitions:
                    seen_partitions.add(pk)
                    result.partition_times.setdefault(
                        (inst_name, data["pe_count"]), []
                    ).append(timing["partition_seconds"])
                if config.verbose:
                    get_logger("experiments.runner").info(
                        "cell_finished",
                        instance=inst_name,
                        rep=rep,
                        topology=topo_name,
                        case=case,
                        origin="cache" if ident in cached else "run",
                        q_coco=round(run.coco_quotient, 3),
                        q_cut=round(run.cut_quotient, 3),
                        q_time=round(run.time_quotient, 2),
                    )
    return result


def _record(
    result: ExperimentResult, instance: str, topology: str, case: str, run: CaseRun
) -> None:
    for cell in result.cells:
        if (
            cell.instance == instance
            and cell.topology == topology
            and cell.case == case
        ):
            cell.runs.append(run)
            return
    result.cells.append(
        CellResult(instance=instance, topology=topology, case=case, runs=[run])
    )
