"""Content-addressed on-disk store for experiment cell results.

One JSON file per *cell* -- a single ``(instance, topology, case,
repetition)`` run of the sweep.  The file name is the SHA-256 of the
cell's canonical **identity**: every configuration knob that influences
the computed numbers (sweep seed, sizing, TIMER budget, instance
fingerprint) plus the code version and a store schema version.  Anything
that changes the result changes the key, so a hit is always safe to
reuse; execution knobs (``--jobs``, verbosity) are deliberately excluded.

Each record splits into:

- ``identity`` -- the key material, echoed for inspection;
- ``data`` -- the deterministic measurements (quality metrics, seeds,
  sizes).  Byte-identical across reruns, worker counts and process
  boundaries; :func:`deterministic_bytes` canonicalizes exactly this part
  and is what the determinism tests compare.
- ``timing`` -- wall-clock seconds.  Honest measurements, so *not*
  reproducible byte-for-byte; kept out of the deterministic section.

Writes are atomic (temp file + ``os.replace`` in the same directory), so
a sweep killed mid-write never corrupts the store and concurrent writers
of the same cell settle on one complete record.  Unreadable or
mismatching records are treated as misses and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator

#: Bump when the record layout or the semantics of stored fields change;
#: invalidates every existing store entry.
STORE_SCHEMA = 1


def canonical_json(obj: object) -> str:
    """Canonical JSON: sorted keys, no whitespace, full float precision.

    ``repr``-based float formatting round-trips exactly, so two runs that
    compute the same numbers serialize to the same bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def cell_key(identity: dict) -> str:
    """SHA-256 hex digest of a cell's canonical identity."""
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


def deterministic_bytes(record: dict) -> bytes:
    """Canonical bytes of the reproducible part of a cell record."""
    return canonical_json(
        {"identity": record["identity"], "data": record["data"]}
    ).encode("utf-8")


@dataclass
class PruneReport:
    """Outcome of :meth:`ArtifactStore.prune`."""

    dry_run: bool = False
    kept: int = 0
    #: ``(key, reason)`` per stale record, in sorted key order.
    stale: list = field(default_factory=list)

    @property
    def deleted(self) -> int:
        """Records actually removed (0 on a dry run)."""
        return 0 if self.dry_run else len(self.stale)

    def render(self) -> str:
        """Human-readable gc summary."""
        verb = "would delete" if self.dry_run else "deleted"
        lines = [
            f"store gc: {self.kept} kept, {verb} {len(self.stale)} stale record(s)"
        ]
        for key, reason in self.stale:
            lines.append(f"  {key[:16]}...  {reason}")
        return "\n".join(lines) + "\n"


class ArtifactStore:
    """Keyed JSON records under ``root``, sharded by key prefix.

    Layout: ``root/<key[:2]>/<key>.json``.  The two-character shard keeps
    directory listings manageable for production-size sweeps (15
    instances x 8 topologies x 4 cases x 5 reps = 2400 cells) without any
    index file -- the filesystem *is* the index, which is what makes
    ``--resume`` trivially crash-safe.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The record for ``key``, or ``None`` on miss/corruption.

        A half-written or hand-edited file must never poison a resumed
        sweep, so any parse failure degrades to a recompute.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as f:
                record = json.load(f)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or not all(
            isinstance(record.get(part), dict)
            for part in ("identity", "data", "timing")
        ):
            return None
        return record

    def put(self, key: str, record: dict) -> Path:
        """Atomically persist ``record`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(canonical_json(record))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def delete(self, key: str) -> bool:
        """Remove the record for ``key``; True when a file was deleted."""
        try:
            self.path_for(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def prune(
        self,
        *,
        schema: int = STORE_SCHEMA,
        code: str | None = None,
        dry_run: bool = False,
    ) -> "PruneReport":
        """Garbage-collect records that no current run could ever reuse.

        A record is *stale* when it is unreadable/corrupt, when its
        ``identity.schema`` differs from ``schema``, or -- with ``code``
        given -- when its ``identity.code`` differs.  Those records can
        never hit again (the mismatching version is part of the cell
        key), so they only accumulate disk; this deletes them.  With
        ``dry_run=True`` nothing is unlinked and the report shows what
        *would* go.
        """
        report = PruneReport(dry_run=dry_run)
        for key in sorted(self.keys()):
            record = self.get(key)
            identity = record.get("identity", {}) if record else {}
            if record is None:
                reason = "unreadable"
            elif identity.get("schema") != schema:
                reason = f"schema {identity.get('schema')!r} != {schema!r}"
            elif code is not None and identity.get("code") != code:
                reason = f"code {identity.get('code')!r} != {code!r}"
            else:
                report.kept += 1
                continue
            report.stale.append((key, reason))
            if not dry_run:
                self.delete(key)
        return report

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        """All stored cell keys (unordered)."""
        for path in self.root.glob("??/*.json"):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
