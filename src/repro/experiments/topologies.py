"""The paper's processor topologies (§7.1) and their labelings.

The five production topologies all have 256 or 512 PEs; recognition plus
labeling costs a few hundred milliseconds each, so labelings are cached
per process.  ``*_small`` variants keep unit and integration tests fast.

Note on convex-cut counts: the paper states the topologies have
30/21/32/24/8 convex cuts respectively.  Grid and hypercube counts match
our Djokovic computation; for the tori the *isometric* dimension is 16
(16x16) and 12 (8x8x8) because antipodal meridian edge classes coincide
(each even cycle ``C_{2k}`` contributes ``k`` classes, not ``2k``).  Our
labels pass the exhaustive Hamming-equals-distance check, so the smaller
dimensions are the correct partial-cube labelings; the paper evidently
counted both meridians of each class.  EXPERIMENTS.md discusses the
(minor) consequences for the runtime-quotient narrative.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.api.registry import REGISTRY, TOPOLOGY
from repro.api.topology import Topology
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.partialcube.djokovic import PartialCubeLabeling

#: The five topologies of the paper's evaluation, in Table 2 order.
PAPER_TOPOLOGIES: tuple[str, ...] = (
    "grid16x16",
    "grid8x8x8",
    "torus16x16",
    "torus8x8x8",
    "hq8",
)

#: Widened scenario set beyond the paper's grid/torus/hypercube matrix:
#: a fat-tree (largest complete binary switch tree under the historical
#: 63-class packed-label limit), a partial-cube dragonfly (8 groups of
#: 32-router hypercubes on a global ring, 256 PEs) and an anisotropic
#: 3-D torus (256 PEs).  See :mod:`repro.graphs.generators.interconnects`.
WIDENED_TOPOLOGIES: tuple[str, ...] = (
    "fattree2x5",
    "dragonfly8x5",
    "torus8x8x4",
)

#: Wide-label scenario set (ISSUE 4): topologies that only exist because
#: the 63-class packed-label cap is gone, plus the large paper torus for
#: contrast.  ``fattree2x7`` is the headline instance -- 255 PEs, 254
#: Djokovic classes, 4-word labels; ``fattree4x3`` (85 PEs, 84 classes)
#: is the cheap 2-word variant; ``dragonfly16x6`` scales the dragonfly
#: to 1024 PEs (narrow dim 14, included for the PE-count axis).
WIDE_TOPOLOGIES: tuple[str, ...] = (
    "fattree2x7",
    "fattree4x3",
    "dragonfly16x6",
    "torus16x16",
)

#: The built-in builders, registered below into the unified registry
#: (kind ``topology``) -- the single lookup the CLI, the pipeline and the
#: experiment runner all resolve topology names through.
_BUILTIN_BUILDERS: dict[str, Callable[[], Graph]] = {
    # paper set
    "grid16x16": lambda: gen.grid(16, 16),
    "grid8x8x8": lambda: gen.grid(8, 8, 8),
    "torus16x16": lambda: gen.torus(16, 16),
    "torus8x8x8": lambda: gen.torus(8, 8, 8),
    "hq8": lambda: gen.hypercube(8),
    # widened interconnect set (ISSUE 2): fat-tree, dragonfly, 3-D torus
    "fattree2x5": lambda: gen.fat_tree(2, 5),
    "fattree4x2": lambda: gen.fat_tree(4, 2),
    "dragonfly8x5": lambda: gen.dragonfly(8, 5),
    "torus8x8x4": lambda: gen.torus(8, 8, 4),
    # wide-label set (ISSUE 4): beyond the lifted 63-class cap
    "fattree2x7": lambda: gen.fat_tree(2, 7),
    "fattree4x3": lambda: gen.fat_tree(4, 3),
    "fattree2x6": lambda: gen.fat_tree(2, 6),
    "dragonfly16x6": lambda: gen.dragonfly(16, 6),
    # small variants for tests, docs and quick examples
    "dragonfly4x2": lambda: gen.dragonfly(4, 2),
    "grid4x4": lambda: gen.grid(4, 4),
    "grid8x8": lambda: gen.grid(8, 8),
    "grid4x4x4": lambda: gen.grid(4, 4, 4),
    "torus4x4": lambda: gen.torus(4, 4),
    "torus8x8": lambda: gen.torus(8, 8),
    "torus4x4x4": lambda: gen.torus(4, 4, 4),
    "hq4": lambda: gen.hypercube(4),
    "hq6": lambda: gen.hypercube(6),
    "path16": lambda: gen.path(16),
    "cbt4": lambda: gen.complete_binary_tree(4),
}

for _name, _builder in _BUILTIN_BUILDERS.items():
    REGISTRY.register(TOPOLOGY, _name, _builder)


def topology_names(paper_only: bool = False) -> tuple[str, ...]:
    """Known topology names (the paper's five, or all registered)."""
    if paper_only:
        return PAPER_TOPOLOGIES
    return REGISTRY.names(TOPOLOGY)


def make_topology(name: str) -> tuple[Graph, PartialCubeLabeling]:
    """Build topology ``name`` and its partial-cube labeling (cached).

    Delegates to the :class:`~repro.api.topology.Topology` session cache
    -- the *only* cache on this path, so harness code using ``(graph,
    labeling)`` tuples and pipeline code using sessions share one
    labeling per process, and ``Topology.clear_sessions()`` invalidates
    both views together.
    """
    session = Topology.from_name(name)
    return session.graph, session.labeling
