"""Graph substrate: a static CSR graph type, algorithms, I/O and generators.

Every graph in the library -- application graphs ``G_a``, processor graphs
``G_p``, communication graphs ``G_c`` and all hierarchy levels inside TIMER
-- is an instance of :class:`repro.graphs.Graph`: an immutable, undirected,
edge-weighted graph in compressed-sparse-row form backed by numpy arrays.
"""

from repro.graphs.graph import Graph
from repro.graphs.builder import GraphBuilder, from_edges, from_networkx, to_networkx
from repro.graphs import algorithms, generators, io

__all__ = [
    "Graph",
    "GraphBuilder",
    "from_edges",
    "from_networkx",
    "to_networkx",
    "algorithms",
    "generators",
    "io",
]
