"""Classic graph algorithms needed by the substrates.

Everything here operates on :class:`repro.graphs.Graph` and is used by
partial-cube recognition (BFS distances, bipartiteness), the partitioner
(connected components, BFS orderings) and the mapping heuristics
(all-pairs distances on the processor graph).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.graph import Graph

UNREACHED = -1


def bfs_distances(g: Graph, source: int) -> np.ndarray:
    """Unweighted shortest-path distances from ``source``.

    Unreached vertices get :data:`UNREACHED` (-1).  Implemented with a
    frontier-array BFS: each level is expanded with vectorized neighbor
    gathering, which keeps the inner loop in numpy for the mesh/torus
    graphs where levels are wide.
    """
    dist = np.full(g.n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    indptr, indices = g.indptr, g.indices
    while frontier.size:
        level += 1
        # Gather all neighbors of the frontier.
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        nbrs = np.empty(total, dtype=np.int64)
        pos = 0
        for v, c in zip(frontier, counts):
            nbrs[pos : pos + c] = indices[indptr[v] : indptr[v] + c]
            pos += c
        fresh = nbrs[dist[nbrs] == UNREACHED]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = level
        frontier = fresh
    return dist


def bfs_order(g: Graph, source: int) -> np.ndarray:
    """Vertices of the connected component of ``source`` in BFS order."""
    seen = np.zeros(g.n, dtype=bool)
    seen[source] = True
    order = [source]
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in g.neighbors(v):
            u = int(u)
            if not seen[u]:
                seen[u] = True
                order.append(u)
                queue.append(u)
    return np.asarray(order, dtype=np.int64)


def all_pairs_distances(g: Graph) -> np.ndarray:
    """Dense ``n x n`` matrix of unweighted shortest-path distances.

    Intended for processor graphs (``n <= ~2048``); the paper needs these
    both for partial-cube labeling and for the Coco objective of arbitrary
    mappings.

    Implemented as a *bit-packed multi-source BFS*: every vertex carries a
    bitset of the sources that have reached it (``ceil(n/64)`` uint64
    words), and one BFS level for **all** sources at once is a single
    gather + ``np.bitwise_or.reduceat`` over the CSR -- ``O(m * n / 64)``
    word operations per level instead of ``n`` separate Python BFS runs.
    Unreached pairs (disconnected graphs) get :data:`UNREACHED`.

    Dispatches through the active kernel backend
    (:mod:`repro.core.backend`): the numpy reference lives on
    :class:`~repro.core.backend.KernelBackend`; the numba tiers run the
    same bitset construction as a compiled kernel sharded by source
    words, thread-parallel under ``numba-parallel``.
    """
    from repro.core.backend import current_backend

    return current_backend().all_pairs_distances(g.indptr, g.indices, g.n)


def connected_components(g: Graph) -> np.ndarray:
    """Component id per vertex (ids are 0..k-1 in first-seen order)."""
    comp = np.full(g.n, -1, dtype=np.int64)
    next_id = 0
    for s in range(g.n):
        if comp[s] >= 0:
            continue
        comp[s] = next_id
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for u in g.neighbors(v):
                u = int(u)
                if comp[u] < 0:
                    comp[u] = next_id
                    queue.append(u)
        next_id += 1
    return comp


def is_connected(g: Graph) -> bool:
    if g.n == 0:
        return True
    return bool((bfs_distances(g, 0) >= 0).all())


def largest_component(g: Graph) -> tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest connected component.

    Returns ``(subgraph, original_ids)``.  Complex-network generators can
    produce disconnected graphs; the experiment pipeline maps only the
    giant component, mirroring the paper's use of e.g. PGPgiantcompo.
    """
    comp = connected_components(g)
    ids, counts = np.unique(comp, return_counts=True)
    big = ids[np.argmax(counts)]
    return g.subgraph(np.nonzero(comp == big)[0])


def bipartition_colors(g: Graph) -> np.ndarray | None:
    """2-coloring of ``g`` if bipartite, else ``None``.

    Bipartiteness is the first (cheap) gate of partial-cube recognition
    (paper section 3, step 1).
    """
    color = np.full(g.n, -1, dtype=np.int8)
    for s in range(g.n):
        if color[s] >= 0:
            continue
        color[s] = 0
        queue = deque([s])
        while queue:
            v = queue.popleft()
            cv = color[v]
            for u in g.neighbors(v):
                u = int(u)
                if color[u] < 0:
                    color[u] = 1 - cv
                    queue.append(u)
                elif color[u] == cv:
                    return None
    return color.astype(np.int64)


def is_bipartite(g: Graph) -> bool:
    return bipartition_colors(g) is not None


def diameter(g: Graph) -> int:
    """Exact diameter via the bit-packed all-pairs BFS (processor graphs)."""
    if g.n == 0:
        return 0
    dist = all_pairs_distances(g)
    if (dist == UNREACHED).any():
        raise ValueError("diameter undefined: graph is disconnected")
    return int(dist.max())


def eccentricity_center(g: Graph) -> int:
    """A vertex of minimum eccentricity (used to seed greedy mapping).

    Computed from one bit-packed all-pairs BFS instead of ``n`` scalar
    BFS runs; ties resolve to the lowest vertex id, matching the
    per-source loop this replaces.
    """
    if g.n == 0:
        return 0
    ecc = all_pairs_distances(g).max(axis=1)
    return int(np.argmin(ecc))


def weighted_degree(g: Graph) -> np.ndarray:
    """Sum of incident edge weights per vertex."""
    out = np.zeros(g.n, dtype=np.float64)
    np.add.at(out, np.repeat(np.arange(g.n), np.diff(g.indptr)), g.weights)
    return out
