"""Construction of :class:`~repro.graphs.Graph` instances.

:class:`GraphBuilder` accumulates undirected edges (merging duplicates by
summing weights, dropping self-loops on request) and finalizes into CSR in
one vectorized pass.  Conversions to/from :mod:`networkx` are provided for
interoperability and for cross-checking our algorithms in tests.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph


class GraphBuilder:
    """Incrementally build an undirected weighted graph.

    >>> b = GraphBuilder(3)
    >>> b.add_edge(0, 1).add_edge(1, 2, 2.5).add_edge(0, 1)  # doctest: +ELLIPSIS
    <...GraphBuilder...>
    >>> g = b.build()
    >>> g.m, g.edge_weight(0, 1)
    (2, 2.0)
    """

    def __init__(self, n: int, name: str = "") -> None:
        if n < 0:
            raise GraphFormatError(f"vertex count must be non-negative, got {n}")
        self.n = n
        self.name = name
        self._us: list[int] = []
        self._vs: list[int] = []
        self._ws: list[float] = []
        self._vertex_weights: np.ndarray | None = None

    def add_edge(self, u: int, v: int, w: float = 1.0) -> "GraphBuilder":
        """Add edge ``{u, v}``; duplicate edges have their weights summed."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise GraphFormatError(f"edge ({u}, {v}) out of range for n={self.n}")
        if u == v:
            raise GraphFormatError(f"self-loop at vertex {u} not allowed")
        if w < 0:
            raise GraphFormatError(f"negative edge weight {w}")
        self._us.append(u)
        self._vs.append(v)
        self._ws.append(float(w))
        return self

    def add_edges(self, edges: Iterable[tuple]) -> "GraphBuilder":
        """Add ``(u, v)`` or ``(u, v, w)`` tuples."""
        for e in edges:
            if len(e) == 2:
                self.add_edge(e[0], e[1])
            else:
                self.add_edge(e[0], e[1], e[2])
        return self

    def set_vertex_weights(self, vw) -> "GraphBuilder":
        vw = np.asarray(vw, dtype=np.float64)
        if vw.shape != (self.n,):
            raise GraphFormatError(f"vertex weights must have shape ({self.n},)")
        self._vertex_weights = vw
        return self

    def build(self) -> Graph:
        """Finalize into an immutable CSR :class:`Graph`."""
        us = np.asarray(self._us, dtype=np.int64)
        vs = np.asarray(self._vs, dtype=np.int64)
        ws = np.asarray(self._ws, dtype=np.float64)
        return _csr_from_coo(self.n, us, vs, ws, self._vertex_weights, self.name)


def _csr_from_coo(
    n: int,
    us: np.ndarray,
    vs: np.ndarray,
    ws: np.ndarray,
    vertex_weights: np.ndarray | None,
    name: str,
) -> Graph:
    """Symmetrize, deduplicate and pack a COO edge list into CSR."""
    if us.size == 0:
        return Graph(
            np.zeros(n + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            vertex_weights,
            name=name,
        )
    # Canonical key per undirected edge, merge duplicates by summing.
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    keys = lo * n + hi
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    ws_sorted = ws[order]
    uniq_keys, starts = np.unique(keys_sorted, return_index=True)
    merged_w = np.add.reduceat(ws_sorted, starts)
    mu = uniq_keys // n
    mv = uniq_keys % n
    # Expand both directions, then bucket by source.
    src = np.concatenate([mu, mv])
    dst = np.concatenate([mv, mu])
    wgt = np.concatenate([merged_w, merged_w])
    order2 = np.argsort(src * n + dst, kind="stable")
    src, dst, wgt = src[order2], dst[order2], wgt[order2]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Graph(indptr, dst, wgt, vertex_weights, name=name)


def from_edges(
    n: int,
    edges: Iterable[tuple],
    vertex_weights=None,
    name: str = "",
) -> Graph:
    """Build a graph directly from an edge iterable."""
    b = GraphBuilder(n, name=name)
    b.add_edges(edges)
    if vertex_weights is not None:
        b.set_vertex_weights(vertex_weights)
    return b.build()


def from_arrays(
    n: int,
    us: np.ndarray,
    vs: np.ndarray,
    ws: np.ndarray | None = None,
    vertex_weights=None,
    name: str = "",
) -> Graph:
    """Vectorized construction from parallel COO arrays (one direction)."""
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if ws is None:
        ws = np.ones(us.shape[0], dtype=np.float64)
    ws = np.asarray(ws, dtype=np.float64)
    if us.shape != vs.shape or us.shape != ws.shape:
        raise GraphFormatError("edge arrays must have equal length")
    if us.size:
        if us.min() < 0 or vs.min() < 0 or us.max() >= n or vs.max() >= n:
            raise GraphFormatError("edge endpoint out of range")
        loops = us == vs
        if loops.any():
            us, vs, ws = us[~loops], vs[~loops], ws[~loops]
    vw = None if vertex_weights is None else np.asarray(vertex_weights, np.float64)
    return _csr_from_coo(n, us, vs, ws, vw, name)


def from_networkx(nx_graph, weight: str = "weight", name: str = "") -> Graph:
    """Convert an undirected networkx graph (nodes relabeled to 0..n-1)."""
    import networkx as nx

    if nx_graph.is_directed():
        raise GraphFormatError("directed graphs are not supported")
    nodes = list(nx_graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    b = GraphBuilder(len(nodes), name=name or str(nx_graph.name or ""))
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        b.add_edge(index[u], index[v], float(data.get(weight, 1.0)))
    return b.build()


def to_networkx(g: Graph):
    """Convert to a networkx graph (for cross-checks and visual debugging)."""
    import networkx as nx

    out = nx.Graph(name=g.name)
    out.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        out.add_edge(u, v, weight=w)
    return out
