"""Graph generators.

Two families:

- **Processor topologies** (deterministic partial cubes): :func:`grid`,
  :func:`torus`, :func:`hypercube`, :func:`random_tree`, :func:`path`,
  :func:`star`, :func:`complete_binary_tree`, :func:`fat_tree`,
  :func:`dragonfly`.
- **Application workloads** (randomized complex-network models standing in
  for the paper's SNAP/DIMACS instances): :func:`erdos_renyi`,
  :func:`barabasi_albert`, :func:`watts_strogatz`, :func:`powerlaw_cluster`,
  :func:`rmat`, :func:`configuration_model`.
"""

from repro.graphs.generators.meshes import grid, torus, cycle, path
from repro.graphs.generators.hypercube import hypercube
from repro.graphs.generators.trees import (
    random_tree,
    complete_binary_tree,
    star,
    caterpillar,
)
from repro.graphs.generators.interconnects import fat_tree, dragonfly
from repro.graphs.generators.random_graphs import (
    erdos_renyi,
    barabasi_albert,
    watts_strogatz,
    powerlaw_cluster,
    configuration_model,
)
from repro.graphs.generators.rmat import rmat

__all__ = [
    "grid",
    "torus",
    "cycle",
    "path",
    "hypercube",
    "random_tree",
    "complete_binary_tree",
    "star",
    "caterpillar",
    "fat_tree",
    "dragonfly",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_cluster",
    "configuration_model",
    "rmat",
]
