"""Convenience access to the Table-1 synthetic network suite.

Thin re-export so library users can write
``from repro.graphs.generators.complex_networks import generate, names``
without importing the experiment harness explicitly.  The definitions
live in :mod:`repro.experiments.instances` (kept there because the suite
is experiment metadata first).
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike


def names() -> tuple[str, ...]:
    """The 15 instance names of the paper's Table 1."""
    from repro.experiments.instances import instance_names

    return instance_names()


def generate(name: str, seed: SeedLike = None, divisor: int = 64, **kwargs) -> Graph:
    """Generate the synthetic stand-in for Table-1 row ``name``.

    See :func:`repro.experiments.instances.generate_instance` for the
    scaling parameters.
    """
    from repro.experiments.instances import generate_instance

    return generate_instance(name, seed=seed, divisor=divisor, **kwargs)
