"""Hypercube generator (paper Definition 2.1).

The ``d``-dimensional hypercube has vertex set ``{0,1}^d`` and connects
vertices at Hamming distance one; it is trivially a partial cube of
dimension ``d`` with the identity labeling.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import from_arrays
from repro.graphs.graph import Graph


def hypercube(dim: int, name: str | None = None) -> Graph:
    """The ``dim``-dimensional hypercube ``H`` on ``2**dim`` vertices.

    Vertex ids are the label bitvectors read as integers, so
    ``repro.partialcube`` recognition must recover a labeling equivalent
    to ``id`` up to bit permutation/complement.
    """
    if dim < 0:
        raise ValueError(f"hypercube dimension must be >= 0, got {dim}")
    if dim > 20:
        raise ValueError(f"hypercube dimension {dim} unreasonably large")
    n = 1 << dim
    ids = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for b in range(dim):
        us.append(ids)
        vs.append(ids ^ (1 << b))
    if dim == 0:
        return from_arrays(1, np.empty(0, np.int64), np.empty(0, np.int64), name=name or "hq0")
    return from_arrays(
        n, np.concatenate(us), np.concatenate(vs), name=name or f"hq{dim}"
    )
