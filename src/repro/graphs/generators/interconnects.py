"""Hierarchical interconnect topologies beyond the paper's grid/torus set.

TIMER only needs the processor graph to be a partial cube (its hierarchy
comes from a Hamming labeling), so the widened experiment scenarios use
partial-cube abstractions of two staple HPC interconnects:

- :func:`fat_tree` -- the complete ``arity``-ary switch tree underlying a
  fat-tree.  Every tree is a partial cube; its isometric dimension is
  ``n - 1`` (one Djokovic class per edge).  With the wide multi-word
  label representation there is no size cap anymore -- a 255-switch
  ``fat_tree(2, 7)`` labels into 4-word bitvectors just like a 63-switch
  tree labels into one ``int64``.  Link "fatness" (capacity growing
  toward the root) is not modeled -- TIMER's objective only sees hop
  distances.
- :func:`dragonfly` -- groups of tightly coupled routers joined by a
  global ring: the Cartesian product ``C_g x Q_d`` of an even cycle over
  the groups with a ``d``-dimensional hypercube inside each group.  A
  Cartesian product of partial cubes is a partial cube, so the labeling
  machinery applies directly with dimension ``g / 2 + d`` -- unlike the
  textbook dragonfly, whose intra-group cliques contain triangles and are
  therefore not even bipartite.  The hypercube keeps the dragonfly's
  signature low intra-group diameter while staying labelable.

Both constructions are verified against ``partialcube.verify`` in the
test suite.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import from_arrays
from repro.graphs.graph import Graph


def fat_tree(
    arity: int,
    height: int,
    name: str | None = None,
    check_labelable: bool = True,
) -> Graph:
    """Complete ``arity``-ary tree of the given height (root at id 0).

    ``height`` counts edge levels: ``height == 0`` is the bare root,
    ``fat_tree(2, h)`` equals ``complete_binary_tree(h)``.  Vertices are
    numbered level by level, so node ``v``'s children are
    ``arity * v + 1 .. arity * v + arity``.

    A tree's isometric dimension equals its edge count; dimensions beyond
    63 now label into the wide multi-word representation, so fat-trees of
    any size build and label.  ``check_labelable`` is kept for backward
    compatibility with the era of the 64-PE packed-label cap and is
    ignored -- every fat-tree is labelable.
    """
    del check_labelable  # historical cap escape hatch; the cap is gone
    if arity < 2:
        raise ValueError(f"fat-tree arity must be >= 2, got {arity}")
    if height < 0:
        raise ValueError(f"fat-tree height must be >= 0, got {height}")
    n = (arity ** (height + 1) - 1) // (arity - 1)
    kids = np.arange(1, n, dtype=np.int64)
    parents = (kids - 1) // arity
    return from_arrays(n, parents, kids, name=name or f"fattree{arity}x{height}")


def dragonfly(n_groups: int, group_dim: int, name: str | None = None) -> Graph:
    """Partial-cube dragonfly: an even ring of hypercube groups.

    ``n_groups`` groups (even, so the global ring is an even cycle and the
    product stays a partial cube) of ``2 ** group_dim`` routers each.
    Router ``r`` of group ``g`` has id ``g * 2**group_dim + r``; it links
    to its intra-group hypercube neighbors and to router ``r`` of the two
    neighboring groups (``n_groups == 2`` degenerates to a single
    inter-group link per router, avoiding parallel edges).
    """
    if n_groups < 2 or n_groups % 2:
        raise ValueError(f"n_groups must be even and >= 2, got {n_groups}")
    if group_dim < 0:
        raise ValueError(f"group_dim must be >= 0, got {group_dim}")
    gsize = 1 << group_dim
    n = n_groups * gsize
    ids = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for b in range(group_dim):  # intra-group hypercube links
        us.append(ids)
        vs.append(ids ^ (1 << b))
    wrap = ids if n_groups > 2 else ids[ids < gsize]
    us.append(wrap)  # global ring: same router id, next group
    vs.append((wrap + gsize) % n if n_groups > 2 else wrap + gsize)
    label = name or f"dragonfly{n_groups}x{group_dim}"
    return from_arrays(n, np.concatenate(us), np.concatenate(vs), name=label)
