"""Rectangular meshes (grids) and tori of arbitrary dimension.

These are the paper's main processor topologies.  All rectangular grids
are partial cubes; a torus is a partial cube iff every extension is even
(paper section 1), which :func:`torus` checks only lazily -- generation
always succeeds, recognition in :mod:`repro.partialcube` decides cube-ness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs.builder import from_arrays
from repro.graphs.graph import Graph


def _lattice_edges(dims: Sequence[int], wrap: bool) -> tuple[np.ndarray, np.ndarray]:
    """COO edges of a ``prod(dims)``-vertex lattice, optionally wrapped."""
    dims = tuple(int(d) for d in dims)
    if any(d < 1 for d in dims):
        raise ValueError(f"all dimensions must be >= 1, got {dims}")
    n = int(np.prod(dims))
    coords = np.indices(dims).reshape(len(dims), n)  # axis-major coordinates
    strides = np.ones(len(dims), dtype=np.int64)
    for axis in range(len(dims) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * dims[axis + 1]
    ids = (coords * strides[:, None]).sum(axis=0)
    us_all, vs_all = [], []
    for axis, extent in enumerate(dims):
        if extent == 1:
            continue
        c = coords[axis]
        if wrap and extent > 2:
            keep = np.ones(n, dtype=bool)  # every vertex has a +1 neighbor mod extent
        else:
            keep = c < extent - 1
        shifted = coords.copy()
        shifted[axis] = (c + 1) % extent
        nbr_ids = (shifted * strides[:, None]).sum(axis=0)
        us_all.append(ids[keep])
        vs_all.append(nbr_ids[keep])
    if not us_all:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    return np.concatenate(us_all), np.concatenate(vs_all)


def grid(*dims: int, name: str | None = None) -> Graph:
    """Rectangular mesh with the given extents, e.g. ``grid(16, 16)``.

    Vertex ``(x_0, .., x_{d-1})`` has id ``sum(x_i * stride_i)`` with
    row-major strides; adjacent iff coordinates differ by one in exactly
    one axis.  Every grid is a partial cube of dimension
    ``sum(dims_i - 1)``.
    """
    us, vs = _lattice_edges(dims, wrap=False)
    n = int(np.prod(dims))
    label = name or ("grid" + "x".join(str(d) for d in dims))
    return from_arrays(n, us, vs, name=label)


def torus(*dims: int, name: str | None = None) -> Graph:
    """Torus with the given extents, e.g. ``torus(8, 8, 8)``.

    Wrap-around neighbors in every axis with extent > 2 (extent-2 axes
    would create parallel edges, so they fall back to a single edge).
    A torus is a partial cube iff all extents are even.
    """
    us, vs = _lattice_edges(dims, wrap=True)
    n = int(np.prod(dims))
    label = name or ("torus" + "x".join(str(d) for d in dims))
    return from_arrays(n, us, vs, name=label)


def cycle(n: int, name: str | None = None) -> Graph:
    """Cycle on ``n`` vertices (partial cube iff ``n`` is even)."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    us = np.arange(n, dtype=np.int64)
    vs = (us + 1) % n
    return from_arrays(n, us, vs, name=name or f"cycle{n}")


def path(n: int, name: str | None = None) -> Graph:
    """Path on ``n`` vertices (a 1-D grid; always a partial cube)."""
    if n < 1:
        raise ValueError(f"path needs n >= 1, got {n}")
    us = np.arange(n - 1, dtype=np.int64)
    return from_arrays(n, us, us + 1, name=name or f"path{n}")
