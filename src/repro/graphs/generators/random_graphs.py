"""Random graph models for synthetic application workloads.

These stand in for the paper's complex networks (Table 1).  The models are
implemented from scratch (no networkx dependency in the hot path) and are
chosen to cover the structural regimes of the paper's suite:

- :func:`erdos_renyi` -- homogeneous baseline,
- :func:`barabasi_albert` -- preferential attachment, heavy-tailed degrees
  (citation / hyperlink networks),
- :func:`watts_strogatz` -- high clustering + short paths (social),
- :func:`powerlaw_cluster` -- Holme-Kim: BA plus triad closure (friendship
  networks with clustering),
- :func:`configuration_model` -- arbitrary degree sequences (router-level
  internet graphs with extreme skew).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import from_arrays
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, make_rng


def erdos_renyi(n: int, p: float, seed: SeedLike = None, name: str | None = None) -> Graph:
    """G(n, p) via geometric edge skipping (O(n + m) expected time)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    us, vs = [], []
    if p > 0 and n > 1:
        # Iterate over the upper triangle with geometric jumps.
        if p >= 1.0:
            iu = np.triu_indices(n, k=1)
            return from_arrays(n, iu[0], iu[1], name=name or f"er{n}")
        lp = np.log1p(-p)
        v, w = 1, -1
        while v < n:
            w += 1 + int(np.log(1.0 - rng.random()) / lp)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                us.append(v)
                vs.append(w)
    return from_arrays(
        n, np.asarray(us, np.int64), np.asarray(vs, np.int64), name=name or f"er{n}"
    )


def barabasi_albert(
    n: int, m: int, seed: SeedLike = None, name: str | None = None
) -> Graph:
    """Preferential attachment: each new vertex attaches to ``m`` targets.

    Uses the standard repeated-endpoint trick: sampling uniformly from the
    flat list of all edge endpoints is sampling proportionally to degree.
    """
    if m < 1 or n < m + 1:
        raise ValueError(f"need 1 <= m < n, got n={n}, m={m}")
    rng = make_rng(seed)
    # Seed graph: star on m+1 vertices guarantees every early vertex has
    # positive degree without biasing the tail.
    endpoints: list[int] = []
    us, vs = [], []
    for v in range(1, m + 1):
        us.append(0)
        vs.append(v)
        endpoints.extend((0, v))
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = endpoints[rng.integers(0, len(endpoints))]
            targets.add(int(pick))
        for t in targets:
            us.append(v)
            vs.append(t)
            endpoints.extend((v, t))
    return from_arrays(
        n, np.asarray(us, np.int64), np.asarray(vs, np.int64), name=name or f"ba{n}"
    )


def watts_strogatz(
    n: int, k: int, beta: float, seed: SeedLike = None, name: str | None = None
) -> Graph:
    """Watts-Strogatz small world: ring lattice with rewiring prob ``beta``."""
    if k < 2 or k % 2 != 0 or k >= n:
        raise ValueError(f"need even 2 <= k < n, got n={n}, k={k}")
    if not (0.0 <= beta <= 1.0):
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    rng = make_rng(seed)
    existing: set[tuple[int, int]] = set()
    for u in range(n):
        for off in range(1, k // 2 + 1):
            v = (u + off) % n
            existing.add((min(u, v), max(u, v)))
    edges = sorted(existing)
    out: set[tuple[int, int]] = set(edges)
    for (u, v) in edges:
        if rng.random() < beta:
            out.discard((u, v))
            # Rewire u's far end to a uniform non-neighbor.
            for _ in range(4 * n):
                w = int(rng.integers(0, n))
                key = (min(u, w), max(u, w))
                if w != u and key not in out:
                    out.add(key)
                    break
            else:  # extremely dense corner case: keep the original edge
                out.add((u, v))
    us = np.asarray([e[0] for e in sorted(out)], np.int64)
    vs = np.asarray([e[1] for e in sorted(out)], np.int64)
    return from_arrays(n, us, vs, name=name or f"ws{n}")


def powerlaw_cluster(
    n: int, m: int, p_triad: float, seed: SeedLike = None, name: str | None = None
) -> Graph:
    """Holme-Kim model: preferential attachment with triad formation.

    With probability ``p_triad`` each of the ``m`` attachments closes a
    triangle with a random neighbor of the previous target, producing the
    clustering typical of social and collaboration networks.
    """
    if m < 1 or n < m + 1:
        raise ValueError(f"need 1 <= m < n, got n={n}, m={m}")
    if not (0.0 <= p_triad <= 1.0):
        raise ValueError(f"p_triad must be in [0, 1], got {p_triad}")
    rng = make_rng(seed)
    endpoints: list[int] = []
    adj: list[set[int]] = [set() for _ in range(n)]
    us, vs = [], []

    def _connect(a: int, b: int) -> bool:
        if a == b or b in adj[a]:
            return False
        adj[a].add(b)
        adj[b].add(a)
        us.append(a)
        vs.append(b)
        endpoints.extend((a, b))
        return True

    for v in range(1, m + 1):
        _connect(0, v)
    for v in range(m + 1, n):
        prev_target = -1
        added = 0
        guard = 0
        while added < m and guard < 100 * m:
            guard += 1
            if (
                prev_target >= 0
                and adj[prev_target]
                and rng.random() < p_triad
            ):
                cand_pool = list(adj[prev_target])
                cand = int(cand_pool[rng.integers(0, len(cand_pool))])
            else:
                cand = int(endpoints[rng.integers(0, len(endpoints))])
            if _connect(v, cand):
                prev_target = cand
                added += 1
    return from_arrays(
        n, np.asarray(us, np.int64), np.asarray(vs, np.int64), name=name or f"plc{n}"
    )


def configuration_model(
    degrees, seed: SeedLike = None, name: str | None = None
) -> Graph:
    """Simple-graph configuration model by stub matching.

    Self-loops and parallel edges produced by the matching are discarded
    (the "erased" configuration model), which slightly truncates the top
    of the degree distribution -- acceptable for workload synthesis.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size and degrees.min() < 0:
        raise ValueError("degrees must be non-negative")
    if int(degrees.sum()) % 2 != 0:
        raise ValueError("degree sum must be even")
    rng = make_rng(seed)
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    us = stubs[0::2]
    vs = stubs[1::2]
    keep = us != vs
    return from_arrays(degrees.size, us[keep], vs[keep], name=name or "config")


def powerlaw_degree_sequence(
    n: int, gamma: float, min_degree: int, max_degree: int | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample a power-law degree sequence with even sum.

    ``P(d) ~ d^-gamma`` on ``[min_degree, max_degree]``; the last entry is
    adjusted by one when needed to make the sum even.
    """
    if n < 1 or min_degree < 1 or gamma <= 1.0:
        raise ValueError("need n >= 1, min_degree >= 1, gamma > 1")
    rng = make_rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n) * 2))
    support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    probs = support**-gamma
    probs /= probs.sum()
    seq = rng.choice(support.astype(np.int64), size=n, p=probs)
    if int(seq.sum()) % 2 != 0:
        seq[-1] += 1
    return seq
