"""R-MAT / Kronecker random graphs.

R-MAT (Chakrabarti et al.) recursively drops each edge into one of four
quadrants of the adjacency matrix with probabilities ``(a, b, c, d)``;
skewed probabilities generate the scale-free, community-rich structure of
web and social graphs.  It stands in for the paper's largest instances
(web-Google, as-skitter, wiki-Talk) at laptop scale.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import from_arrays
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, make_rng


def rmat(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    name: str | None = None,
) -> Graph:
    """R-MAT graph on ``2**scale`` vertices and ``~edge_factor * n`` edges.

    ``d`` is implied as ``1 - a - b - c``.  Duplicate edges collapse (their
    multiplicity becomes the edge weight in many uses, but here the builder
    sums unit weights, so heavily-duplicated pairs end up heavier -- a
    feature: it models hot communication pairs).
    """
    if scale < 1 or scale > 24:
        raise ValueError(f"scale must be in [1, 24], got {scale}")
    if edge_factor < 1:
        raise ValueError(f"edge_factor must be >= 1, got {edge_factor}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError(f"quadrant probabilities must be non-negative, got d={d:.3f}")
    rng = make_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    us = np.zeros(m, dtype=np.int64)
    vs = np.zeros(m, dtype=np.int64)
    # One vectorized pass per bit level: pick the quadrant of all m edges.
    for _level in range(scale):
        r = rng.random(m)
        right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        down = r >= a + b
        us = (us << 1) | down.astype(np.int64)
        vs = (vs << 1) | right.astype(np.int64)
    keep = us != vs
    return from_arrays(n, us[keep], vs[keep], name=name or f"rmat{scale}")
