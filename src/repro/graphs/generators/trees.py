"""Tree generators.

All trees are partial cubes (every edge is its own Djokovic class), which
makes them useful both as processor topologies (fat-tree-like abstractions)
and as adversarial tests for the labeling code: a tree on ``n`` vertices
has partial-cube dimension ``n - 1``, the maximum possible.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.builder import from_arrays
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, make_rng


def _prufer_to_edges(prufer: np.ndarray, n: int) -> list[tuple[int, int]]:
    """Decode a Pruefer sequence into the edge list of its tree."""
    degree = np.ones(n, dtype=np.int64)
    np.add.at(degree, prufer, 1)
    leaves = [int(v) for v in np.nonzero(degree == 1)[0]]
    heapq.heapify(leaves)
    edges = []
    for v in prufer:
        v = int(v)
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    edges.append((u, w))
    return edges


def random_tree(n: int, seed: SeedLike = None, name: str | None = None) -> Graph:
    """Uniformly random labeled tree via a random Pruefer sequence."""
    if n < 1:
        raise ValueError(f"tree needs n >= 1, got {n}")
    if n == 1:
        return from_arrays(1, np.empty(0, np.int64), np.empty(0, np.int64), name=name or "tree1")
    if n == 2:
        return from_arrays(2, np.asarray([0]), np.asarray([1]), name=name or "tree2")
    rng = make_rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    edges = _prufer_to_edges(prufer, n)
    us = np.asarray([e[0] for e in edges], dtype=np.int64)
    vs = np.asarray([e[1] for e in edges], dtype=np.int64)
    return from_arrays(n, us, vs, name=name or f"tree{n}")


def complete_binary_tree(height: int, name: str | None = None) -> Graph:
    """Complete binary tree of the given height (root at id 0)."""
    if height < 0:
        raise ValueError(f"height must be >= 0, got {height}")
    n = (1 << (height + 1)) - 1
    kids = np.arange(1, n, dtype=np.int64)
    parents = (kids - 1) // 2
    return from_arrays(n, parents, kids, name=name or f"cbt{height}")


def star(n_leaves: int, name: str | None = None) -> Graph:
    """Star with ``n_leaves`` leaves around center 0."""
    if n_leaves < 0:
        raise ValueError(f"n_leaves must be >= 0, got {n_leaves}")
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    return from_arrays(
        n_leaves + 1, np.zeros(n_leaves, np.int64), leaves, name=name or f"star{n_leaves}"
    )


def caterpillar(spine: int, legs_per_vertex: int, name: str | None = None) -> Graph:
    """Caterpillar tree: a path with ``legs_per_vertex`` leaves per vertex."""
    if spine < 1 or legs_per_vertex < 0:
        raise ValueError("need spine >= 1 and legs_per_vertex >= 0")
    n = spine * (1 + legs_per_vertex)
    us = list(range(spine - 1))
    vs = list(range(1, spine))
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            us.append(s)
            vs.append(nxt)
            nxt += 1
    return from_arrays(
        n, np.asarray(us, np.int64), np.asarray(vs, np.int64),
        name=name or f"caterpillar{spine}x{legs_per_vertex}",
    )
