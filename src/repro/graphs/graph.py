"""The static CSR graph type used throughout the library.

Design notes
------------
The paper's algorithms are all neighborhood sweeps: Djokovic classes need
BFS layers, the partitioner needs gain updates over adjacency lists, TIMER's
swap passes need ``O(deg(u) + deg(v))`` gain evaluations.  A compressed
sparse row (CSR) layout serves all of them with contiguous memory access
(see the cache-effects guidance in the scientific-python optimization
notes): ``indptr`` of length ``n+1``, and ``indices``/``weights`` of length
``2m`` storing each undirected edge in both directions.

Instances are immutable; construction goes through
:class:`repro.graphs.builder.GraphBuilder` or the generator functions.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import GraphFormatError


class Graph:
    """Undirected, edge-weighted graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbors of vertex ``v`` are
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int64`` array of neighbor ids (both directions of every edge).
    weights:
        ``float64`` array aligned with ``indices``; ``weights`` of the two
        directions of an edge must agree.
    vertex_weights:
        optional ``float64`` array of length ``n`` (defaults to all ones);
        used by the partitioner's balance constraint.
    name:
        optional human-readable name carried through experiments.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "vertex_weights",
        "name",
        "_edge_arrays_cache",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        vertex_weights: np.ndarray | None = None,
        name: str = "",
        _validate: bool = True,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        n = self.indptr.shape[0] - 1
        if vertex_weights is None:
            vertex_weights = np.ones(n, dtype=np.float64)
        self.vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        self.name = name
        self._edge_arrays_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        if _validate:
            self._validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.indptr.shape[0] - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        """Array of vertex degrees."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of ``v`` (a CSR view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def incident_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def total_edge_weight(self) -> float:
        """Sum of undirected edge weights."""
        return float(self.weights.sum()) / 2.0

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate undirected edges ``(u, v, w)`` with ``u < v``."""
        for u in range(self.n):
            start, stop = self.indptr[u], self.indptr[u + 1]
            for idx in range(start, stop):
                v = int(self.indices[idx])
                if u < v:
                    yield u, v, float(self.weights[idx])

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized undirected edge list ``(us, vs, ws)`` with ``us < vs``.

        This is the workhorse accessor for objective evaluation: TIMER's
        ``Coco+`` is a single vectorized expression over these arrays.
        Graphs are immutable, so the arrays are computed once and cached;
        callers get the *same* arrays on every call and must not mutate
        them (every ``coco_*`` evaluation used to rebuild them from
        scratch, which dominated short enhancer runs).
        """
        if self._edge_arrays_cache is None:
            us = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
            mask = us < self.indices
            self._edge_arrays_cache = (us[mask], self.indices[mask], self.weights[mask])
        return self._edge_arrays_cache

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.isin(v, self.neighbors(u)).item()) if 0 <= u < self.n else False

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        nbrs = self.neighbors(u)
        hits = np.nonzero(nbrs == v)[0]
        if hits.size == 0:
            raise KeyError(f"no edge {{{u}, {v}}}")
        return float(self.incident_weights(u)[hits[0]])

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} n={self.n} m={self.m}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.weights, other.weights)
            and np.array_equal(self.vertex_weights, other.vertex_weights)
        )

    def __hash__(self) -> int:  # graphs are immutable value objects
        return hash((self.n, self.m, self.indices.tobytes(), self.weights.tobytes()))

    def copy(self, name: str | None = None) -> "Graph":
        return Graph(
            self.indptr.copy(),
            self.indices.copy(),
            self.weights.copy(),
            self.vertex_weights.copy(),
            name=self.name if name is None else name,
            _validate=False,
        )

    def with_unit_weights(self) -> "Graph":
        """Same structure, all edge weights reset to 1."""
        return Graph(
            self.indptr,
            self.indices,
            np.ones_like(self.weights),
            self.vertex_weights,
            name=self.name,
            _validate=False,
        )

    def subgraph(self, vertices: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph and the array mapping new vertex ids back to
        the original ids (``vertices`` itself, as int64).  Used by the
        recursive-bisection partitioner.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        inv = np.full(self.n, -1, dtype=np.int64)
        inv[vertices] = np.arange(vertices.shape[0], dtype=np.int64)
        sub_indptr = [0]
        sub_indices: list[np.ndarray] = []
        sub_weights: list[np.ndarray] = []
        for v in vertices:
            nbrs = self.neighbors(int(v))
            wts = self.incident_weights(int(v))
            keep = inv[nbrs] >= 0
            sub_indices.append(inv[nbrs[keep]])
            sub_weights.append(wts[keep])
            sub_indptr.append(sub_indptr[-1] + int(keep.sum()))
        indices = np.concatenate(sub_indices) if sub_indices else np.empty(0, np.int64)
        weights = np.concatenate(sub_weights) if sub_weights else np.empty(0, np.float64)
        sub = Graph(
            np.asarray(sub_indptr, dtype=np.int64),
            indices,
            weights,
            self.vertex_weights[vertices],
            name=f"{self.name}|sub" if self.name else "",
            _validate=False,
        )
        return sub, vertices

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.shape[0] < 1:
            raise GraphFormatError("indptr must be a 1-D array of length >= 1")
        if self.indptr[0] != 0:
            raise GraphFormatError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.shape[0]:
            raise GraphFormatError(
                f"indptr[-1]={int(self.indptr[-1])} does not match "
                f"len(indices)={self.indices.shape[0]}"
            )
        if self.indices.shape != self.weights.shape:
            raise GraphFormatError("indices and weights must align")
        n = self.n
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphFormatError("neighbor index out of range")
        if self.vertex_weights.shape[0] != n:
            raise GraphFormatError("vertex_weights must have length n")
        if self.indices.size and np.any(self.weights < 0):
            raise GraphFormatError("edge weights must be non-negative")
        # Undirectedness: each direction must appear with equal weight.
        us = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        if us.size:
            fwd = us * n + self.indices
            bwd = self.indices * n + us
            order_f = np.argsort(fwd, kind="stable")
            order_b = np.argsort(bwd, kind="stable")
            if not np.array_equal(fwd[order_f], bwd[order_b]) or not np.allclose(
                self.weights[order_f], self.weights[order_b]
            ):
                raise GraphFormatError("graph is not symmetric (undirected)")
            if np.any(us == self.indices):
                raise GraphFormatError("self-loops are not allowed")
