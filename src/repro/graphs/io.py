"""Graph file I/O.

Two formats:

- **METIS / Chaco** (`.graph`): the format KaHIP and the paper's instances
  use.  1-indexed adjacency lists, header ``n m [fmt]`` where ``fmt`` is
  ``1`` for edge weights, ``10`` for vertex weights, ``11`` for both.
- **Edge list** (`.edges`): whitespace-separated ``u v [w]`` lines,
  0-indexed, ``#`` comments -- the SNAP distribution format of the paper's
  complex networks.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.builder import from_arrays
from repro.graphs.graph import Graph

PathLike = str | Path


def _open_read(path_or_file: PathLike | TextIO):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, encoding="utf-8"), True
    return path_or_file, False


def _open_write(path_or_file: PathLike | TextIO):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, "w", encoding="utf-8"), True
    return path_or_file, False


# ---------------------------------------------------------------------------
# METIS format
# ---------------------------------------------------------------------------
def write_metis(g: Graph, path_or_file: PathLike | TextIO) -> None:
    """Write ``g`` in METIS format, emitting weights only when non-unit."""
    has_ew = not np.allclose(g.weights, 1.0)
    has_vw = not np.allclose(g.vertex_weights, 1.0)
    fmt = f"{int(has_vw)}{int(has_ew)}"
    f, should_close = _open_write(path_or_file)
    try:
        header = f"{g.n} {g.m}"
        if fmt != "00":
            header += f" {fmt}"
        f.write(header + "\n")
        for v in range(g.n):
            parts: list[str] = []
            if has_vw:
                parts.append(_fmt_weight(g.vertex_weights[v]))
            nbrs = g.neighbors(v)
            wts = g.incident_weights(v)
            for u, w in zip(nbrs, wts):
                parts.append(str(int(u) + 1))
                if has_ew:
                    parts.append(_fmt_weight(w))
            f.write(" ".join(parts) + "\n")
    finally:
        if should_close:
            f.close()


def _fmt_weight(w: float) -> str:
    return str(int(w)) if float(w).is_integer() else repr(float(w))


def read_metis(path_or_file: PathLike | TextIO, name: str = "") -> Graph:
    """Read a METIS-format graph."""
    f, should_close = _open_read(path_or_file)
    try:
        lines = [ln for ln in (raw.split("%")[0].strip() for raw in f) if ln]
    finally:
        if should_close:
            f.close()
    if not lines:
        raise GraphFormatError("empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"bad METIS header: {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    fmt = fmt.zfill(2)
    has_vw, has_ew = fmt[-2] == "1", fmt[-1] == "1"
    if len(lines) - 1 != n:
        raise GraphFormatError(f"expected {n} vertex lines, found {len(lines) - 1}")
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    vweights = np.ones(n, dtype=np.float64)
    for v, line in enumerate(lines[1:]):
        tokens = line.split()
        pos = 0
        if has_vw:
            if not tokens:
                raise GraphFormatError(f"vertex {v}: missing vertex weight")
            vweights[v] = float(tokens[0])
            pos = 1
        while pos < len(tokens):
            u = int(tokens[pos]) - 1
            pos += 1
            w = 1.0
            if has_ew:
                if pos >= len(tokens):
                    raise GraphFormatError(f"vertex {v}: dangling edge weight")
                w = float(tokens[pos])
                pos += 1
            if not (0 <= u < n):
                raise GraphFormatError(f"vertex {v}: neighbor {u + 1} out of range")
            if u > v:  # each edge appears twice; keep one direction
                us.append(v)
                vs.append(u)
                ws.append(w)
    g = from_arrays(
        n,
        np.asarray(us, np.int64),
        np.asarray(vs, np.int64),
        np.asarray(ws, np.float64),
        vertex_weights=vweights,
        name=name,
    )
    if g.m != m:
        raise GraphFormatError(f"header claims {m} edges, parsed {g.m}")
    return g


# ---------------------------------------------------------------------------
# Edge-list format
# ---------------------------------------------------------------------------
def write_edgelist(g: Graph, path_or_file: PathLike | TextIO) -> None:
    """Write ``u v w`` lines (0-indexed, one per undirected edge)."""
    f, should_close = _open_write(path_or_file)
    try:
        f.write(f"# n={g.n} m={g.m}\n")
        for u, v, w in g.edges():
            f.write(f"{u} {v} {_fmt_weight(w)}\n")
    finally:
        if should_close:
            f.close()


def read_edgelist(
    path_or_file: PathLike | TextIO, n: int | None = None, name: str = ""
) -> Graph:
    """Read a SNAP-style edge list.

    Vertex count defaults to ``max id + 1``; an explicit ``n`` allows
    isolated trailing vertices.  A ``# n=...`` comment (as written by
    :func:`write_edgelist`) is honored when ``n`` is not given.
    """
    f, should_close = _open_read(path_or_file)
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    header_n = None
    try:
        for raw in f:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "n=" in line and header_n is None:
                    try:
                        header_n = int(line.split("n=")[1].split()[0])
                    except (ValueError, IndexError):
                        pass
                continue
            tokens = line.split()
            if len(tokens) < 2:
                raise GraphFormatError(f"bad edge line: {line!r}")
            u, v = int(tokens[0]), int(tokens[1])
            w = float(tokens[2]) if len(tokens) > 2 else 1.0
            if u != v:
                us.append(u)
                vs.append(v)
                ws.append(w)
    finally:
        if should_close:
            f.close()
    if n is None:
        n = header_n
    if n is None:
        n = (max(max(us), max(vs)) + 1) if us else 0
    return from_arrays(
        n,
        np.asarray(us, np.int64),
        np.asarray(vs, np.int64),
        np.asarray(ws, np.float64),
        name=name,
    )


def to_metis_string(g: Graph) -> str:
    """METIS serialization as a string (handy for tests and debugging)."""
    buf = _io.StringIO()
    write_metis(g, buf)
    return buf.getvalue()


def from_metis_string(text: str, name: str = "") -> Graph:
    return read_metis(_io.StringIO(text), name=name)
