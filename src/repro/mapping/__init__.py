"""Mappings of application graphs onto processor graphs.

Provides everything the paper uses *around* TIMER:

- :func:`build_communication_graph` -- contract a partition of ``G_a``
  into the communication graph ``G_c`` (Figure 1b),
- :func:`coco` and friends -- the Coco / hop-byte objective (Eq. 3) plus
  auxiliary quality measures (dilation statistics, congestion estimate),
- initial mapping algorithms: :func:`identity_mapping` (case c2),
  :func:`greedy_all_c` (case c3), :func:`greedy_min` (case c4 /
  LibTopoMap's construction method) and :func:`drb_mapping` (case c1,
  the SCOTCH stand-in),
- :class:`MappingAlgorithm` registry used by the experiment harness.
"""

from repro.mapping.commgraph import build_communication_graph
from repro.mapping.objective import (
    coco,
    coco_from_distances,
    average_dilation,
    maximum_dilation,
    congestion_estimate,
    network_cost_matrix,
)
from repro.mapping.identity import identity_mapping
from repro.mapping.greedy import greedy_all_c, greedy_min
from repro.mapping.drb import drb_mapping
from repro.mapping.refine import ncm_swap_refine, swap_gain
from repro.mapping.report import MappingQualityReport, compare_reports, quality_report
from repro.mapping.mapper import (
    MappingAlgorithm,
    available_algorithms,
    compute_initial_mapping,
    vertex_mapping_from_blocks,
)

__all__ = [
    "build_communication_graph",
    "coco",
    "coco_from_distances",
    "average_dilation",
    "maximum_dilation",
    "congestion_estimate",
    "network_cost_matrix",
    "identity_mapping",
    "greedy_all_c",
    "greedy_min",
    "drb_mapping",
    "ncm_swap_refine",
    "swap_gain",
    "MappingQualityReport",
    "quality_report",
    "compare_reports",
    "MappingAlgorithm",
    "available_algorithms",
    "compute_initial_mapping",
    "vertex_mapping_from_blocks",
]
