"""Communication graph construction (paper Figure 1).

Contracting each block of a partition of ``G_a`` into a single vertex
yields ``G_c = (V_c, E_c, omega_c)`` where ``omega_c`` aggregates the
weight of all ``G_a`` edges running between two blocks.  The decoupled
mapping pipeline (partition first, then map) operates on ``G_c``.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.partitioning.coarsen import contract_graph
from repro.partitioning.partition import Partition


def build_communication_graph(part: Partition, name: str = "") -> Graph:
    """Contract ``part.graph`` along ``part.assignment`` into ``G_c``.

    The result has exactly ``part.k`` vertices (empty blocks become
    isolated vertices) and vertex weights equal to block weights, so
    downstream mappers can reason about load.
    """
    return contract_graph(
        part.graph,
        part.assignment,
        part.k,
        name=name or (f"{part.graph.name}|comm" if part.graph.name else "comm"),
    )
