"""Dual recursive bipartitioning (DRB) mapping -- the SCOTCH stand-in.

Pellegrini's classic strategy (and SCOTCH's default): recursively bisect
the communication graph *and* the processor graph in lockstep, assigning
the two halves of ``G_c`` to the two halves of ``G_p``.  The pairing of
halves is chosen greedily to keep heavy ``G_c`` cut edges between
physically close PE groups.

Quality profile mirrors the paper's case c1: fast, reasonable, but clearly
behind the greedy constructions -- exactly the gap TIMER then closes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.partitioning.multilevel import bisect_multilevel
from repro.utils.rng import SeedLike, make_rng


def drb_mapping(
    gc: Graph,
    gp: Graph,
    seed: SeedLike = None,
    epsilon: float = 0.1,
) -> np.ndarray:
    """Map ``G_c`` onto ``G_p`` by dual recursive bipartitioning.

    Returns ``nu: V_c -> V_p`` (a bijection when ``|V_c| == |V_p|``).
    ``epsilon`` is the per-bisection balance slack on the ``G_c`` side;
    the ``G_p`` side is always split to exact PE counts.
    """
    if gc.n > gp.n:
        raise MappingError(f"|V_c|={gc.n} exceeds |V_p|={gp.n}")
    rng = make_rng(seed)
    nu = np.full(gc.n, -1, dtype=np.int64)
    _recurse(
        gc,
        np.arange(gc.n, dtype=np.int64),
        gp,
        np.arange(gp.n, dtype=np.int64),
        nu,
        epsilon,
        rng,
    )
    if (nu < 0).any():
        raise MappingError("DRB failed to assign every block")
    return nu


def _recurse(
    gc: Graph,
    c_ids: np.ndarray,
    gp: Graph,
    p_ids: np.ndarray,
    nu: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
) -> None:
    if c_ids.size == 0:
        return
    if p_ids.size == 1:
        nu[c_ids] = p_ids[0]
        return
    if c_ids.size == 1:
        # A single block: put it on the first PE of the group (the group
        # is connected, so any choice is within-diameter of the rest).
        nu[c_ids[0]] = p_ids[0]
        return
    # Split the PE group by counts (k0 | k1) using its own topology.
    k0 = (p_ids.size + 1) // 2
    k1 = p_ids.size - k0
    p_sub, _ = gp.subgraph(p_ids)
    p_sides = bisect_multilevel(
        p_sub, weight_fraction_0=k0 / p_ids.size, epsilon=0.0, seed=rng,
        max_weight=(float(k0), float(k1)),
    )
    p_sides = _fix_counts(p_sides, k0, k1)
    # Split the communication group proportionally to PE counts.
    c_sub, _ = gc.subgraph(c_ids)
    frac0 = k0 / p_ids.size
    c_sides = bisect_multilevel(
        c_sub, weight_fraction_0=frac0, epsilon=epsilon, seed=rng,
        max_weight=(float(k0), float(k1)),
    ) if c_ids.size > 1 else np.zeros(1, dtype=np.int64)
    c_sides = _fix_counts(c_sides, k0, k1)
    _recurse(gc, c_ids[c_sides == 0], gp, p_ids[p_sides == 0], nu, epsilon, rng)
    _recurse(gc, c_ids[c_sides == 1], gp, p_ids[p_sides == 1], nu, epsilon, rng)


def _fix_counts(sides: np.ndarray, k0: int, k1: int) -> np.ndarray:
    """Force side cardinalities to exactly ``(k0, k1)`` by moving extras.

    Bisection respects weight caps but the leaf pairing needs *exact*
    counts (every PE receives exactly one block when ``|V_c| == |V_p|``).
    """
    sides = sides.copy()
    n0 = int((sides == 0).sum())
    while n0 > k0:
        movable = np.nonzero(sides == 0)[0]
        sides[movable[-1]] = 1
        n0 -= 1
    while n0 < k0:
        movable = np.nonzero(sides == 1)[0]
        sides[movable[-1]] = 0
        n0 += 1
    return sides
