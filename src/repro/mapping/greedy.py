"""Greedy construction mappings (experimental cases c3 and c4).

Both algorithms assign communication-graph vertices to PEs one at a time:

- **GREEDYALLC** [Glantz, Meyerhenke, Noe, PDP 2015]: the next task is the
  unmapped ``v_c`` with maximal communication volume to *all* already
  mapped vertices; it goes to the free PE minimizing the total weighted
  distance to the PEs of all mapped neighbors ("all" strategy on both
  sides).  Best performer of [11], used as case c3.
- **GREEDYMIN** [construction method of Brandfass et al., as
  re-implemented by the paper's authors on top of KaHIP; LibTopoMap's
  greedy follows the same scheme]: the next task again maximizes
  communication to the mapped set, but the PE choice minimizes distance to
  the PE of the single most strongly connected mapped neighbor ("one"
  strategy); ties broken by total distance.  Used as case c4.

Both start from the heaviest communication vertex placed on a PE of
minimum eccentricity (a center of ``G_p``), which is how construction
heuristics avoid painting themselves into a corner of open meshes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.graphs.algorithms import weighted_degree
from repro.graphs.graph import Graph
from repro.mapping.objective import network_cost_matrix


def _greedy_mapping(
    gc: Graph,
    gp: Graph,
    pe_rule: str,
    dist: np.ndarray | None = None,
) -> np.ndarray:
    if gc.n > gp.n:
        raise MappingError(f"|V_c|={gc.n} exceeds |V_p|={gp.n}")
    if dist is None:
        dist = network_cost_matrix(gp)
    n_c, n_p = gc.n, gp.n
    nu = np.full(n_c, -1, dtype=np.int64)
    pe_used = np.zeros(n_p, dtype=bool)
    # Communication volume from each unmapped vertex into the mapped set.
    attraction = np.zeros(n_c, dtype=np.float64)
    # Accumulated weighted distance cost per candidate PE ("all" rule):
    # cost_all[p] = sum over mapped neighbors u of w(v,u) * dist[p, nu[u]]
    # is recomputed per placement from v's mapped neighborhood (cheap:
    # O(deg * n_p) with vectorized dist rows).
    mapped_order: list[int] = []

    wdeg = weighted_degree(gc)
    first_c = int(np.argmax(wdeg)) if n_c else 0
    ecc = dist.max(axis=1)
    first_p = int(np.argmin(ecc + dist.mean(axis=1)))  # central PE
    remaining = set(range(n_c))

    def place(vc: int, vp: int) -> None:
        nu[vc] = vp
        pe_used[vp] = True
        mapped_order.append(vc)
        remaining.discard(vc)
        nbrs = gc.neighbors(vc)
        wts = gc.incident_weights(vc)
        for u, w in zip(nbrs, wts):
            attraction[int(u)] += float(w)

    place(first_c, first_p)
    while remaining:
        # (a) next task: max communication volume with the mapped set;
        # isolated-from-mapped vertices fall back to max weighted degree.
        cand = np.fromiter(remaining, dtype=np.int64)
        att = attraction[cand]
        if att.max() > 0:
            vc = int(cand[np.argmax(att)])
        else:
            vc = int(cand[np.argmax(wdeg[cand])])
        # (b) PE choice.
        nbrs = gc.neighbors(vc)
        wts = gc.incident_weights(vc)
        mapped_mask = nu[nbrs] >= 0
        m_nbrs = nbrs[mapped_mask]
        m_wts = wts[mapped_mask]
        free = np.nonzero(~pe_used)[0]
        if m_nbrs.size == 0:
            # No mapped neighbor: place near the centroid of used PEs.
            used = np.nonzero(pe_used)[0]
            score = dist[np.ix_(free, used)].sum(axis=1)
            vp = int(free[np.argmin(score)])
        elif pe_rule == "all":
            cost = (m_wts[None, :] * dist[np.ix_(free, nu[m_nbrs])]).sum(axis=1)
            vp = int(free[np.argmin(cost)])
        elif pe_rule == "min":
            anchor = nu[m_nbrs[np.argmax(m_wts)]]
            primary = dist[free, anchor].astype(np.float64)
            secondary = (m_wts[None, :] * dist[np.ix_(free, nu[m_nbrs])]).sum(axis=1)
            # Lexicographic: nearest to the anchor, then cheapest overall.
            vp = int(free[np.lexsort((secondary, primary))[0]])
        else:  # pragma: no cover - guarded by the public wrappers
            raise ValueError(f"unknown pe_rule {pe_rule!r}")
        place(vc, vp)
    return nu


def greedy_all_c(gc: Graph, gp: Graph, dist: np.ndarray | None = None) -> np.ndarray:
    """GREEDYALLC block-to-PE mapping (case c3). Returns ``nu: V_c -> V_p``."""
    return _greedy_mapping(gc, gp, "all", dist)


def greedy_min(gc: Graph, gp: Graph, dist: np.ndarray | None = None) -> np.ndarray:
    """GREEDYMIN block-to-PE mapping (case c4). Returns ``nu: V_c -> V_p``."""
    return _greedy_mapping(gc, gp, "min", dist)
