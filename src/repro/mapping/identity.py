"""The IDENTITY mapping (experimental case c2).

Maps block ``i`` of the communication graph to PE ``i``.  The paper notes
this "benefits from spatial locality in the partitions, so that IDENTITY
often yields surprisingly good solutions" -- our recursive-bisection
partitioner numbers blocks in recursion leaf order, which gives block ids
exactly that locality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.partitioning.partition import Partition


def identity_mapping(part: Partition, gp: Graph) -> np.ndarray:
    """Per-vertex mapping ``mu(v) = block(v)`` (requires ``k == |V_p|``)."""
    if part.k != gp.n:
        raise MappingError(
            f"identity mapping needs k == |V_p|, got k={part.k}, |V_p|={gp.n}"
        )
    return part.assignment.astype(np.int64).copy()
