"""Uniform driver around the initial-mapping algorithms.

The experiment harness needs "give me mu_1 for case cX" as one call; this
module registers the paper's cases in the unified strategy registry
(:data:`repro.api.registry.REGISTRY`, kind ``initial_mapping``), provides
the block->vertex mapping expansion, and the common entry point
:func:`compute_initial_mapping` with timing.  Downstream code adds its
own algorithms by registering another :class:`MappingAlgorithm` under the
same kind -- the CLI, the pipeline and the experiment harness all resolve
cases from there.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.api.registry import INITIAL_MAPPING, REGISTRY, RegistryView
from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.mapping.commgraph import build_communication_graph
from repro.mapping.drb import drb_mapping
from repro.mapping.greedy import greedy_all_c, greedy_min
from repro.partitioning.partition import Partition
from repro.utils.rng import SeedLike
from repro.utils.stopwatch import Stopwatch


@dataclass(frozen=True)
class MappingAlgorithm:
    """Registry entry: paper case id, name and the block-mapping function."""

    case: str
    name: str
    fn: Callable


def vertex_mapping_from_blocks(part: Partition, nu: np.ndarray) -> np.ndarray:
    """Expand a block->PE bijection ``nu`` to a vertex->PE mapping ``mu``."""
    nu = np.asarray(nu, dtype=np.int64)
    if nu.shape != (part.k,):
        raise MappingError(f"nu must have shape ({part.k},), got {nu.shape}")
    return nu[part.assignment]


def _identity(part: Partition, gp: Graph, seed: SeedLike) -> np.ndarray:
    return np.arange(part.k, dtype=np.int64)


def _greedy_all_c(part: Partition, gp: Graph, seed: SeedLike) -> np.ndarray:
    return greedy_all_c(build_communication_graph(part), gp)


def _greedy_min(part: Partition, gp: Graph, seed: SeedLike) -> np.ndarray:
    return greedy_min(build_communication_graph(part), gp)


def _drb(part: Partition, gp: Graph, seed: SeedLike) -> np.ndarray:
    return drb_mapping(build_communication_graph(part), gp, seed=seed)


for _algo in (
    MappingAlgorithm("c1", "scotch-drb", _drb),
    MappingAlgorithm("c2", "identity", _identity),
    MappingAlgorithm("c3", "greedy-all-c", _greedy_all_c),
    MappingAlgorithm("c4", "greedy-min", _greedy_min),
):
    REGISTRY.register(INITIAL_MAPPING, _algo.case, _algo)


#: The pre-registry module-private dict, kept as a *live* view: reads
#: reflect the unified registry and item assignment registers through.
_REGISTRY = RegistryView(REGISTRY, INITIAL_MAPPING)


def available_algorithms() -> dict[str, MappingAlgorithm]:
    """All registered initial-mapping cases (the paper's ``c1 .. c4``)."""
    return dict(REGISTRY.items(INITIAL_MAPPING))


def compute_initial_mapping(
    case: str,
    part: Partition,
    gp: Graph,
    seed: SeedLike = None,
) -> tuple[np.ndarray, float]:
    """Compute ``mu_1`` (vertex->PE) for an experimental case.

    Returns ``(mu, seconds)`` where seconds covers only the mapping step
    (the partition is an input, mirroring the paper's timing methodology).
    """
    if (INITIAL_MAPPING, case) not in REGISTRY:
        raise MappingError(
            f"unknown case {case!r}; expected one of "
            f"{sorted(REGISTRY.names(INITIAL_MAPPING))}"
        )
    if part.k != gp.n:
        raise MappingError(f"need k == |V_p| for one-to-one mapping, got {part.k} != {gp.n}")
    algo = REGISTRY.get(INITIAL_MAPPING, case)
    sw = Stopwatch()
    with sw:
        nu = algo.fn(part, gp, seed)
    nu = np.asarray(nu, dtype=np.int64)
    if np.unique(nu).shape[0] != part.k:
        raise MappingError(f"{algo.name} produced a non-bijective block mapping")
    return vertex_mapping_from_blocks(part, nu), sw.elapsed


# Convenience export for identity at block level (used in docs/tests).
__all__ = [
    "MappingAlgorithm",
    "available_algorithms",
    "compute_initial_mapping",
    "vertex_mapping_from_blocks",
]
