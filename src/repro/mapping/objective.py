"""Mapping quality objectives.

The paper's primary objective is ``Coco`` (Eq. 3), also known as
*hop-bytes*: every application edge pays its weight times the hop distance
of its endpoints' PEs in ``G_p``.  This module evaluates Coco both from a
distance matrix (arbitrary ``G_p``) and from partial-cube labels (O(1) per
edge), and adds the auxiliary measures used in the broader mapping
literature (average/maximum dilation, a congestion estimate, and the
Walshaw-Cross network cost matrix for reference).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.graphs.algorithms import all_pairs_distances, bfs_distances
from repro.graphs.graph import Graph
from repro.utils.bitops import hamming_labels
from repro.utils.validation import as_int_array, check_assignment


def network_cost_matrix(gp: Graph) -> np.ndarray:
    """All-pairs hop distances of ``G_p`` (the NCM of Walshaw & Cross).

    TIMER's selling point is avoiding this matrix via labels; it is
    provided for the baseline mappers and for cross-checks.
    """
    return all_pairs_distances(gp)


def coco_from_distances(
    ga: Graph, mu: np.ndarray, dist: np.ndarray
) -> float:
    """Coco(mu) = sum over edges of w(e) * d_Gp(mu(u), mu(v)) (Eq. 3)."""
    mu = as_int_array("mu", mu, ga.n)
    check_assignment("mu", mu, dist.shape[0])
    us, vs, ws = ga.edge_arrays()
    return float((ws * dist[mu[us], mu[vs]]).sum())


def coco(ga: Graph, gp: Graph, mu: np.ndarray) -> float:
    """Coco via a fresh distance matrix (convenience; O(|Vp| * |Ep|))."""
    if (np.asarray(mu) < 0).any() or (np.asarray(mu) >= gp.n).any():
        raise MappingError("mu maps outside V_p")
    return coco_from_distances(ga, np.asarray(mu, dtype=np.int64), network_cost_matrix(gp))


def coco_from_labels(ga: Graph, labels_p_of_vertex: np.ndarray) -> float:
    """Coco evaluated as Hamming distance of per-vertex PE labels.

    ``labels_p_of_vertex[v]`` must be the packed partial-cube label of
    ``mu(v)`` -- narrow 1-D ``int64`` or wide ``(n, W)`` ``uint64``; the
    hop distance is then ``popcount(xor)`` (Definition 2.2), the identity
    that makes TIMER fast.
    """
    lab = np.asarray(labels_p_of_vertex)
    if lab.ndim == 1:
        lab = lab.astype(np.int64, copy=False)
    us, vs, ws = ga.edge_arrays()
    return float((ws * hamming_labels(lab[us], lab[vs])).sum())


def average_dilation(ga: Graph, gp: Graph, mu: np.ndarray) -> float:
    """Weighted mean hop distance per unit of communication."""
    mu = as_int_array("mu", mu, ga.n)
    dist = network_cost_matrix(gp)
    us, vs, ws = ga.edge_arrays()
    total_w = ws.sum()
    if total_w == 0:
        return 0.0
    return float((ws * dist[mu[us], mu[vs]]).sum() / total_w)


def maximum_dilation(ga: Graph, gp: Graph, mu: np.ndarray) -> int:
    """Largest hop distance paid by any communicating edge."""
    mu = as_int_array("mu", mu, ga.n)
    dist = network_cost_matrix(gp)
    us, vs, ws = ga.edge_arrays()
    live = ws > 0
    if not live.any():
        return 0
    return int(dist[mu[us[live]], mu[vs[live]]].max())


def congestion_estimate(ga: Graph, gp: Graph, mu: np.ndarray, seed=None) -> float:
    """Maximum traffic over any ``G_p`` edge under single-shortest-path routing.

    The paper abstracts routing away by assuming shortest paths; this
    estimate routes every application edge along one BFS shortest path
    (deterministic tie-breaking by parent order) and reports the maximum
    accumulated load per processor edge.  Used by extension experiments
    only -- not part of the paper's headline metrics.
    """
    mu = as_int_array("mu", mu, ga.n)
    # Build per-source BFS parents lazily.
    parents: dict[int, np.ndarray] = {}

    def parent_tree(src: int) -> np.ndarray:
        if src not in parents:
            dist = bfs_distances(gp, src)
            par = np.full(gp.n, -1, dtype=np.int64)
            order = np.argsort(dist, kind="stable")
            for v in order:
                v = int(v)
                if v == src or dist[v] < 0:
                    continue
                for u in gp.neighbors(v):
                    if dist[int(u)] == dist[v] - 1:
                        par[v] = int(u)
                        break
            parents[src] = par
        return parents[src]

    load: dict[tuple[int, int], float] = {}
    us, vs, ws = ga.edge_arrays()
    for u, v, w in zip(us, vs, ws):
        a, b = int(mu[u]), int(mu[v])
        if a == b or w == 0:
            continue
        par = parent_tree(a)
        x = b
        while x != a:
            p = int(par[x])
            key = (min(x, p), max(x, p))
            load[key] = load.get(key, 0.0) + float(w)
            x = p
    return max(load.values()) if load else 0.0
