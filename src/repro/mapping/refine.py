"""Classic NCM-based mapping refinement (related-work baseline).

The paper contrasts TIMER with the older line of work that refines a
block->PE assignment using a *network cost matrix* (Walshaw & Cross) and
pairwise exchanges.  This module implements that baseline: greedy swaps of
the PEs of two communication-graph vertices, evaluated exactly against the
all-pairs distance matrix of ``G_p``.

It serves two purposes:

1. an ablation/benchmark opponent for TIMER (same improvement move space
   at the coarsest level, but quadratic-space NCM and no hierarchy), and
2. a quality booster usable on any topology -- NCM refinement does not
   need the partial-cube property.

Complexity: each pass scans candidate pairs (by default only blocks whose
PEs are within ``radius`` hops, which is where nearly all of the gain
lives) and applies improving swaps immediately.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.mapping.objective import network_cost_matrix


def swap_gain(
    gc: Graph, dist: np.ndarray, nu: np.ndarray, a: int, b: int
) -> float:
    """Coco reduction from exchanging the PEs of blocks ``a`` and ``b``.

    Positive = improvement.  Exact: recomputes the contribution of all
    edges incident to ``a`` or ``b`` (the edge between them, if any, is
    unaffected since both endpoints trade places).
    """
    pa, pb = int(nu[a]), int(nu[b])
    if pa == pb:
        return 0.0
    gain = 0.0
    for v, old_pe, new_pe in ((a, pa, pb), (b, pb, pa)):
        nbrs = gc.neighbors(v)
        wts = gc.incident_weights(v)
        keep = (nbrs != a) & (nbrs != b)
        nbrs = nbrs[keep]
        wts = wts[keep]
        if nbrs.size == 0:
            continue
        targets = nu[nbrs]
        gain += float((wts * (dist[old_pe, targets] - dist[new_pe, targets])).sum())
    return gain


def ncm_swap_refine(
    gc: Graph,
    gp: Graph,
    nu: np.ndarray,
    dist: np.ndarray | None = None,
    radius: int = 2,
    max_passes: int = 5,
) -> np.ndarray:
    """Greedy pairwise-exchange refinement of a block->PE bijection.

    Parameters
    ----------
    gc / gp:
        communication and processor graphs.
    nu:
        initial bijection ``V_c -> V_p`` (not mutated).
    dist:
        optional precomputed NCM (``all_pairs_distances(gp)``).
    radius:
        candidate swaps are limited to block pairs whose current PEs are
        within this many hops (``None``/large = all pairs).
    max_passes:
        stop after this many full sweeps or when a sweep finds no
        improving swap.
    """
    nu = np.asarray(nu, dtype=np.int64).copy()
    if nu.shape != (gc.n,):
        raise MappingError(f"nu must have shape ({gc.n},)")
    if gc.n > gp.n:
        raise MappingError(f"|V_c|={gc.n} exceeds |V_p|={gp.n}")
    if dist is None:
        dist = network_cost_matrix(gp)
    block_of_pe = np.full(gp.n, -1, dtype=np.int64)
    block_of_pe[nu] = np.arange(gc.n)

    for _ in range(max_passes):
        improved = False
        for a in range(gc.n):
            pa = int(nu[a])
            # candidate partner blocks: those on PEs within `radius` hops
            near_pes = np.nonzero((dist[pa] > 0) & (dist[pa] <= radius))[0]
            candidates = block_of_pe[near_pes]
            candidates = candidates[candidates > a]  # each pair once
            best_gain, best_b = 1e-9, -1
            for b in candidates:
                g = swap_gain(gc, dist, nu, a, int(b))
                if g > best_gain:
                    best_gain, best_b = g, int(b)
            if best_b >= 0:
                pb = int(nu[best_b])
                nu[a], nu[best_b] = pb, pa
                block_of_pe[pa], block_of_pe[pb] = best_b, a
                improved = True
        if not improved:
            break
    return nu
