"""One-call quality report for a mapping.

Bundles every quality measure the repo knows about -- the paper's two
headline metrics (Coco, edge cut) plus the auxiliary dilation/congestion
measures from the wider mapping literature -- so examples, the harness
and downstream users don't re-plumb distance matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.mapping.objective import (
    congestion_estimate,
    network_cost_matrix,
)
from repro.partitioning.metrics import edge_cut
from repro.utils.validation import as_int_array


@dataclass(frozen=True)
class MappingQualityReport:
    """Quality measures of one mapping ``mu : V_a -> V_p``."""

    coco: float
    cut: float
    avg_dilation: float
    max_dilation: int
    congestion: float
    n_used_pes: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Coco={self.coco:.1f} cut={self.cut:.1f} "
            f"dilation(avg/max)={self.avg_dilation:.2f}/{self.max_dilation} "
            f"congestion={self.congestion:.1f} PEs={self.n_used_pes}"
        )


def quality_report(
    ga: Graph,
    gp: Graph,
    mu: np.ndarray,
    dist: np.ndarray | None = None,
    with_congestion: bool = True,
) -> MappingQualityReport:
    """Evaluate all mapping-quality measures in one pass.

    ``with_congestion=False`` skips the congestion estimate (it routes
    every edge along a BFS path, the only super-linear part).
    """
    mu = as_int_array("mu", mu, ga.n)
    if dist is None:
        dist = network_cost_matrix(gp)
    us, vs, ws = ga.edge_arrays()
    hop = dist[mu[us], mu[vs]]
    total_w = float(ws.sum())
    live = ws > 0
    return MappingQualityReport(
        coco=float((ws * hop).sum()),
        cut=edge_cut(ga, mu),
        avg_dilation=float((ws * hop).sum() / total_w) if total_w else 0.0,
        max_dilation=int(hop[live].max()) if live.any() else 0,
        congestion=congestion_estimate(ga, gp, mu) if with_congestion else float("nan"),
        n_used_pes=int(np.unique(mu).shape[0]),
    )


def compare_reports(
    before: MappingQualityReport, after: MappingQualityReport
) -> dict[str, float]:
    """Relative change per metric (negative = improvement)."""
    out: dict[str, float] = {}
    for name in ("coco", "cut", "avg_dilation", "congestion"):
        b = getattr(before, name)
        a = getattr(after, name)
        out[name] = (a / b - 1.0) if b else 0.0
    return out
