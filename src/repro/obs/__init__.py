"""Observability: end-to-end tracing, structured logging, profiling.

``repro.obs`` is the stdlib-only window into the serve tier's four
process layers (shard front end -> shard worker -> scheduler -> pool
worker -> pipeline stages) and into offline sweeps:

- :mod:`repro.obs.trace` -- spans with *deterministic* ids derived from
  the request's run identity, monotonic-clock durations, a bounded
  per-process ring buffer, and wire-format contexts that cross process
  boundaries (HTTP payload field, pool pipe items);
- :mod:`repro.obs.log` -- a JSON-lines event logger replacing ad-hoc
  prints in serve/, the pool supervisor and the experiment runner
  (enforced by lint rule OBS001);
- :mod:`repro.obs.profile` -- an opt-in cProfile hook attaching top-K
  hotspot frames to a span.

Nothing here may influence results: tracing and logging are pure
observers of the determinism contract, never inputs to it.  See
``docs/observability.md``.
"""

from repro.obs.log import EventLogger, get_logger, set_process_fields
from repro.obs.profile import profile_call
from repro.obs.trace import (
    Span,
    SpanContext,
    TraceBuffer,
    Tracer,
    build_tree,
    configure_tracer,
    derive_trace_id,
    get_tracer,
    merge_debug_snapshots,
    tree_signature,
)

__all__ = [
    "EventLogger",
    "Span",
    "SpanContext",
    "TraceBuffer",
    "Tracer",
    "build_tree",
    "configure_tracer",
    "derive_trace_id",
    "get_logger",
    "get_tracer",
    "merge_debug_snapshots",
    "profile_call",
    "set_process_fields",
    "tree_signature",
]
