"""JSON-lines structured event logging.

One event per line on stderr (or any stream), every line a flat JSON
object with a fixed envelope::

    {"ts": <unix seconds>, "level": "info", "component": "serve.shard",
     "event": "shard_listening", ...event fields...}

plus whatever process-wide fields were bound with
:func:`set_process_fields` (``shard_id``, ``worker_generation``, ...)
and per-logger fields bound with :meth:`EventLogger.bind`.  ``trace_id``
rides as an ordinary field, linking log lines to span trees.

The event name is the taxonomy: past-tense, snake_case, stable --
``request_rejected``, ``worker_restarted``, ``sweep_task_finished`` --
so operators grep by event, not by message prose.  Lint rule OBS001
bans ad-hoc ``print()`` / ``sys.stderr.write`` in the serve tree and
the experiment runner; this module is the sanctioned emitter.

Emission is a single buffered ``write`` + ``flush`` of one line --
cheap enough for the request path, atomic enough that concurrent
processes interleave whole lines, and safe from the serve tree's
SRV001 (no blocking primitives opened inside ``async def``; the
stream already exists).
"""

from __future__ import annotations

import json
import sys
import threading
import time

_LEVELS = ("debug", "info", "warn", "error")


class EventLogger:
    """A component-scoped emitter of JSON-line events.

    ``stream=None`` resolves ``sys.stderr`` at emit time, so test
    harnesses that swap stderr capture the lines.
    """

    def __init__(
        self,
        component: str,
        stream=None,
        fields: dict | None = None,
        enabled: bool = True,
    ) -> None:
        self.component = component
        self.stream = stream
        self.fields = dict(fields) if fields else {}
        self.enabled = enabled

    def bind(self, **fields: object) -> "EventLogger":
        """A child logger with extra fields stamped on every event."""
        merged = dict(self.fields)
        merged.update(fields)
        return EventLogger(
            self.component, self.stream, merged, self.enabled
        )

    def emit(self, level: str, event: str, **fields: object) -> None:
        if not self.enabled:
            return
        record: dict = {
            "ts": round(time.time(), 6),
            "level": level if level in _LEVELS else "info",
            "component": self.component,
            "event": event,
        }
        with _fields_lock:
            record.update(_process_fields)
        record.update(self.fields)
        record.update(fields)
        line = json.dumps(
            record, sort_keys=True, separators=(",", ":"), default=str
        )
        stream = self.stream if self.stream is not None else sys.stderr
        try:
            stream.write(line + "\n")
            stream.flush()
        except (ValueError, OSError):
            pass  # a closed stderr must never take down the service

    def debug(self, event: str, **fields: object) -> None:
        self.emit("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.emit("info", event, **fields)

    def warn(self, event: str, **fields: object) -> None:
        self.emit("warn", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.emit("error", event, **fields)


_fields_lock = threading.Lock()
_process_fields: dict = {}
_loggers_lock = threading.Lock()
_loggers: dict[str, EventLogger] = {}


def set_process_fields(**fields: object) -> None:
    """Bind fields onto every logger in this process (shard id, worker
    generation, ...).  A value of ``None`` removes the field."""
    with _fields_lock:
        for key, value in fields.items():
            if value is None:
                _process_fields.pop(key, None)
            else:
                _process_fields[key] = value


def get_logger(component: str) -> EventLogger:
    """The process-wide logger for ``component`` (memoized)."""
    with _loggers_lock:
        logger = _loggers.get(component)
        if logger is None:
            logger = _loggers[component] = EventLogger(component)
        return logger
