"""Opt-in cProfile hook: top-K hotspot frames attached to a span.

Profiling a request costs real time (cProfile instruments every call),
so it is gated behind ``repro serve --profile`` and applied around the
scheduler's compute step only.  The harvest is a compact, JSON-ready
list of the top-K frames by cumulative time -- enough to answer "where
did this slow exemplar spend its time" straight from
``/debug/traces`` without shipping pstats blobs around.
"""

from __future__ import annotations

import cProfile
import pstats


def profile_call(fn, *args, top: int = 10, **kwargs):
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, frames)`` where ``frames`` is a list of up to
    ``top`` dicts ``{"frame": "file:line(function)", "calls": n,
    "tottime": s, "cumtime": s}`` sorted by cumulative time.  The
    profiled call's exceptions propagate unchanged.
    """
    profiler = cProfile.Profile()
    try:
        result = profiler.runcall(fn, *args, **kwargs)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda kv: kv[1][3],  # cumulative time
        reverse=True,
    )
    frames = []
    for (filename, lineno, func), (
        _cc,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in rows:
        if filename.startswith("<") and func.startswith("<"):
            continue  # synthetic frames (profiler bookkeeping, exec shells)
        frames.append(
            {
                "frame": f"{filename}:{lineno}({func})",
                "calls": int(ncalls),
                "tottime": round(float(tottime), 6),
                "cumtime": round(float(cumtime), 6),
            }
        )
        if len(frames) >= max(1, int(top)):
            break
    return result, frames
