"""Deterministic spans, tracers, and the per-process trace ring buffer.

A *span* is one timed operation: name, trace id, span id, parent span
id, a process role tag, monotonic-clock duration, and free-form
attributes.  A *trace* is the set of spans sharing a trace id; the
parent links make it a tree that can cross process boundaries.

Two properties are deliberate and load-bearing:

**Deterministic ids.**  The trace id is derived from the request's run
identity (the canonical JSON of the request payload -- the same bytes
that key the response cache), and every span id is
``sha256(trace_id / parent_id / name / index)`` where ``index`` counts
prior same-named siblings.  Replaying the same request therefore
reproduces the same span tree byte for byte (see
:func:`tree_signature`), which is what makes traces diffable across
runs and lets the e2e tests pin the tree shape.  Nothing about a span
id depends on wall-clock, pids, or scheduling order of *other*
requests.

**Monotonic durations.**  Spans time themselves with
:func:`time.perf_counter`; wall-clock never enters the span model, so
tracing stays legal inside the determinism-linted trees (DET002) and
span *structure* stays reproducible while durations honestly vary.

Contexts cross process boundaries as plain dicts
(:meth:`SpanContext.to_wire`): the shard front end stamps one into the
forwarded request payload, the scheduler threads one through the pool's
pipe items, and workers ship their finished spans back alongside
results so every process's buffer can be merged into one tree.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

#: wire-format key under which a trace context rides in a request payload
WIRE_KEY = "trace"

_ID_HEX = 16  # 64-bit hex ids, plenty for per-deployment uniqueness


def _canonical_json(payload: object) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def derive_trace_id(payload: object) -> str:
    """Deterministic trace id from a JSON-serializable request payload.

    The payload is canonicalized (sorted keys, no whitespace) before
    hashing, so semantically identical requests -- including the same
    request replayed in a fresh process -- share a trace id.
    """
    digest = hashlib.sha256(b"repro-trace:" + _canonical_json(payload))
    return digest.hexdigest()[:_ID_HEX]


def derive_span_id(
    trace_id: str, parent_id: str, name: str, index: int
) -> str:
    """Deterministic span id: position in the tree, nothing else."""
    blob = f"{trace_id}/{parent_id}/{name}/{index}".encode()
    return hashlib.sha256(blob).hexdigest()[:_ID_HEX]


@dataclass(frozen=True)
class SpanContext:
    """The portable part of a span: enough to parent a child anywhere."""

    trace_id: str
    span_id: str = ""
    sampled: bool = True

    def to_wire(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": bool(self.sampled),
        }

    @classmethod
    def from_wire(cls, data: object) -> "SpanContext | None":
        """Parse a wire dict; ``None`` on anything malformed (never raise:
        a bad trace header must not fail the request it rides on)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span_id = data.get("span_id")
        return cls(
            trace_id=trace_id,
            span_id=span_id if isinstance(span_id, str) else "",
            sampled=bool(data.get("sampled", True)),
        )


class Span:
    """One timed operation; use as a context manager.

    Finishing (normally or via ``__exit__``) stamps the duration and
    records the span into the tracer's buffer.  Exceptions mark the
    span ``status="error"`` and propagate.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "process",
        "attrs",
        "start",
        "duration",
        "status",
        "_tracer",
        "_done",
    )

    def __init__(
        self,
        tracer: "Tracer | None",
        name: str,
        trace_id: str,
        parent_id: str,
        span_id: str,
        process: str,
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.process = process
        self.attrs = dict(attrs) if attrs else {}
        self.start = time.perf_counter()
        self.duration = 0.0
        self.status = "ok"
        self._tracer = tracer
        self._done = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, True)

    def set(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def finish(
        self, status: str | None = None, duration: float | None = None
    ) -> None:
        """Record the span; ``duration`` overrides the self-measured
        wall time (used when converting pre-measured stage timings)."""
        if self._done:
            return
        self._done = True
        self.duration = (
            time.perf_counter() - self.start
            if duration is None
            else float(duration)
        )
        if status is not None:
            self.status = status
        if self._tracer is not None:
            self._tracer._record(self)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
            self.finish(status="error")
        else:
            self.finish()


class _NullSpan:
    """No-op span returned when tracing is disabled or unsampled.

    Forwards the *parent* context so child spans created under it stay
    unrecorded too, without callers branching on enablement.
    """

    __slots__ = ("context",)

    def __init__(self, context: SpanContext) -> None:
        self.context = context

    def set(self, **attrs: object) -> None:
        pass

    def finish(
        self, status: str | None = None, duration: float | None = None
    ) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_CONTEXT = SpanContext(trace_id="", span_id="", sampled=False)


class TraceBuffer:
    """Bounded per-process ring of finished spans, grouped by trace.

    Traces evict least-recently-touched once ``max_traces`` is
    exceeded; within a trace, spans past ``max_spans_per_trace`` are
    counted in ``dropped`` instead of stored, so one pathological
    request cannot monopolize the buffer.  All methods are thread-safe
    (spans finish on executor threads and the supervisor thread).
    """

    def __init__(
        self, max_traces: int = 256, max_spans_per_trace: int = 512
    ) -> None:
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[dict]] = OrderedDict()
        self._indices: dict[str, dict[tuple[str, str], int]] = {}
        self.dropped_spans = 0
        self.evicted_traces = 0

    def next_index(self, trace_id: str, parent_id: str, name: str) -> int:
        """Count of prior same-named siblings -- the deterministic
        disambiguator in :func:`derive_span_id`."""
        with self._lock:
            counters = self._indices.setdefault(trace_id, {})
            key = (parent_id, name)
            index = counters.get(key, 0)
            counters[key] = index + 1
            return index

    def add(self, span: dict) -> None:
        trace_id = span.get("trace_id", "")
        if not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = self._traces[trace_id] = []
            else:
                self._traces.move_to_end(trace_id)
            if len(spans) >= self.max_spans_per_trace:
                self.dropped_spans += 1
            else:
                spans.append(dict(span))
            while len(self._traces) > self.max_traces:
                victim, _ = self._traces.popitem(last=False)
                self._indices.pop(victim, None)
                self.evicted_traces += 1

    def ingest(self, spans: list[dict]) -> None:
        """Merge spans finished in another process (pool/shard workers)."""
        for span in spans:
            if isinstance(span, dict):
                self.add(span)

    def traces(self) -> list[tuple[str, list[dict]]]:
        """(trace_id, spans) pairs, most recently touched first."""
        with self._lock:
            return [
                (tid, list(spans))
                for tid, spans in reversed(self._traces.items())
            ]

    def get(self, trace_id: str) -> list[dict]:
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._indices.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": sum(len(s) for s in self._traces.values()),
                "max_traces": self.max_traces,
                "max_spans_per_trace": self.max_spans_per_trace,
                "dropped_spans": self.dropped_spans,
                "evicted_traces": self.evicted_traces,
            }


class Tracer:
    """Per-process span factory bound to one :class:`TraceBuffer`.

    ``process`` tags every span with the process's role in the request
    path (``frontend`` / ``shard`` / ``pool`` / ``runner`` / ...) --
    a deterministic label, unlike a pid.
    """

    def __init__(
        self,
        process: str = "repro",
        buffer: TraceBuffer | None = None,
        enabled: bool = True,
    ) -> None:
        self.process = process
        self.buffer = buffer if buffer is not None else TraceBuffer()
        self.enabled = bool(enabled)

    def start_trace(
        self, payload: object, sampled: bool = True
    ) -> SpanContext:
        """Root context for a request: trace id from the payload's
        canonical JSON, no parent span yet."""
        if not self.enabled or not sampled:
            return _NULL_CONTEXT
        return SpanContext(derive_trace_id(payload), "", True)

    def span(
        self,
        name: str,
        parent: SpanContext | None,
        **attrs: object,
    ):
        """Open a child span under ``parent`` (a no-op span when tracing
        is off, the parent is missing, or the trace is unsampled)."""
        if (
            not self.enabled
            or parent is None
            or not parent.sampled
            or not parent.trace_id
        ):
            return _NullSpan(parent if parent is not None else _NULL_CONTEXT)
        index = self.buffer.next_index(parent.trace_id, parent.span_id, name)
        span_id = derive_span_id(parent.trace_id, parent.span_id, name, index)
        return Span(
            self,
            name,
            parent.trace_id,
            parent.span_id,
            span_id,
            self.process,
            attrs,
        )

    def _record(self, span: Span) -> None:
        self.buffer.add(span.to_dict())

    # -- exposure ------------------------------------------------------
    def debug_snapshot(self, recent: int = 20, slowest: int = 5) -> dict:
        """The ``/debug/traces`` body: recent traces plus slowest-N
        exemplars, each as flat spans + a nested tree."""
        entries = []
        for trace_id, spans in self.buffer.traces():
            entries.append(_trace_entry(trace_id, spans))
        by_duration = sorted(
            entries, key=lambda e: e["duration"], reverse=True
        )
        return {
            "process": self.process,
            "buffer": self.buffer.stats(),
            "recent": entries[: max(0, int(recent))],
            "slowest": by_duration[: max(0, int(slowest))],
        }


def _trace_entry(trace_id: str, spans: list[dict]) -> dict:
    duration = max((s.get("duration", 0.0) for s in _roots(spans)), default=0.0)
    return {
        "trace_id": trace_id,
        "span_count": len(spans),
        "duration": duration,
        "spans": spans,
        "tree": build_tree(spans),
    }


def _roots(spans: list[dict]) -> list[dict]:
    ids = {s.get("span_id") for s in spans}
    return [s for s in spans if s.get("parent_id", "") not in ids]


def build_tree(spans: list[dict]) -> list[dict]:
    """Nest spans by parent link; returns the list of root nodes.

    Spans whose parent is absent from ``spans`` (e.g. the parent half
    of the trace lives in a process not yet merged) surface as roots,
    so a partial trace still renders instead of vanishing.  Children
    sort by (name, span_id) -- a deterministic order that does not
    depend on cross-process clock alignment.
    """
    nodes = {
        s["span_id"]: {**s, "children": []}
        for s in spans
        if s.get("span_id")
    }
    roots = []
    for span in spans:
        node = nodes.get(span.get("span_id", ""))
        if node is None:
            continue
        parent = nodes.get(span.get("parent_id", ""))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: (n["name"], n["span_id"]))
    roots.sort(key=lambda n: (n["name"], n["span_id"]))
    return roots


def tree_signature(spans: list[dict]) -> bytes:
    """Canonical bytes of a trace's *structure*: names, ids, parent
    links, process roles -- everything deterministic, nothing timed.

    Two runs of the same request must produce byte-identical
    signatures (the determinism contract the e2e tests enforce);
    durations, start offsets, attrs and buffer ordering are excluded
    because they legitimately vary.
    """

    def strip(node: dict) -> dict:
        return {
            "name": node["name"],
            "span_id": node["span_id"],
            "parent_id": node.get("parent_id", ""),
            "process": node.get("process", ""),
            "status": node.get("status", "ok"),
            "children": [strip(c) for c in node["children"]],
        }

    forest = [strip(root) for root in build_tree(spans)]
    return _canonical_json(forest)


def merge_debug_snapshots(
    snapshots: list[dict], recent: int = 20, slowest: int = 5
) -> dict:
    """Merge per-process ``/debug/traces`` bodies into one.

    The shard front end aggregates its own snapshot with every shard's
    (exactly as ``/metrics`` is aggregated): spans for the same trace
    id are unioned across processes (deduplicated by span id, so a
    span appearing in both a snapshot's ``recent`` and ``slowest``
    lists counts once) and the trees rebuilt, which is what stitches a
    frontend-rooted trace to the shard/pool halves living in other
    buffers.
    """
    spans_by_trace: OrderedDict[str, dict[str, dict]] = OrderedDict()
    buffers = []
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        if isinstance(snap.get("buffer"), dict):
            buffers.append(snap["buffer"])
        for section in ("recent", "slowest"):
            for entry in snap.get(section, ()):
                if not isinstance(entry, dict):
                    continue
                trace_id = entry.get("trace_id", "")
                merged = spans_by_trace.setdefault(trace_id, {})
                for span in entry.get("spans", ()):
                    sid = span.get("span_id")
                    if sid and sid not in merged:
                        merged[sid] = span
    entries = [
        _trace_entry(trace_id, list(spans.values()))
        for trace_id, spans in spans_by_trace.items()
    ]
    by_duration = sorted(entries, key=lambda e: e["duration"], reverse=True)
    return {
        "process": "aggregate",
        "buffer": {
            "traces": sum(b.get("traces", 0) for b in buffers),
            "spans": sum(b.get("spans", 0) for b in buffers),
            "dropped_spans": sum(b.get("dropped_spans", 0) for b in buffers),
            "evicted_traces": sum(b.get("evicted_traces", 0) for b in buffers),
            "sources": len(buffers),
        },
        "recent": entries[: max(0, int(recent))],
        "slowest": by_duration[: max(0, int(slowest))],
    }


# -- process-global tracer --------------------------------------------

_tracer_lock = threading.Lock()
_process_tracer: Tracer | None = None


def get_tracer() -> Tracer:
    """The process-wide tracer (created enabled, default bounds)."""
    global _process_tracer
    with _tracer_lock:
        if _process_tracer is None:
            _process_tracer = Tracer()
        return _process_tracer


def configure_tracer(
    process: str | None = None,
    enabled: bool | None = None,
    max_traces: int | None = None,
    max_spans_per_trace: int | None = None,
) -> Tracer:
    """(Re)configure the process tracer in place; returns it.

    In place, because worker entry points configure *after* modules
    holding ``get_tracer()`` results have imported.
    """
    tracer = get_tracer()
    with _tracer_lock:
        if process is not None:
            tracer.process = process
        if enabled is not None:
            tracer.enabled = bool(enabled)
        if max_traces is not None or max_spans_per_trace is not None:
            tracer.buffer = TraceBuffer(
                max_traces=(
                    max_traces
                    if max_traces is not None
                    else tracer.buffer.max_traces
                ),
                max_spans_per_trace=(
                    max_spans_per_trace
                    if max_spans_per_trace is not None
                    else tracer.buffer.max_spans_per_trace
                ),
            )
    return tracer
