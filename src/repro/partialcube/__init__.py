"""Partial cubes: recognition, Hamming labelings, hierarchies (paper §2-3).

A *partial cube* is an isometric subgraph of a hypercube: its vertices can
be labeled with bitvectors so that graph distance equals Hamming distance.
This property is what lets TIMER evaluate the communication cost of an edge
in O(1) from two packed labels.

Public surface:

- :func:`partial_cube_labeling` -- compute the labeling or raise
  :class:`~repro.errors.NotPartialCubeError` (paper §3 algorithm).
- :func:`is_partial_cube` -- boolean convenience wrapper.
- :class:`PartialCubeLabeling` -- labels + dimension + provenance.
- :func:`verify_labeling` -- exhaustive distance <-> Hamming check.
- :class:`LabelHierarchy` / :func:`hierarchy_from_permutation` -- the
  permutation-induced hierarchies of §2 (Figure 2).
"""

from repro.partialcube.djokovic import (
    PartialCubeLabeling,
    partial_cube_labeling,
    is_partial_cube,
    djokovic_classes,
)
from repro.partialcube.verify import verify_labeling, labeling_distance_error
from repro.partialcube.hierarchy import LabelHierarchy, hierarchy_from_permutation

__all__ = [
    "PartialCubeLabeling",
    "partial_cube_labeling",
    "is_partial_cube",
    "djokovic_classes",
    "verify_labeling",
    "labeling_distance_error",
    "LabelHierarchy",
    "hierarchy_from_permutation",
]
