"""Partial-cube recognition and labeling via the Djokovic relation.

Implements the paper's §3 procedure:

1. check bipartiteness (non-bipartite graphs are never partial cubes);
2. repeatedly pick an unclassified edge ``e = {x, y}`` and compute its
   Djokovic class: all edges ``f`` with exactly one endpoint closer to
   ``x`` than to ``y``.  For bipartite graphs this equals the cut-set of
   the vertex bipartition ``(W_xy, W_yx)``;
3. if a class overlaps a previously computed class, the cut-sets do not
   partition ``E`` and the graph is not a partial cube;
4. while computing class ``j``, set bit ``j`` of every vertex label to 0
   iff the vertex lies on the ``x`` side (Eq. 5);
5. finally verify ``d_G(u, v) == Hamming(l(u), l(v))`` for all pairs --
   cheap at processor-graph scale and makes recognition sound rather than
   merely heuristic.

Labels are packed into ``int64``: Djokovic class ``j`` occupies bit ``j``.
The packed convention supports graphs with at most 63 classes, which
covers every topology in the paper (the 16x16 torus is the largest with
32).  :func:`djokovic_classes` also returns the raw class structure for
graphs beyond the packing limit (e.g. large trees).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotPartialCubeError
from repro.graphs.algorithms import all_pairs_distances, bipartition_colors, is_connected
from repro.graphs.graph import Graph
from repro.utils.bitops import MAX_LABEL_BITS


@dataclass(frozen=True)
class PartialCubeLabeling:
    """A Hamming labeling of a partial cube.

    Attributes
    ----------
    labels:
        ``int64`` array, one packed bitvector per vertex; bit ``j`` is the
    side of Djokovic class ``j``.
    dim:
        number of Djokovic classes (= isometric dimension of the graph).
    cut_edges:
        for each class ``j``, the ``(k_j, 2)`` array of cut-set edges --
        the paper's convex cuts, kept for inspection and testing.
    """

    labels: np.ndarray
    dim: int
    cut_edges: tuple = field(default_factory=tuple, repr=False)

    @property
    def n(self) -> int:
        return int(self.labels.shape[0])

    def side(self, j: int) -> np.ndarray:
        """Boolean array: which vertices have bit ``j`` set."""
        if not (0 <= j < self.dim):
            raise IndexError(f"class {j} out of range [0, {self.dim})")
        return ((self.labels >> j) & 1).astype(bool)

    def as_bit_matrix(self) -> np.ndarray:
        """``(n, dim)`` 0/1 matrix; column ``j`` = class ``j``."""
        shifts = np.arange(self.dim, dtype=np.int64)
        return ((self.labels[:, None] >> shifts[None, :]) & 1).astype(np.int8)


def djokovic_classes(g: Graph, distances: np.ndarray | None = None):
    """Compute the Djokovic classes of a connected bipartite graph.

    Returns ``(edge_class, classes)`` where ``edge_class`` assigns every
    undirected edge (in ``g.edge_arrays()`` order) a class id and
    ``classes`` is a list of ``(x, y)`` representative edges.  Raises
    :class:`NotPartialCubeError` if classes overlap (step 3 of §3) or the
    graph is not bipartite / not connected.
    """
    if g.n == 0:
        return np.empty(0, np.int64), []
    if not is_connected(g):
        raise NotPartialCubeError(
            "graph is disconnected; partial cubes are connected", reason="disconnected"
        )
    if bipartition_colors(g) is None:
        raise NotPartialCubeError("graph is not bipartite", reason="not-bipartite")
    if distances is None:
        distances = all_pairs_distances(g)
    us, vs, _ = g.edge_arrays()
    m = us.shape[0]
    edge_class = np.full(m, -1, dtype=np.int64)
    classes: list[tuple[int, int]] = []
    for e_idx in range(m):
        if edge_class[e_idx] >= 0:
            continue
        x, y = int(us[e_idx]), int(vs[e_idx])
        side_y = distances[y] < distances[x]  # True = closer to y (the "1" side)
        # Bipartite => no vertex is equidistant from the endpoints of an edge.
        crossing = side_y[us] != side_y[vs]
        conflict = crossing & (edge_class >= 0)
        if conflict.any():
            raise NotPartialCubeError(
                "Djokovic cut-sets overlap; edges do not partition into convex "
                "cut-sets",
                reason="overlapping-classes",
            )
        j = len(classes)
        edge_class[crossing] = j
        classes.append((x, y))
    return edge_class, classes


def partial_cube_labeling(g: Graph, verify: bool = True) -> PartialCubeLabeling:
    """Recognize ``g`` as a partial cube and return its Hamming labeling.

    Parameters
    ----------
    g:
        candidate processor graph.
    verify:
        when True (default), additionally check the labeling is isometric
        (distance == Hamming for *all* vertex pairs).  The Djokovic
        partition test is the paper's criterion; the verification pass
        turns silent miscomputations into loud errors at negligible cost
        for ``n <= ~2000``.
    """
    if g.n == 0:
        raise NotPartialCubeError("empty graph has no labeling", reason="empty")
    distances = all_pairs_distances(g)
    edge_class, classes = djokovic_classes(g, distances)
    dim = len(classes)
    if dim > MAX_LABEL_BITS:
        raise NotPartialCubeError(
            f"isometric dimension {dim} exceeds packed-label limit "
            f"{MAX_LABEL_BITS}; use djokovic_classes() directly",
            reason="dimension-too-large",
        )
    labels = np.zeros(g.n, dtype=np.int64)
    us, vs, _ = g.edge_arrays()
    cut_edges = []
    for j, (x, y) in enumerate(classes):
        on_y_side = distances[y] < distances[x]
        labels |= on_y_side.astype(np.int64) << j
        members = np.nonzero(edge_class == j)[0]
        cut_edges.append(np.stack([us[members], vs[members]], axis=1))
    result = PartialCubeLabeling(labels=labels, dim=dim, cut_edges=tuple(cut_edges))
    if verify:
        xor = labels[:, None] ^ labels[None, :]
        ham = np.bitwise_count(xor)
        if not np.array_equal(ham, distances):
            raise NotPartialCubeError(
                "labeling is not isometric: Hamming distance disagrees with "
                "graph distance",
                reason="not-isometric",
            )
    return result


def is_partial_cube(g: Graph) -> bool:
    """True iff ``g`` is a (connected) partial cube with <= 63 classes."""
    try:
        partial_cube_labeling(g)
        return True
    except NotPartialCubeError:
        return False
