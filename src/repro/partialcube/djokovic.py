"""Partial-cube recognition and labeling via the Djokovic relation.

Implements the paper's §3 procedure:

1. check bipartiteness (non-bipartite graphs are never partial cubes);
2. repeatedly pick an unclassified edge ``e = {x, y}`` and compute its
   Djokovic class: all edges ``f`` with exactly one endpoint closer to
   ``x`` than to ``y``.  For bipartite graphs this equals the cut-set of
   the vertex bipartition ``(W_xy, W_yx)``;
3. if a class overlaps a previously computed class, the cut-sets do not
   partition ``E`` and the graph is not a partial cube;
4. while computing class ``j``, set bit ``j`` of every vertex label to 0
   iff the vertex lies on the ``x`` side (Eq. 5);
5. finally verify ``d_G(u, v) == Hamming(l(u), l(v))`` for all pairs --
   cheap at processor-graph scale and makes recognition sound rather than
   merely heuristic.

Labels are packed with Djokovic class ``j`` at bit ``j``.  Up to 63
classes (every topology in the paper; the 16x16 torus is the largest
with 32) they stay in a single ``int64`` word -- the original narrow
representation, byte-identical to the pre-wide code.  Beyond 63 classes
(trees past 64 vertices, large fat-trees) labels switch to the wide
``(n, W)`` ``uint64`` representation of :mod:`repro.utils.bitops`, so
recognition, labeling and verification now work at any isometric
dimension.  :func:`djokovic_classes` still exposes the raw class
structure directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotPartialCubeError
from repro.graphs.algorithms import all_pairs_distances, bipartition_colors, is_connected
from repro.graphs.graph import Graph
from repro.utils.bitops import (
    MAX_LABEL_BITS,
    bitwise_count,
    get_label_bit,
    pack_bit_matrix,
    pairwise_hamming,
    unpack_bit_matrix,
)


@dataclass(frozen=True)
class PartialCubeLabeling:
    """A Hamming labeling of a partial cube.

    Attributes
    ----------
    labels:
        one packed bitvector per vertex; bit ``j`` is the side of
        Djokovic class ``j``.  Narrow ``int64`` array for ``dim <= 63``,
        wide ``(n, W)`` ``uint64`` array beyond.
    dim:
        number of Djokovic classes (= isometric dimension of the graph).
    cut_edges:
        for each class ``j``, the ``(k_j, 2)`` array of cut-set edges --
        the paper's convex cuts, kept for inspection and testing.
    """

    labels: np.ndarray
    dim: int
    cut_edges: tuple = field(default_factory=tuple, repr=False)

    @property
    def n(self) -> int:
        return int(self.labels.shape[0])

    @property
    def words(self) -> int:
        """Words per label (1 on the narrow fast path)."""
        return int(self.labels.shape[1]) if self.labels.ndim == 2 else 1

    def side(self, j: int) -> np.ndarray:
        """Boolean array: which vertices have bit ``j`` set."""
        if not (0 <= j < self.dim):
            raise IndexError(f"class {j} out of range [0, {self.dim})")
        return get_label_bit(self.labels, j).astype(bool)

    def as_bit_matrix(self) -> np.ndarray:
        """``(n, dim)`` 0/1 matrix; column ``j`` = class ``j``."""
        return unpack_bit_matrix(self.labels, self.dim)


def djokovic_classes(
    g: Graph, distances: np.ndarray | None = None, method: str | None = None
):
    """Compute the Djokovic classes of a connected bipartite graph.

    Returns ``(edge_class, classes)`` where ``edge_class`` assigns every
    undirected edge (in ``g.edge_arrays()`` order) a class id and
    ``classes`` is a list of ``(x, y)`` representative edges.  Raises
    :class:`NotPartialCubeError` if classes overlap (step 3 of §3) or the
    graph is not bipartite / not connected.

    The implementation strategy is owned by the active kernel backend
    (:meth:`repro.core.backend.KernelBackend.djokovic_classes`): the
    reference hybrid runs the one-class-at-a-time loop capped at 64
    classes -- ``O(C * (n + m))``, unbeatable while classes pack into
    one word -- and falls back to the fully batched ``(m, n)``
    side-matrix computation when the cap is hit (trees, where every edge
    is a class).  All strategies produce identical output on partial
    cubes, so callers never branch on representation or method.

    ``method`` (``"loop"`` / ``"vectorized"`` / ``"auto"``) is a
    **deprecated** shim for the pre-backend API; passing it still forces
    the named strategy but warns.
    """
    if method is not None:
        if method not in ("auto", "vectorized", "loop"):
            raise ValueError(
                f"unknown method {method!r}; expected auto, vectorized or loop"
            )
        warnings.warn(
            "djokovic_classes(method=...) is deprecated; the strategy is "
            "owned by the kernel backend (see repro.core.backend)",
            DeprecationWarning,
            stacklevel=2,
        )
    if g.n == 0:
        return np.empty(0, np.int64), []
    if not is_connected(g):
        raise NotPartialCubeError(
            "graph is disconnected; partial cubes are connected", reason="disconnected"
        )
    if bipartition_colors(g) is None:
        raise NotPartialCubeError("graph is not bipartite", reason="not-bipartite")
    if distances is None:
        distances = all_pairs_distances(g)
    if method == "loop":
        return _djokovic_classes_loop(g, distances)
    if method == "vectorized":
        return _djokovic_classes_vectorized(g, distances)
    if method == "auto":
        capped = _djokovic_classes_loop(g, distances, max_classes=MAX_LABEL_BITS + 1)
        if capped is not None:
            return capped
        return _djokovic_classes_vectorized(g, distances)
    # Imported lazily: repro.core's package __init__ imports this module,
    # so a top-level import of repro.core.backend would cycle.
    from repro.core.backend import current_backend

    return current_backend().djokovic_classes(g, distances)


def _djokovic_classes_vectorized(g: Graph, distances: np.ndarray):
    """Batched class computation: one ``(m, n)`` side matrix, row grouping.

    Row ``e`` of the side matrix answers ``d(vs[e], u) < d(us[e], u)`` for
    every vertex ``u`` at once -- the paper's side test batched over all
    edges simultaneously instead of one BFS comparison per class.  Edges
    of one Djokovic class have identical rows up to complement, so classes
    fall out of grouping canonicalized rows; the partition property
    (step 3 of §3) reduces to each class's crossing set matching its row
    group exactly.
    """
    us, vs, _ = g.edge_arrays()
    m = us.shape[0]
    if m == 0:
        return np.empty(0, np.int64), []
    # int16 keeps the (m, n) gathers 4x lighter than int64; guard the
    # downcast for pathological diameters (a >32767-diameter path would
    # silently wrap and corrupt every side test).
    if distances.shape[0] and int(distances.max()) <= np.iinfo(np.int16).max:
        d16 = distances.astype(np.int16, copy=False)
    else:  # pragma: no cover - needs a diameter > 32767 graph
        d16 = distances
    side = d16[vs] < d16[us]  # (m, n); row e: True = closer to vs[e]
    # Canonicalize orientation so complementary rows compare equal: force
    # vertex 0 onto the False side of every row.
    canon = side ^ side[:, :1]
    packed = np.packbits(canon, axis=1)
    first_idx, inverse = _group_rows(packed)
    # Row groups come out in lexicographic order; renumber classes in
    # order of first appearance to match the sequential reference exactly.
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0], dtype=np.int64)
    edge_class = rank[inverse].astype(np.int64)
    reps = first_idx[order]
    classes = [(int(us[e]), int(vs[e])) for e in reps]
    # Partition check (step 3 of §3).  Every edge crosses its *own* class
    # bipartition by construction, so the cut-sets partition E iff no edge
    # crosses a second one.  Packing each vertex's per-class side bits
    # into a byte signature turns that into one popcount per edge --
    # O(m * C / 8) instead of a (C, m) crossing matrix.
    sig = np.packbits(side[reps], axis=0)  # (ceil(C/8), n)
    crossings = bitwise_count(sig[:, us] ^ sig[:, vs]).sum(axis=0)
    if np.any(crossings != 1):
        raise NotPartialCubeError(
            "Djokovic cut-sets overlap; edges do not partition into convex "
            "cut-sets",
            reason="overlapping-classes",
        )
    return edge_class, classes


def _group_rows(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group identical rows of a 2-D uint8 array.

    Returns ``(first_idx, inverse)``: the first row index of each group
    (groups in lexicographic row order) and the group id of every row.
    Equivalent to ``np.unique(packed, axis=0, ...)`` but ~30x faster: one
    memcmp-based argsort over a void view instead of numpy's generic
    axis-unique machinery.
    """
    m = packed.shape[0]
    v = np.ascontiguousarray(packed).view(np.dtype((np.void, packed.shape[1])))
    v = v.ravel()
    order = np.argsort(v, kind="stable")
    sv = v[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = sv[1:] != sv[:-1]
    gid_sorted = np.cumsum(new_group) - 1
    inverse = np.empty(m, dtype=np.int64)
    inverse[order] = gid_sorted
    n_groups = int(gid_sorted[-1]) + 1
    first_idx = np.full(n_groups, m, dtype=np.int64)
    np.minimum.at(first_idx, inverse, np.arange(m, dtype=np.int64))
    return first_idx, inverse


def _djokovic_classes_loop(
    g: Graph, distances: np.ndarray, max_classes: int | None = None
):
    """The original one-class-at-a-time reference implementation.

    When ``max_classes`` is given and a ``(max_classes + 1)``-th class
    would be created, returns ``None`` so the caller can switch to the
    fully batched implementation (the loop is quadratic when every edge
    is its own class).
    """
    us, vs, _ = g.edge_arrays()
    m = us.shape[0]
    edge_class = np.full(m, -1, dtype=np.int64)
    classes: list[tuple[int, int]] = []
    for e_idx in range(m):
        if edge_class[e_idx] >= 0:
            continue
        if max_classes is not None and len(classes) >= max_classes:
            return None
        x, y = int(us[e_idx]), int(vs[e_idx])
        side_y = distances[y] < distances[x]  # True = closer to y (the "1" side)
        # Bipartite => no vertex is equidistant from the endpoints of an edge.
        crossing = side_y[us] != side_y[vs]
        conflict = crossing & (edge_class >= 0)
        if conflict.any():
            raise NotPartialCubeError(
                "Djokovic cut-sets overlap; edges do not partition into convex "
                "cut-sets",
                reason="overlapping-classes",
            )
        j = len(classes)
        edge_class[crossing] = j
        classes.append((x, y))
    return edge_class, classes


def _assemble_cut_edges(edge_class, us, vs, dim: int) -> tuple:
    """Per-class ``(k, 2)`` endpoint arrays from per-edge class indices.

    The stable argsort keeps edges in their original order within each
    class -- both the fresh recognition path and the cache-rebuild path
    (:func:`cut_edges_from_labels`) go through this exact assembly, so a
    labeling loaded from disk yields byte-identical cut-edge arrays.
    """
    by_class = np.argsort(edge_class, kind="stable")
    splits = np.searchsorted(edge_class[by_class], np.arange(1, dim))
    return tuple(
        np.stack([us[members], vs[members]], axis=1)
        for members in np.split(by_class, splits)
    )


def cut_edges_from_labels(labels, dim: int, us, vs) -> tuple:
    """Rebuild the per-class cut-edge arrays from the labeling alone.

    Class ``j`` is, by construction, exactly the set of edges whose
    endpoint labels differ in bit ``j`` -- so ``cut_edges`` is fully
    derived data and the disk cache stores only ``labels``/``dim``.
    Accepts both label representations (packed ``int64`` vector for
    ``dim <= 63``, wide ``(n, W)`` ``uint64`` matrix beyond); the
    power-of-two ``log2`` recovery is exact in float64 up to ``2**63``.

    Raises ``ValueError`` when the labels are not a valid partial-cube
    labeling of these edges (an endpoint pair differing in zero or
    several bits) -- corrupt cache entries must fail loudly here so the
    loader can degrade to a recompute.
    """
    if not dim:
        return ()
    labels = np.asarray(labels)
    us = np.asarray(us)
    vs = np.asarray(vs)
    if labels.ndim == 1:
        diff = (labels[us] ^ labels[vs]).astype(np.uint64)
        if (diff == 0).any() or (diff & (diff - np.uint64(1))).any():
            raise ValueError(
                "labels are not a partial-cube labeling of these edges"
            )
        edge_class = np.log2(diff.astype(np.float64)).astype(np.int64)
    else:
        diff = labels[us] ^ labels[vs]  # (m, W) uint64 words
        nonzero = diff != 0
        if (nonzero.sum(axis=1) != 1).any():
            raise ValueError(
                "labels are not a partial-cube labeling of these edges"
            )
        word = np.argmax(nonzero, axis=1)
        bits = diff[np.arange(diff.shape[0]), word]
        if (bits & (bits - np.uint64(1))).any():
            raise ValueError(
                "labels are not a partial-cube labeling of these edges"
            )
        edge_class = 64 * word.astype(np.int64) + np.log2(
            bits.astype(np.float64)
        ).astype(np.int64)
    if edge_class.size and int(edge_class.max()) >= dim:
        raise ValueError(f"edge class exceeds labeling dimension {dim}")
    return _assemble_cut_edges(edge_class, us, vs, dim)


def partial_cube_labeling(g: Graph, verify: bool = True) -> PartialCubeLabeling:
    """Recognize ``g`` as a partial cube and return its Hamming labeling.

    Parameters
    ----------
    g:
        candidate processor graph.
    verify:
        when True (default), additionally check the labeling is isometric
        (distance == Hamming for *all* vertex pairs).  The Djokovic
        partition test is the paper's criterion; the verification pass
        turns silent miscomputations into loud errors at negligible cost
        for ``n <= ~2000``.

    Labels come back narrow (packed ``int64``) for ``dim <= 63`` --
    byte-identical to the historical representation -- and wide
    (``(n, W)`` ``uint64``) beyond, so any partial cube labels now,
    including trees with hundreds of vertices.
    """
    if g.n == 0:
        raise NotPartialCubeError("empty graph has no labeling", reason="empty")
    distances = all_pairs_distances(g)
    edge_class, classes = djokovic_classes(g, distances)
    dim = len(classes)
    us, vs, _ = g.edge_arrays()
    if dim:
        # All side tests d(x, u) vs d(y, u) batched over vertices x classes.
        xs = np.fromiter((x for x, _ in classes), dtype=np.int64, count=dim)
        ys = np.fromiter((y for _, y in classes), dtype=np.int64, count=dim)
        on_y_side = distances[ys] < distances[xs]  # (dim, n)
        if dim <= MAX_LABEL_BITS:
            shifts = np.int64(1) << np.arange(dim, dtype=np.int64)
            labels = (on_y_side.astype(np.int64) * shifts[:, None]).sum(axis=0)
        else:
            labels = pack_bit_matrix(on_y_side.T)
        cut_edges = _assemble_cut_edges(edge_class, us, vs, dim)
    else:
        labels = np.zeros(g.n, dtype=np.int64)
        cut_edges = ()
    result = PartialCubeLabeling(labels=labels, dim=dim, cut_edges=cut_edges)
    if verify:
        # Backend-dispatched in both representations (compiled SWAR loop
        # on the numba tiers; the numpy reference is unchanged).
        ham = pairwise_hamming(labels)
        if not np.array_equal(ham, distances):
            raise NotPartialCubeError(
                "labeling is not isometric: Hamming distance disagrees with "
                "graph distance",
                reason="not-isometric",
            )
    return result


def is_partial_cube(g: Graph) -> bool:
    """True iff ``g`` is a (connected) partial cube."""
    try:
        partial_cube_labeling(g)
        return True
    except NotPartialCubeError:
        return False
