"""Partial-cube recognition and labeling via the Djokovic relation.

Implements the paper's §3 procedure:

1. check bipartiteness (non-bipartite graphs are never partial cubes);
2. repeatedly pick an unclassified edge ``e = {x, y}`` and compute its
   Djokovic class: all edges ``f`` with exactly one endpoint closer to
   ``x`` than to ``y``.  For bipartite graphs this equals the cut-set of
   the vertex bipartition ``(W_xy, W_yx)``;
3. if a class overlaps a previously computed class, the cut-sets do not
   partition ``E`` and the graph is not a partial cube;
4. while computing class ``j``, set bit ``j`` of every vertex label to 0
   iff the vertex lies on the ``x`` side (Eq. 5);
5. finally verify ``d_G(u, v) == Hamming(l(u), l(v))`` for all pairs --
   cheap at processor-graph scale and makes recognition sound rather than
   merely heuristic.

Labels are packed into ``int64``: Djokovic class ``j`` occupies bit ``j``.
The packed convention supports graphs with at most 63 classes, which
covers every topology in the paper (the 16x16 torus is the largest with
32).  :func:`djokovic_classes` also returns the raw class structure for
graphs beyond the packing limit (e.g. large trees).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotPartialCubeError
from repro.graphs.algorithms import all_pairs_distances, bipartition_colors, is_connected
from repro.graphs.graph import Graph
from repro.utils.bitops import MAX_LABEL_BITS, bitwise_count


@dataclass(frozen=True)
class PartialCubeLabeling:
    """A Hamming labeling of a partial cube.

    Attributes
    ----------
    labels:
        ``int64`` array, one packed bitvector per vertex; bit ``j`` is the
    side of Djokovic class ``j``.
    dim:
        number of Djokovic classes (= isometric dimension of the graph).
    cut_edges:
        for each class ``j``, the ``(k_j, 2)`` array of cut-set edges --
        the paper's convex cuts, kept for inspection and testing.
    """

    labels: np.ndarray
    dim: int
    cut_edges: tuple = field(default_factory=tuple, repr=False)

    @property
    def n(self) -> int:
        return int(self.labels.shape[0])

    def side(self, j: int) -> np.ndarray:
        """Boolean array: which vertices have bit ``j`` set."""
        if not (0 <= j < self.dim):
            raise IndexError(f"class {j} out of range [0, {self.dim})")
        return ((self.labels >> j) & 1).astype(bool)

    def as_bit_matrix(self) -> np.ndarray:
        """``(n, dim)`` 0/1 matrix; column ``j`` = class ``j``."""
        shifts = np.arange(self.dim, dtype=np.int64)
        return ((self.labels[:, None] >> shifts[None, :]) & 1).astype(np.int8)


def djokovic_classes(
    g: Graph, distances: np.ndarray | None = None, method: str = "auto"
):
    """Compute the Djokovic classes of a connected bipartite graph.

    Returns ``(edge_class, classes)`` where ``edge_class`` assigns every
    undirected edge (in ``g.edge_arrays()`` order) a class id and
    ``classes`` is a list of ``(x, y)`` representative edges.  Raises
    :class:`NotPartialCubeError` if classes overlap (step 3 of §3) or the
    graph is not bipartite / not connected.

    ``method`` picks the implementation; all three produce identical
    output on partial cubes:

    - ``"loop"``: one class at a time, side tests batched over all
      vertices per class -- ``O(C * (n + m))``, unbeatable when the class
      count ``C`` is small (every packed-labeling use has ``C <= 63``).
    - ``"vectorized"``: all side tests as one ``(m, n)`` comparison with
      row grouping -- ``O(m * n)`` regardless of ``C``, which wins when
      ``C`` approaches ``m`` (e.g. trees, where every edge is a class).
    - ``"auto"`` (default): run the loop capped at 64 classes and fall
      back to the full batch if the cap is hit, getting the better
      complexity on both regimes.
    """
    if method not in ("auto", "vectorized", "loop"):
        raise ValueError(
            f"unknown method {method!r}; expected auto, vectorized or loop"
        )
    if g.n == 0:
        return np.empty(0, np.int64), []
    if not is_connected(g):
        raise NotPartialCubeError(
            "graph is disconnected; partial cubes are connected", reason="disconnected"
        )
    if bipartition_colors(g) is None:
        raise NotPartialCubeError("graph is not bipartite", reason="not-bipartite")
    if distances is None:
        distances = all_pairs_distances(g)
    if method == "loop":
        return _djokovic_classes_loop(g, distances)
    if method == "vectorized":
        return _djokovic_classes_vectorized(g, distances)
    capped = _djokovic_classes_loop(g, distances, max_classes=MAX_LABEL_BITS + 1)
    if capped is not None:
        return capped
    return _djokovic_classes_vectorized(g, distances)


def _djokovic_classes_vectorized(g: Graph, distances: np.ndarray):
    """Batched class computation: one ``(m, n)`` side matrix, row grouping.

    Row ``e`` of the side matrix answers ``d(vs[e], u) < d(us[e], u)`` for
    every vertex ``u`` at once -- the paper's side test batched over all
    edges simultaneously instead of one BFS comparison per class.  Edges
    of one Djokovic class have identical rows up to complement, so classes
    fall out of grouping canonicalized rows; the partition property
    (step 3 of §3) reduces to each class's crossing set matching its row
    group exactly.
    """
    us, vs, _ = g.edge_arrays()
    m = us.shape[0]
    if m == 0:
        return np.empty(0, np.int64), []
    # int16 keeps the (m, n) gathers 4x lighter than int64; guard the
    # downcast for pathological diameters (a >32767-diameter path would
    # silently wrap and corrupt every side test).
    if distances.shape[0] and int(distances.max()) <= np.iinfo(np.int16).max:
        d16 = distances.astype(np.int16, copy=False)
    else:  # pragma: no cover - needs a diameter > 32767 graph
        d16 = distances
    side = d16[vs] < d16[us]  # (m, n); row e: True = closer to vs[e]
    # Canonicalize orientation so complementary rows compare equal: force
    # vertex 0 onto the False side of every row.
    canon = side ^ side[:, :1]
    packed = np.packbits(canon, axis=1)
    first_idx, inverse = _group_rows(packed)
    # Row groups come out in lexicographic order; renumber classes in
    # order of first appearance to match the sequential reference exactly.
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0], dtype=np.int64)
    edge_class = rank[inverse].astype(np.int64)
    reps = first_idx[order]
    classes = [(int(us[e]), int(vs[e])) for e in reps]
    # Partition check (step 3 of §3).  Every edge crosses its *own* class
    # bipartition by construction, so the cut-sets partition E iff no edge
    # crosses a second one.  Packing each vertex's per-class side bits
    # into a byte signature turns that into one popcount per edge --
    # O(m * C / 8) instead of a (C, m) crossing matrix.
    sig = np.packbits(side[reps], axis=0)  # (ceil(C/8), n)
    crossings = bitwise_count(sig[:, us] ^ sig[:, vs]).sum(axis=0)
    if np.any(crossings != 1):
        raise NotPartialCubeError(
            "Djokovic cut-sets overlap; edges do not partition into convex "
            "cut-sets",
            reason="overlapping-classes",
        )
    return edge_class, classes


def _group_rows(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group identical rows of a 2-D uint8 array.

    Returns ``(first_idx, inverse)``: the first row index of each group
    (groups in lexicographic row order) and the group id of every row.
    Equivalent to ``np.unique(packed, axis=0, ...)`` but ~30x faster: one
    memcmp-based argsort over a void view instead of numpy's generic
    axis-unique machinery.
    """
    m = packed.shape[0]
    v = np.ascontiguousarray(packed).view(np.dtype((np.void, packed.shape[1])))
    v = v.ravel()
    order = np.argsort(v, kind="stable")
    sv = v[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = sv[1:] != sv[:-1]
    gid_sorted = np.cumsum(new_group) - 1
    inverse = np.empty(m, dtype=np.int64)
    inverse[order] = gid_sorted
    n_groups = int(gid_sorted[-1]) + 1
    first_idx = np.full(n_groups, m, dtype=np.int64)
    np.minimum.at(first_idx, inverse, np.arange(m, dtype=np.int64))
    return first_idx, inverse


def _djokovic_classes_loop(
    g: Graph, distances: np.ndarray, max_classes: int | None = None
):
    """The original one-class-at-a-time reference implementation.

    When ``max_classes`` is given and a ``(max_classes + 1)``-th class
    would be created, returns ``None`` so the caller can switch to the
    fully batched implementation (the loop is quadratic when every edge
    is its own class).
    """
    us, vs, _ = g.edge_arrays()
    m = us.shape[0]
    edge_class = np.full(m, -1, dtype=np.int64)
    classes: list[tuple[int, int]] = []
    for e_idx in range(m):
        if edge_class[e_idx] >= 0:
            continue
        if max_classes is not None and len(classes) >= max_classes:
            return None
        x, y = int(us[e_idx]), int(vs[e_idx])
        side_y = distances[y] < distances[x]  # True = closer to y (the "1" side)
        # Bipartite => no vertex is equidistant from the endpoints of an edge.
        crossing = side_y[us] != side_y[vs]
        conflict = crossing & (edge_class >= 0)
        if conflict.any():
            raise NotPartialCubeError(
                "Djokovic cut-sets overlap; edges do not partition into convex "
                "cut-sets",
                reason="overlapping-classes",
            )
        j = len(classes)
        edge_class[crossing] = j
        classes.append((x, y))
    return edge_class, classes


def partial_cube_labeling(g: Graph, verify: bool = True) -> PartialCubeLabeling:
    """Recognize ``g`` as a partial cube and return its Hamming labeling.

    Parameters
    ----------
    g:
        candidate processor graph.
    verify:
        when True (default), additionally check the labeling is isometric
        (distance == Hamming for *all* vertex pairs).  The Djokovic
        partition test is the paper's criterion; the verification pass
        turns silent miscomputations into loud errors at negligible cost
        for ``n <= ~2000``.
    """
    if g.n == 0:
        raise NotPartialCubeError("empty graph has no labeling", reason="empty")
    # Early cap check: a connected graph with m == n - 1 is a tree, and
    # every tree edge is its own Djokovic class, so the isometric
    # dimension is m.  Failing *before* the O(n * m) all-pairs BFS turns
    # an expensive late surprise (e.g. a 127-switch fat-tree) into an
    # instant, explicit error instead of a silent path toward packed-bit
    # overflow.
    if g.m == g.n - 1 and g.m > MAX_LABEL_BITS and is_connected(g):
        raise NotPartialCubeError(
            f"tree with {g.m} edges has isometric dimension {g.m}, beyond "
            f"the packed-label limit of {MAX_LABEL_BITS} classes (labels "
            f"are packed into int64); trees are capped at "
            f"{MAX_LABEL_BITS + 1} vertices -- use djokovic_classes() for "
            f"the raw class structure",
            reason="dimension-too-large",
        )
    distances = all_pairs_distances(g)
    edge_class, classes = djokovic_classes(g, distances)
    dim = len(classes)
    if dim > MAX_LABEL_BITS:
        raise NotPartialCubeError(
            f"isometric dimension {dim} exceeds packed-label limit "
            f"{MAX_LABEL_BITS}; use djokovic_classes() directly",
            reason="dimension-too-large",
        )
    us, vs, _ = g.edge_arrays()
    if dim:
        # All side tests d(x, u) vs d(y, u) batched over vertices x classes.
        xs = np.fromiter((x for x, _ in classes), dtype=np.int64, count=dim)
        ys = np.fromiter((y for _, y in classes), dtype=np.int64, count=dim)
        on_y_side = distances[ys] < distances[xs]  # (dim, n)
        shifts = np.int64(1) << np.arange(dim, dtype=np.int64)
        labels = (on_y_side.astype(np.int64) * shifts[:, None]).sum(axis=0)
        by_class = np.argsort(edge_class, kind="stable")
        splits = np.searchsorted(edge_class[by_class], np.arange(1, dim))
        cut_edges = tuple(
            np.stack([us[members], vs[members]], axis=1)
            for members in np.split(by_class, splits)
        )
    else:
        labels = np.zeros(g.n, dtype=np.int64)
        cut_edges = ()
    result = PartialCubeLabeling(labels=labels, dim=dim, cut_edges=cut_edges)
    if verify:
        xor = labels[:, None] ^ labels[None, :]
        ham = bitwise_count(xor)
        if not np.array_equal(ham, distances):
            raise NotPartialCubeError(
                "labeling is not isometric: Hamming distance disagrees with "
                "graph distance",
                reason="not-isometric",
            )
    return result


def is_partial_cube(g: Graph) -> bool:
    """True iff ``g`` is a (connected) partial cube with <= 63 classes."""
    try:
        partial_cube_labeling(g)
        return True
    except NotPartialCubeError:
        return False
