"""Permutation-induced hierarchies on labeled vertex sets (paper §2).

For a partial-cube labeling ``l`` of dimension ``d`` and a permutation
``pi`` of the label positions, the equivalence relations

    u ~_{pi,i} v  <=>  the permuted labels agree on the first i positions

produce a chain of increasingly fine partitions ``P_1, ..., P_d``
(Figure 2 shows the two opposite hierarchies of the 4-D hypercube).  TIMER
exploits exactly these hierarchies, built on the *application* graph's
labels; this module provides the standalone object for inspection, tests
and the Figure 2 demo.

Position convention: the paper reads labels left to right, entry 1 first.
We store labels packed LSB-first per Djokovic class, so "the first i
positions" of the paper correspond to the ``i`` *highest* bits here once a
display width is fixed.  :class:`LabelHierarchy` works purely on permuted
digit sequences, so the caller chooses the convention via ``perm``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitops import MAX_LABEL_BITS, get_label_bit
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class LabelHierarchy:
    """A chain of partitions of ``range(n)`` induced by label prefixes.

    ``group_ids[i]`` (for ``i`` in ``1..dim``) is an ``int64`` array giving
    each vertex an id for the first ``i`` permuted label entries; equal
    value = same part of partition ``P_i``, and sorting by value sorts by
    prefix.  ``group_ids[0]`` is all zeros (the single root part).

    While ``i <= 63`` the id *is* the integer prefix itself (the
    historical convention, which :meth:`parent_of_part` relies on); for
    deeper levels -- possible now that labels may exceed 63 bits -- the
    ids switch to order-preserving dense ranks, since the prefixes no
    longer fit an int64.
    """

    dim: int
    group_ids: tuple

    @property
    def n(self) -> int:
        return int(self.group_ids[0].shape[0])

    def partition(self, i: int) -> list[np.ndarray]:
        """Parts of ``P_i`` as arrays of vertex ids (sorted by prefix)."""
        if not (0 <= i <= self.dim):
            raise IndexError(f"level {i} out of range [0, {self.dim}]")
        gid = self.group_ids[i]
        order = np.argsort(gid, kind="stable")
        sorted_ids = gid[order]
        boundaries = np.nonzero(np.diff(sorted_ids))[0] + 1
        return [part for part in np.split(order, boundaries)]

    def n_parts(self, i: int) -> int:
        return int(np.unique(self.group_ids[i]).shape[0])

    def parent_of_part(self, i: int, prefix: int) -> int:
        """Prefix of the parent part at level ``i - 1``.

        Only meaningful while group ids are literal prefixes
        (``i - 1 <= 63``); beyond that depth ids are dense ranks and the
        parent relation lives in the contraction machinery instead.
        """
        if i < 1:
            raise IndexError("level 0 is the root")
        if i > MAX_LABEL_BITS:
            raise IndexError(
                f"level {i} group ids are dense ranks, not prefixes; "
                f"parent_of_part only applies up to level {MAX_LABEL_BITS}"
            )
        return prefix >> 1


def hierarchy_from_permutation(
    labels: np.ndarray, dim: int, perm: np.ndarray | None = None, seed: SeedLike = None
) -> LabelHierarchy:
    """Build the hierarchy for ``perm`` (paper Eq. 4).

    Parameters
    ----------
    labels:
        packed labels, narrow 1-D ``int64`` or wide ``(n, W)`` ``uint64``
        (bit ``j`` = label entry for class ``j``).
    dim:
        label width in bits.
    perm:
        permutation of ``range(dim)``; position ``i`` of the permuted label
        is bit ``perm[i]`` of the packed label.  ``perm[0]`` is the paper's
        *first* (coarsest / most significant) entry.  ``None`` draws a
        uniformly random permutation from ``seed``.
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        labels = labels.astype(np.int64, copy=False)
    if perm is None:
        perm = make_rng(seed).permutation(dim)
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (dim,) or not np.array_equal(np.sort(perm), np.arange(dim)):
        raise ValueError(f"perm must be a permutation of range({dim})")
    group_ids = [np.zeros(labels.shape[0], dtype=np.int64)]
    for i in range(dim):
        bit = get_label_bit(labels, int(perm[i]))
        if i < MAX_LABEL_BITS:
            # Historical convention: the id is the prefix value itself
            # (fits int64 while the prefix has at most 63 bits).
            group_ids.append((group_ids[-1] << 1) | bit)
        else:
            # Prefixes no longer fit an int64; keep order-preserving
            # dense ranks instead (equal rank <=> equal prefix, and rank
            # order == prefix order because the parent ids are already
            # sorted the same way).  Densify the last value-based level
            # once before extending it.
            prev = group_ids[-1]
            if i == MAX_LABEL_BITS:
                _, prev = np.unique(prev, return_inverse=True)
            key = prev * 2 + bit
            _, inverse = np.unique(key, return_inverse=True)
            group_ids.append(inverse.astype(np.int64))
    return LabelHierarchy(dim=dim, group_ids=tuple(group_ids))


def identity_permutation(dim: int) -> np.ndarray:
    """The paper's ``id`` hierarchy: entry 1 = packed bit ``dim - 1``.

    With our LSB-per-class packing, reading entries left to right means
    scanning bits from most significant downward.
    """
    return np.arange(dim - 1, -1, -1, dtype=np.int64)


def opposite_permutation(dim: int) -> np.ndarray:
    """The paper's reversed hierarchy ``pi(j) = dim + 1 - j`` (Figure 2)."""
    return np.arange(dim, dtype=np.int64)
