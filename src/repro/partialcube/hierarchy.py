"""Permutation-induced hierarchies on labeled vertex sets (paper §2).

For a partial-cube labeling ``l`` of dimension ``d`` and a permutation
``pi`` of the label positions, the equivalence relations

    u ~_{pi,i} v  <=>  the permuted labels agree on the first i positions

produce a chain of increasingly fine partitions ``P_1, ..., P_d``
(Figure 2 shows the two opposite hierarchies of the 4-D hypercube).  TIMER
exploits exactly these hierarchies, built on the *application* graph's
labels; this module provides the standalone object for inspection, tests
and the Figure 2 demo.

Position convention: the paper reads labels left to right, entry 1 first.
We store labels packed LSB-first per Djokovic class, so "the first i
positions" of the paper correspond to the ``i`` *highest* bits here once a
display width is fixed.  :class:`LabelHierarchy` works purely on permuted
digit sequences, so the caller chooses the convention via ``perm``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class LabelHierarchy:
    """A chain of partitions of ``range(n)`` induced by label prefixes.

    ``group_ids[i]`` (for ``i`` in ``1..dim``) is an ``int64`` array giving
    each vertex the integer formed by the first ``i`` permuted label
    entries; equal value = same part of partition ``P_i``.  ``group_ids[0]``
    is all zeros (the single root part).
    """

    dim: int
    group_ids: tuple

    @property
    def n(self) -> int:
        return int(self.group_ids[0].shape[0])

    def partition(self, i: int) -> list[np.ndarray]:
        """Parts of ``P_i`` as arrays of vertex ids (sorted by prefix)."""
        if not (0 <= i <= self.dim):
            raise IndexError(f"level {i} out of range [0, {self.dim}]")
        gid = self.group_ids[i]
        order = np.argsort(gid, kind="stable")
        sorted_ids = gid[order]
        boundaries = np.nonzero(np.diff(sorted_ids))[0] + 1
        return [part for part in np.split(order, boundaries)]

    def n_parts(self, i: int) -> int:
        return int(np.unique(self.group_ids[i]).shape[0])

    def parent_of_part(self, i: int, prefix: int) -> int:
        """Prefix of the parent part at level ``i - 1``."""
        if i < 1:
            raise IndexError("level 0 is the root")
        return prefix >> 1


def hierarchy_from_permutation(
    labels: np.ndarray, dim: int, perm: np.ndarray | None = None, seed: SeedLike = None
) -> LabelHierarchy:
    """Build the hierarchy for ``perm`` (paper Eq. 4).

    Parameters
    ----------
    labels:
        packed ``int64`` labels (bit ``j`` = label entry for class ``j``).
    dim:
        label width in bits.
    perm:
        permutation of ``range(dim)``; position ``i`` of the permuted label
        is bit ``perm[i]`` of the packed label.  ``perm[0]`` is the paper's
        *first* (coarsest / most significant) entry.  ``None`` draws a
        uniformly random permutation from ``seed``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if perm is None:
        perm = make_rng(seed).permutation(dim)
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (dim,) or not np.array_equal(np.sort(perm), np.arange(dim)):
        raise ValueError(f"perm must be a permutation of range({dim})")
    group_ids = [np.zeros(labels.shape[0], dtype=np.int64)]
    for i in range(dim):
        bit = (labels >> int(perm[i])) & 1
        group_ids.append((group_ids[-1] << 1) | bit)
    return LabelHierarchy(dim=dim, group_ids=tuple(group_ids))


def identity_permutation(dim: int) -> np.ndarray:
    """The paper's ``id`` hierarchy: entry 1 = packed bit ``dim - 1``.

    With our LSB-per-class packing, reading entries left to right means
    scanning bits from most significant downward.
    """
    return np.arange(dim - 1, -1, -1, dtype=np.int64)


def opposite_permutation(dim: int) -> np.ndarray:
    """The paper's reversed hierarchy ``pi(j) = dim + 1 - j`` (Figure 2)."""
    return np.arange(dim, dtype=np.int64)
