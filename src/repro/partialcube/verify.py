"""Exhaustive verification of Hamming labelings.

Split out from recognition so property-based tests (and users bringing
their own labelings, e.g. hand-crafted topology descriptions) can validate
against Definition 2.2 directly.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.algorithms import all_pairs_distances
from repro.graphs.graph import Graph
from repro.utils.bitops import pairwise_hamming


def labeling_distance_error(g: Graph, labels: np.ndarray) -> int:
    """Number of vertex pairs where Hamming != graph distance.

    0 means ``labels`` is a valid partial-cube labeling of ``g`` (provided
    the graph is connected; disconnected pairs have distance -1 and always
    count as errors).  Accepts both label representations: narrow 1-D
    ``int64`` and wide ``(n, W)`` ``uint64``.
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        labels = labels.astype(np.int64, copy=False)
    if labels.shape[0] != g.n or labels.ndim > 2:
        raise ValueError(
            f"labels must have shape ({g.n},) or ({g.n}, W), got {labels.shape}"
        )
    dist = all_pairs_distances(g)
    ham = pairwise_hamming(labels)
    return int((ham != dist).sum()) // 2 + int(np.diag(ham != dist).sum())


def verify_labeling(g: Graph, labels: np.ndarray) -> bool:
    """True iff Hamming distance between labels equals graph distance."""
    return labeling_distance_error(g, labels) == 0
