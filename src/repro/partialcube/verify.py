"""Exhaustive verification of Hamming labelings.

Split out from recognition so property-based tests (and users bringing
their own labelings, e.g. hand-crafted topology descriptions) can validate
against Definition 2.2 directly.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.algorithms import all_pairs_distances
from repro.graphs.graph import Graph
from repro.utils.bitops import bitwise_count


def labeling_distance_error(g: Graph, labels: np.ndarray) -> int:
    """Number of vertex pairs where Hamming != graph distance.

    0 means ``labels`` is a valid partial-cube labeling of ``g`` (provided
    the graph is connected; disconnected pairs have distance -1 and always
    count as errors).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (g.n,):
        raise ValueError(f"labels must have shape ({g.n},), got {labels.shape}")
    dist = all_pairs_distances(g)
    ham = bitwise_count(labels[:, None] ^ labels[None, :])
    return int((ham != dist).sum()) // 2 + int(np.diag(ham != dist).sum())


def verify_labeling(g: Graph, labels: np.ndarray) -> bool:
    """True iff Hamming distance between labels equals graph distance."""
    return labeling_distance_error(g, labels) == 0
