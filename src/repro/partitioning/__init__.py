"""Multilevel graph partitioning (the repo's KaHIP stand-in).

The paper obtains its initial solutions by partitioning ``G_a`` into
``|V_p|`` balanced blocks with KaHIP and mapping blocks to PEs.  This
package implements the same algorithmic family from scratch:

- heavy-edge matching coarsening (:mod:`~repro.partitioning.matching`,
  :mod:`~repro.partitioning.coarsen`),
- greedy graph-growing initial bisection (:mod:`~repro.partitioning.initial`),
- Fiduccia-Mattheyses refinement with balance constraint
  (:mod:`~repro.partitioning.fm`),
- a multilevel 2-way driver (:mod:`~repro.partitioning.multilevel`) and
  recursive bisection for k-way (:mod:`~repro.partitioning.kway`).

Entry point: :func:`partition_kway`.
"""

from repro.partitioning.partition import Partition
from repro.partitioning.kway import partition_kway
from repro.partitioning.multilevel import bisect_multilevel
from repro.partitioning.metrics import edge_cut, imbalance, block_weights

__all__ = [
    "Partition",
    "partition_kway",
    "bisect_multilevel",
    "edge_cut",
    "imbalance",
    "block_weights",
]
