"""Graph contraction for the multilevel partitioner.

:func:`contract_graph` collapses groups of vertices given a fine->coarse
map: parallel edges merge by weight summation, intra-group edges vanish,
vertex weights add up.  The same primitive serves the partitioner (with
matchings) and the mapping layer (building communication graphs from
partitions), so it lives here once and is reused.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.builder import from_arrays
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class CoarseLevel:
    """One level of a multilevel hierarchy."""

    fine: Graph
    coarse: Graph
    coarse_of: np.ndarray  # fine vertex -> coarse vertex


def contract_graph(g: Graph, coarse_of: np.ndarray, n_coarse: int, name: str = "") -> Graph:
    """Contract ``g`` along ``coarse_of`` (values in ``range(n_coarse)``)."""
    coarse_of = np.asarray(coarse_of, dtype=np.int64)
    if coarse_of.shape != (g.n,):
        raise ValueError(f"coarse_of must have shape ({g.n},)")
    us, vs, ws = g.edge_arrays()
    cu, cv = coarse_of[us], coarse_of[vs]
    keep = cu != cv
    vertex_weights = np.zeros(n_coarse, dtype=np.float64)
    np.add.at(vertex_weights, coarse_of, g.vertex_weights)
    return from_arrays(
        n_coarse,
        cu[keep],
        cv[keep],
        ws[keep],
        vertex_weights=vertex_weights,
        name=name or (f"{g.name}|coarse" if g.name else "coarse"),
    )


def coarsen_once(g: Graph, seed=None, max_vertex_weight: float | None = None) -> CoarseLevel:
    """One round of heavy-edge matching + contraction."""
    from repro.partitioning.matching import heavy_edge_matching, matching_to_coarse_map

    match = heavy_edge_matching(g, seed=seed, max_vertex_weight=max_vertex_weight)
    coarse_of, n_coarse = matching_to_coarse_map(match)
    coarse = contract_graph(g, coarse_of, n_coarse)
    return CoarseLevel(fine=g, coarse=coarse, coarse_of=coarse_of)


def coarsen_to_size(
    g: Graph,
    target_n: int,
    seed=None,
    max_vertex_weight: float | None = None,
    shrink_floor: float = 0.95,
) -> list[CoarseLevel]:
    """Coarsen repeatedly until ``target_n`` vertices or progress stalls.

    ``shrink_floor`` aborts when a round shrinks the graph by less than 5%
    (star-like graphs resist matching), mirroring standard multilevel
    practice.
    """
    levels: list[CoarseLevel] = []
    current = g
    from repro.utils.rng import make_rng

    rng = make_rng(seed)
    while current.n > target_n:
        level = coarsen_once(current, seed=rng, max_vertex_weight=max_vertex_weight)
        if level.coarse.n >= int(current.n * shrink_floor):
            break
        levels.append(level)
        current = level.coarse
    return levels
