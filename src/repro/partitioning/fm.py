"""Fiduccia-Mattheyses 2-way refinement.

Classic FM with a lazy-deletion heap per side: repeatedly move the
boundary vertex with the highest cut gain to the other side, subject to
the balance constraint; after a full pass, roll back to the best prefix.
Multiple passes until a pass yields no improvement.

This is the refinement engine both of the multilevel bisection
(:mod:`~repro.partitioning.multilevel`) and -- run on the communication
graph -- of the DRB mapper.  Kernighan-Lin-style swap logic is what the
paper's §6 explicitly compares TIMER against, so the implementation is
deliberately textbook.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.graph import Graph


def fm_refine(
    g: Graph,
    assignment: np.ndarray,
    max_weight: tuple[float, float],
    max_passes: int = 8,
) -> np.ndarray:
    """Refine a 2-way ``assignment`` in place-like fashion (returns a copy).

    Parameters
    ----------
    g:
        the graph.
    assignment:
        0/1 array (will not be mutated).
    max_weight:
        ``(limit_side_0, limit_side_1)``; a move to side ``s`` is allowed
        only while side ``s`` stays within ``max_weight[s]``.
    max_passes:
        upper bound on full FM passes.
    """
    assign = np.asarray(assignment, dtype=np.int64).copy()
    if g.n == 0:
        return assign
    vw = g.vertex_weights
    side_weight = np.zeros(2, dtype=np.float64)
    np.add.at(side_weight, assign, vw)

    for _ in range(max_passes):
        improved = _fm_pass(g, assign, side_weight, max_weight)
        if not improved:
            break
    return assign


def _gain(g: Graph, assign: np.ndarray, v: int) -> float:
    """Cut reduction if ``v`` switches sides: w(external) - w(internal)."""
    nbrs = g.neighbors(v)
    wts = g.incident_weights(v)
    same = assign[nbrs] == assign[v]
    return float(wts[~same].sum() - wts[same].sum())


def _fm_pass(
    g: Graph,
    assign: np.ndarray,
    side_weight: np.ndarray,
    max_weight: tuple[float, float],
) -> bool:
    n = g.n
    vw = g.vertex_weights
    locked = np.zeros(n, dtype=bool)
    # Lazy heap entries (-gain, tiebreak, v, recorded_gain).
    heap: list[tuple[float, int, int, float]] = []
    current_gain = np.full(n, np.nan)

    def push(v: int):
        gv = _gain(g, assign, v)
        current_gain[v] = gv
        heapq.heappush(heap, (-gv, v, v, gv))

    # Seed with boundary vertices only: interior moves never help first.
    us = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.indptr))
    boundary = np.zeros(n, dtype=bool)
    cross = assign[us] != assign[g.indices]
    boundary[us[cross]] = True
    for v in np.nonzero(boundary)[0]:
        push(int(v))
    if not heap:
        return False

    moves: list[int] = []
    cum_gain = 0.0
    best_prefix, best_gain = 0, 0.0
    while heap:
        neg_g, _, v, g_rec = heapq.heappop(heap)
        if locked[v] or current_gain[v] != g_rec:
            continue
        target = 1 - int(assign[v])
        if side_weight[target] + vw[v] > max_weight[target]:
            continue
        # Execute the move.
        locked[v] = True
        side_weight[int(assign[v])] -= vw[v]
        side_weight[target] += vw[v]
        assign[v] = target
        cum_gain += -neg_g
        moves.append(v)
        if cum_gain > best_gain + 1e-12:
            best_gain = cum_gain
            best_prefix = len(moves)
        for u in g.neighbors(v):
            u = int(u)
            if not locked[u]:
                push(u)

    # Roll back past the best prefix.
    for v in moves[best_prefix:]:
        side = int(assign[v])
        side_weight[side] -= vw[v]
        side_weight[1 - side] += vw[v]
        assign[v] = 1 - side
    return best_gain > 1e-12
