"""Initial bisection by greedy graph growing.

Runs on the coarsest graph of the multilevel chain: grow a region from a
random seed vertex by repeatedly absorbing the boundary vertex with the
highest (internal - external) attachment until the target weight is
reached; take the best of several attempts.  Cheap, and FM refinement on
the way back up fixes its rough edges.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, make_rng


def grow_bisection(
    g: Graph,
    target_weight_0: float,
    seed: SeedLike = None,
    attempts: int = 4,
) -> np.ndarray:
    """Bisect ``g``; side 0 receives ~``target_weight_0`` of vertex weight.

    Returns a 0/1 assignment array.  Side 0 is grown; everything else is
    side 1.  The best of ``attempts`` runs (by cut weight) wins.
    """
    if g.n == 0:
        return np.empty(0, dtype=np.int64)
    rng = make_rng(seed)
    best_assign: np.ndarray | None = None
    best_cut = np.inf
    for _ in range(max(1, attempts)):
        assign = _grow_once(g, target_weight_0, rng)
        cut = _cut_of(g, assign)
        if cut < best_cut:
            best_cut, best_assign = cut, assign
    assert best_assign is not None
    return best_assign


def _grow_once(g: Graph, target: float, rng: np.random.Generator) -> np.ndarray:
    n = g.n
    in_region = np.zeros(n, dtype=bool)
    vw = g.vertex_weights
    start = int(rng.integers(0, n))
    region_weight = 0.0
    # Max-heap on gain = (weight to region) - (weight to outside).
    heap: list[tuple[float, int, int]] = []
    stamp = 0

    def push(v: int):
        nonlocal stamp
        nbrs = g.neighbors(v)
        wts = g.incident_weights(v)
        inside = in_region[nbrs]
        gain = float(wts[inside].sum() - wts[~inside].sum())
        stamp += 1
        heapq.heappush(heap, (-gain, stamp, v))

    push(start)
    while heap and region_weight < target:
        _, _, v = heapq.heappop(heap)
        if in_region[v]:
            continue
        # Stop before overshooting badly on weighted vertices.
        if region_weight + vw[v] > target and region_weight > 0 and (
            region_weight + vw[v] - target > target - region_weight
        ):
            continue
        in_region[v] = True
        region_weight += float(vw[v])
        for u in g.neighbors(v):
            u = int(u)
            if not in_region[u]:
                push(u)
        if not heap and region_weight < target:
            outside = np.nonzero(~in_region)[0]
            if outside.size == 0:
                break
            push(int(outside[rng.integers(0, outside.size)]))
    if not in_region.any():  # degenerate: single vertex heavier than target
        in_region[start] = True
    return np.where(in_region, 0, 1).astype(np.int64)


def _cut_of(g: Graph, assign: np.ndarray) -> float:
    us, vs, ws = g.edge_arrays()
    return float(ws[assign[us] != assign[vs]].sum())


def random_bisection(
    g: Graph, target_weight_0: float, seed: SeedLike = None
) -> np.ndarray:
    """Weight-aware random bisection (baseline / fallback)."""
    rng = make_rng(seed)
    order = rng.permutation(g.n)
    assign = np.ones(g.n, dtype=np.int64)
    acc = 0.0
    for v in order:
        if acc >= target_weight_0:
            break
        assign[v] = 0
        acc += float(g.vertex_weights[v])
    return assign
