"""k-way partitioning by recursive bisection.

Splits the target block count ``k`` as evenly as possible at every step
(``k = k0 + k1`` with ``k0 = ceil(k/2)``), asks the multilevel bisector
for a cut with matching weight fractions, and recurses on the induced
subgraphs.  Blocks are numbered so that block ids follow the recursion's
left-to-right leaf order -- the property the paper's IDENTITY mapping
implicitly relies on (nearby block ids are likely to be well-connected).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.partitioning.multilevel import bisect_multilevel
from repro.partitioning.partition import Partition
from repro.partitioning.kway_refine import kway_refine
from repro.partitioning.rebalance import balance_limit, rebalance
from repro.utils.rng import SeedLike, make_rng


def partition_kway(
    g: Graph,
    k: int,
    epsilon: float = 0.03,
    seed: SeedLike = None,
    fm_passes: int = 8,
    kway_passes: int = 2,
) -> Partition:
    """Partition ``g`` into ``k`` balanced blocks (the KaHIP stand-in).

    Parameters mirror the paper's setup: ``epsilon`` defaults to the 3%
    imbalance used in all experiments.  The result always satisfies the
    paper's Eq. (1): every block weighs at most
    ``(1 + epsilon) * ceil(W / k)`` -- recursive bisection gets explicit
    per-side caps, and a final repair pass fixes any residual overload.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = make_rng(seed)
    assignment = np.zeros(g.n, dtype=np.int64)
    if k > 1 and g.n > 0:
        limit = balance_limit(g, k, epsilon)
        _recurse(
            g,
            np.arange(g.n, dtype=np.int64),
            k,
            0,
            assignment,
            limit,
            rng,
            fm_passes,
        )
    part = Partition(g, assignment, k)
    if not part.is_balanced(epsilon):
        part = rebalance(part, epsilon)
    if kway_passes > 0 and k > 1:
        part = kway_refine(part, epsilon, max_passes=kway_passes)
    return part


def _recurse(
    g_full: Graph,
    vertices: np.ndarray,
    k: int,
    first_block: int,
    assignment: np.ndarray,
    limit: float,
    rng: np.random.Generator,
    fm_passes: int,
) -> None:
    if k == 1 or vertices.size == 0:
        assignment[vertices] = first_block
        return
    sub, original_ids = g_full.subgraph(vertices)
    k0 = (k + 1) // 2
    k1 = k - k0
    frac0 = k0 / k
    # Hard caps: each side must remain packable into its block count.
    sides = bisect_multilevel(
        sub,
        weight_fraction_0=frac0,
        seed=rng,
        fm_passes=fm_passes,
        max_weight=(k0 * limit, k1 * limit),
    )
    left = original_ids[sides == 0]
    right = original_ids[sides == 1]
    # Degenerate cuts (empty side) still need progress: split arbitrarily.
    if left.size == 0 or right.size == 0:
        half = vertices.size * k0 // k
        left, right = vertices[:half], vertices[half:]
    _recurse(g_full, left, k0, first_block, assignment, limit, rng, fm_passes)
    _recurse(g_full, right, k1, first_block + k0, assignment, limit, rng, fm_passes)
