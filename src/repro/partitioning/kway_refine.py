"""Direct k-way boundary refinement.

Recursive bisection never reconsiders a cut once made; real multilevel
partitioners (KaHIP included) finish with a k-way local search.  This
module implements the standard greedy boundary refinement: repeatedly move
a boundary vertex to the adjacent block with the highest positive cut gain
that keeps the Eq. (1) balance cap, until a pass finds nothing.

Kept separate from the recursion so tests can exercise it on arbitrary
partitions and so :func:`~repro.partitioning.kway.partition_kway` can
toggle it.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.partitioning.partition import Partition
from repro.partitioning.rebalance import balance_limit


def kway_refine(
    part: Partition,
    epsilon: float,
    max_passes: int = 3,
) -> Partition:
    """Greedy k-way boundary refinement under the Eq. (1) balance cap."""
    g = part.graph
    k = part.k
    assign = part.assignment.copy()
    vw = g.vertex_weights
    limit = balance_limit(g, k, epsilon)
    bw = np.zeros(k, dtype=np.float64)
    np.add.at(bw, assign, vw)

    indptr, indices, weights = g.indptr, g.indices, g.weights
    for _ in range(max_passes):
        moved = 0
        boundary = _boundary_vertices(g, assign)
        for v in boundary:
            v = int(v)
            b = int(assign[v])
            nbrs = indices[indptr[v] : indptr[v + 1]]
            wts = weights[indptr[v] : indptr[v + 1]]
            nbr_blocks = assign[nbrs]
            if (nbr_blocks == b).all():
                continue
            # weight of edges into each adjacent block
            blocks, inv = np.unique(nbr_blocks, return_inverse=True)
            into = np.zeros(blocks.shape[0], dtype=np.float64)
            np.add.at(into, inv, wts)
            own_idx = np.nonzero(blocks == b)[0]
            own = float(into[own_idx[0]]) if own_idx.size else 0.0
            best_gain, best_t = 0.0, -1
            for t_idx, t in enumerate(blocks):
                t = int(t)
                if t == b or bw[t] + vw[v] > limit + 1e-9:
                    continue
                gain = float(into[t_idx]) - own
                if gain > best_gain + 1e-12:
                    best_gain, best_t = gain, t
            if best_t >= 0:
                bw[b] -= vw[v]
                bw[best_t] += vw[v]
                assign[v] = best_t
                moved += 1
        if moved == 0:
            break
    return Partition(g, assign, k)


def _boundary_vertices(g: Graph, assign: np.ndarray) -> np.ndarray:
    us = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.indptr))
    cross = assign[us] != assign[g.indices]
    out = np.zeros(g.n, dtype=bool)
    out[us[cross]] = True
    return np.nonzero(out)[0]
