"""Heavy-edge matching for multilevel coarsening.

The classic Karypis-Kumar heuristic: visit vertices in random order and
match each unmatched vertex with the unmatched neighbor connected by the
heaviest edge.  Heavy edges disappear inside coarse vertices, so the cut
of any coarse partition (and hence of the final partition) avoids them.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, make_rng

UNMATCHED = -1


def heavy_edge_matching(
    g: Graph,
    seed: SeedLike = None,
    max_vertex_weight: float | None = None,
) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = partner of ``v`` (or ``v`` itself).

    ``max_vertex_weight`` optionally forbids matches whose combined vertex
    weight exceeds the limit, preventing coarse vertices that could never
    fit a balanced block.
    """
    rng = make_rng(seed)
    order = rng.permutation(g.n)
    match = np.full(g.n, UNMATCHED, dtype=np.int64)
    vw = g.vertex_weights
    for v in order:
        v = int(v)
        if match[v] != UNMATCHED:
            continue
        nbrs = g.neighbors(v)
        wts = g.incident_weights(v)
        best_u, best_w = v, -1.0
        for u, w in zip(nbrs, wts):
            u = int(u)
            if match[u] != UNMATCHED or u == v:
                continue
            if max_vertex_weight is not None and vw[v] + vw[u] > max_vertex_weight:
                continue
            if w > best_w:
                best_u, best_w = u, float(w)
        match[v] = best_u
        if best_u != v:
            match[best_u] = v
    return match


def matching_to_coarse_map(match: np.ndarray) -> tuple[np.ndarray, int]:
    """Convert a matching into a fine->coarse vertex map.

    Returns ``(coarse_of, n_coarse)``; matched pairs share an id, singletons
    keep their own.  Ids are assigned in increasing order of the smaller
    endpoint, which keeps the map deterministic given the matching.
    """
    n = match.shape[0]
    coarse_of = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if coarse_of[v] >= 0:
            continue
        u = int(match[v])
        coarse_of[v] = nxt
        if u != v and u != UNMATCHED:
            coarse_of[u] = nxt
        nxt += 1
    return coarse_of, nxt
