"""Partition quality metrics as free functions.

Thin functional layer over :class:`~repro.partitioning.Partition` so the
experiment harness (and tests) can score raw assignment arrays without
building the value object.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def edge_cut(g: Graph, assignment: np.ndarray) -> float:
    """Total weight of edges crossing between blocks."""
    assignment = np.asarray(assignment, dtype=np.int64)
    us, vs, ws = g.edge_arrays()
    return float(ws[assignment[us] != assignment[vs]].sum())


def block_weights(g: Graph, assignment: np.ndarray, k: int) -> np.ndarray:
    """Vertex weight per block."""
    out = np.zeros(k, dtype=np.float64)
    np.add.at(out, np.asarray(assignment, dtype=np.int64), g.vertex_weights)
    return out


def imbalance(g: Graph, assignment: np.ndarray, k: int) -> float:
    """Relative overload of the heaviest block (0 = perfect balance)."""
    bw = block_weights(g, assignment, k)
    ideal = g.vertex_weights.sum() / k
    if ideal == 0:
        return 0.0
    return float(bw.max() / ideal - 1.0)


def boundary_vertices(g: Graph, assignment: np.ndarray) -> np.ndarray:
    """Vertices with at least one neighbor in a different block."""
    assignment = np.asarray(assignment, dtype=np.int64)
    us = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.indptr))
    cross = assignment[us] != assignment[g.indices]
    out = np.zeros(g.n, dtype=bool)
    out[us[cross]] = True
    return np.nonzero(out)[0]
