"""Multilevel 2-way partitioning driver.

coarsen (heavy-edge matching) -> initial bisection (greedy growing) ->
uncoarsen with FM refinement at every level.  This is one "V-cycle" of
the standard multilevel scheme; :mod:`~repro.partitioning.kway` composes
it recursively for k-way partitions.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.partitioning.coarsen import coarsen_to_size
from repro.partitioning.fm import fm_refine
from repro.partitioning.initial import grow_bisection
from repro.utils.rng import SeedLike, make_rng

#: stop coarsening when the graph is this small
COARSE_LIMIT = 64


def bisect_multilevel(
    g: Graph,
    weight_fraction_0: float = 0.5,
    epsilon: float = 0.03,
    seed: SeedLike = None,
    coarse_limit: int = COARSE_LIMIT,
    fm_passes: int = 8,
    max_weight: tuple[float, float] | None = None,
) -> np.ndarray:
    """Bisect ``g`` into sides 0/1 with side 0 taking ``weight_fraction_0``.

    The balance tolerance ``epsilon`` applies to both sides relative to
    their targets; an explicit ``max_weight`` pair overrides it (used by
    the k-way recursion to impose packing caps).  Returns the 0/1
    assignment array.
    """
    if not (0.0 < weight_fraction_0 < 1.0):
        raise ValueError(f"weight_fraction_0 must be in (0, 1), got {weight_fraction_0}")
    if g.n == 0:
        return np.empty(0, dtype=np.int64)
    if g.n == 1:
        return np.zeros(1, dtype=np.int64)
    rng = make_rng(seed)
    total = float(g.vertex_weights.sum())
    target0 = total * weight_fraction_0
    target1 = total - target0
    if max_weight is None:
        max_w = (target0 * (1.0 + epsilon), target1 * (1.0 + epsilon))
    else:
        max_w = (float(max_weight[0]), float(max_weight[1]))
    # Cap coarse vertex weight so a single coarse vertex cannot overflow a
    # side; 1.5x the smaller target is the usual safety margin.
    max_cv_weight = 1.5 * min(target0, target1)

    levels = coarsen_to_size(
        g, coarse_limit, seed=rng, max_vertex_weight=max_cv_weight
    )
    coarsest = levels[-1].coarse if levels else g
    assign = grow_bisection(coarsest, target0, seed=rng, attempts=4)
    assign = fm_refine(coarsest, assign, max_w, max_passes=fm_passes)
    for level in reversed(levels):
        assign = assign[level.coarse_of]  # project to the finer graph
        assign = fm_refine(level.fine, assign, max_w, max_passes=fm_passes)
    return assign
