"""The :class:`Partition` value type.

A partition of a graph's vertex set into ``k`` blocks, stored as an
assignment array.  Carries its graph to make metrics one-call and to let
the mapping layer build communication graphs without re-plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BalanceError
from repro.graphs.graph import Graph
from repro.utils.validation import as_int_array, check_assignment


@dataclass(frozen=True)
class Partition:
    """An assignment of the vertices of ``graph`` to blocks ``0..k-1``.

    ``k`` counts *declared* blocks; blocks may be empty (e.g. when a tiny
    graph is split into many blocks).
    """

    graph: Graph
    assignment: np.ndarray
    k: int

    def __post_init__(self):
        arr = as_int_array("assignment", self.assignment, self.graph.n)
        check_assignment("assignment", arr, self.k)
        object.__setattr__(self, "assignment", arr)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.graph.n

    def block_weights(self) -> np.ndarray:
        """Total vertex weight per block."""
        out = np.zeros(self.k, dtype=np.float64)
        np.add.at(out, self.assignment, self.graph.vertex_weights)
        return out

    def block_sizes(self) -> np.ndarray:
        """Vertex count per block."""
        return np.bincount(self.assignment, minlength=self.k)

    def block_members(self, b: int) -> np.ndarray:
        return np.nonzero(self.assignment == b)[0]

    def edge_cut(self) -> float:
        """Total weight of edges whose endpoints lie in different blocks."""
        us, vs, ws = self.graph.edge_arrays()
        return float(ws[self.assignment[us] != self.assignment[vs]].sum())

    def imbalance(self) -> float:
        """``max_b w(b) / (W / k) - 1`` (0 = perfectly balanced)."""
        bw = self.block_weights()
        ideal = self.graph.vertex_weights.sum() / self.k
        if ideal == 0:
            return 0.0
        return float(bw.max() / ideal - 1.0)

    def check_balance(self, epsilon: float) -> None:
        """Raise :class:`BalanceError` when Eq. (1) of the paper fails.

        The paper's constraint: every block holds at most
        ``(1 + eps) * ceil(n / k)`` vertices (unit weights).
        """
        limit = (1.0 + epsilon) * np.ceil(self.graph.vertex_weights.sum() / self.k)
        bw = self.block_weights()
        worst = int(np.argmax(bw))
        if bw[worst] > limit + 1e-9:
            raise BalanceError(
                f"block {worst} has weight {bw[worst]:.1f} > limit {limit:.1f} "
                f"(epsilon={epsilon})"
            )

    def is_balanced(self, epsilon: float) -> bool:
        try:
            self.check_balance(epsilon)
            return True
        except BalanceError:
            return False

    def with_assignment(self, assignment: np.ndarray) -> "Partition":
        return Partition(self.graph, assignment, self.k)

    def renumbered(self) -> "Partition":
        """Relabel blocks to drop empty ids (0..k'-1, first-seen order)."""
        uniq, inv = np.unique(self.assignment, return_inverse=True)
        return Partition(self.graph, inv.astype(np.int64), len(uniq))
