"""Explicit balance repair for k-way partitions.

Recursive bisection controls imbalance only multiplicatively; the paper's
balance constraint (Eq. 1) is a hard per-block cap
``(1 + eps) * ceil(W / k)``.  :func:`rebalance` enforces the cap exactly:
while any block is overloaded, it moves the boundary vertex with the least
cut damage out of the heaviest overloaded block into the lightest feasible
target block (preferring blocks it has neighbors in).

This mirrors what graph partitioners do in their final "balance" phase and
guarantees the postcondition TIMER's label machinery assumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BalanceError
from repro.graphs.graph import Graph
from repro.partitioning.partition import Partition


def balance_limit(g: Graph, k: int, epsilon: float) -> float:
    """The paper's Eq. (1) cap: ``(1 + eps) * ceil(W / k)``."""
    return (1.0 + epsilon) * float(np.ceil(g.vertex_weights.sum() / k))


def rebalance(part: Partition, epsilon: float, max_moves: int | None = None) -> Partition:
    """Return a partition satisfying Eq. (1) for ``epsilon``.

    Raises :class:`BalanceError` if no sequence of single-vertex moves can
    satisfy the cap (only possible with heavy vertex weights).
    """
    g = part.graph
    k = part.k
    limit = balance_limit(g, k, epsilon)
    assign = part.assignment.copy()
    vw = g.vertex_weights
    bw = np.zeros(k, dtype=np.float64)
    np.add.at(bw, assign, vw)
    if max_moves is None:
        max_moves = 4 * g.n

    moves = 0
    while True:
        over = np.nonzero(bw > limit + 1e-9)[0]
        if over.size == 0:
            break
        b = int(over[np.argmax(bw[over])])
        v, target = _best_move_out(g, assign, bw, b, limit, vw)
        if v < 0:
            raise BalanceError(
                f"cannot rebalance block {b} (weight {bw[b]:.1f} > {limit:.1f})"
            )
        bw[b] -= vw[v]
        bw[target] += vw[v]
        assign[v] = target
        moves += 1
        if moves > max_moves:
            raise BalanceError("rebalance move budget exhausted")
    return Partition(g, assign, k)


def _best_move_out(
    g: Graph,
    assign: np.ndarray,
    bw: np.ndarray,
    b: int,
    limit: float,
    vw: np.ndarray,
) -> tuple[int, int]:
    """Pick ``(vertex, target_block)`` minimizing cut damage.

    Damage of moving ``v`` from ``b`` to ``t``: (weight of edges into ``b``)
    minus (weight of edges into ``t``).  Falls back to the globally
    lightest block when ``v`` has no feasible neighbor block.
    """
    members = np.nonzero(assign == b)[0]
    best = (np.inf, -1, -1)  # (damage, v, target)
    lightest = int(np.argmin(bw))
    for v in members:
        v = int(v)
        nbrs = g.neighbors(v)
        wts = g.incident_weights(v)
        into_b = float(wts[assign[nbrs] == b].sum())
        # Candidate targets: neighbor blocks with room, plus the lightest.
        cand_blocks = set(int(t) for t in np.unique(assign[nbrs])) - {b}
        cand_blocks.add(lightest)
        for t in cand_blocks:
            if bw[t] + vw[v] > limit + 1e-9:
                continue
            into_t = float(wts[assign[nbrs] == t].sum())
            damage = into_b - into_t
            if damage < best[0]:
                best = (damage, v, t)
    return best[1], best[2]
