"""``repro.serve``: the pipeline as a long-running mapping service.

Layers (bottom up):

- :mod:`repro.serve.metrics` -- lock-cheap counters / gauges / latency
  histograms with JSON and Prometheus rendering;
- :mod:`repro.serve.cache` -- the two-tier topology cache (bounded
  session LRU shared with :meth:`repro.api.Topology.from_name`, npz disk
  tier behind it);
- :mod:`repro.serve.faults` -- deterministic fault-injection plans
  (worker kills, injected stage errors, latency spikes) driven by
  ``REPRO_FAULTS`` / ``--faults``;
- :mod:`repro.serve.pool` -- the supervised worker pool: crash
  detection via process sentinels, worker restart, requeue of lost
  batches, and bisection to isolate poison requests;
- :mod:`repro.serve.retry` -- bounded retries with exponential backoff
  and deterministic jitter, plus per-group circuit breakers;
- :mod:`repro.serve.scheduler` -- micro-batching with request
  coalescing, admission control, per-request deadlines and graceful
  degradation, dispatching in-process or through the supervised pool;
- :mod:`repro.serve.service` -- the asyncio JSON-over-HTTP front end
  (``/map``, ``/enhance``, ``/batch``, ``/healthz``, ``/metrics``) and
  the JSON-lines stdio mode;
- :mod:`repro.serve.loadgen` -- a deterministic open-loop load
  generator over scenario-derived request mixes.

Protocol, batching semantics and the determinism contract are
documented in ``docs/serving.md``; ``python -m repro serve`` and
``python -m repro loadgen`` are the CLI entry points, and
``benchmarks/bench_serve.py`` measures the batched-vs-unbatched
throughput and tail latency into ``BENCH_serve.json``.
"""

from repro.serve.cache import TopologyCache
from repro.serve.faults import FaultPlan, corrupt_cache_dir, corrupt_npz_file
from repro.serve.loadgen import LoadProfile, LoadReport, generate_load, run_load
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.pool import SupervisedPool
from repro.serve.retry import CircuitBreaker, RetryPolicy
from repro.serve.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    GraphSpec,
    MapRequest,
    QueueFullError,
    ServedResult,
)
from repro.serve.service import (
    MappingService,
    ServeSettings,
    ServerThread,
    build_service,
    parse_config,
    parse_request,
    run_server,
)

__all__ = [
    "TopologyCache",
    "FaultPlan",
    "corrupt_cache_dir",
    "corrupt_npz_file",
    "SupervisedPool",
    "CircuitBreaker",
    "RetryPolicy",
    "LoadProfile",
    "LoadReport",
    "generate_load",
    "run_load",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BatchScheduler",
    "DeadlineExceededError",
    "GraphSpec",
    "MapRequest",
    "QueueFullError",
    "ServedResult",
    "MappingService",
    "ServeSettings",
    "ServerThread",
    "build_service",
    "parse_config",
    "parse_request",
    "run_server",
]
