"""Cache tiers for the serving layer: response LRU -> session LRU -> disk.

Tier 0 is the :class:`ResponseCache`: finished
:class:`~repro.api.pipeline.PipelineResult` objects keyed by full run
identity ``(group key, graph content, seed, supplied-mapping tag)``.
The determinism contract -- identical identity implies a byte-identical
result -- is what makes replaying a remembered response sound: a hit
*is* the recompute, minus the compute.  The cache is bounded both by
entry count and by a byte budget (entry sizes measured as the pickled
result), because results carry ``O(n)`` mapping arrays and a hostile or
merely wide key space must not grow the heap unboundedly.

Tier 1 is the process-wide :class:`~repro.api.topology.SessionLRU`
behind :meth:`Topology.from_name` -- *the same object*, not a copy, so a
labeling lives in exactly one place in memory no matter whether a
pipeline, the CLI or the serve scheduler resolved it (the
no-double-caching contract, asserted in the tests via the
``labelings_computed`` counter).  The serving layer merely *bounds* it:
a long-running service with a wide topology matrix must not accumulate
distance matrices forever, so evictions drop the least recently served
session.

Tier 2 is the ``REPRO_LABELING_CACHE`` npz disk cache (PR 4): an evicted
session's labeling is re-read from disk on the next request instead of
being recomputed -- eviction costs one ``np.load``, not an
``O(|Ep|^2)`` recognition.  :class:`TopologyCache` can point the
environment variable at a directory for the lifetime of the service.
In a sharded deployment the disk tier is the only cross-worker state:
response and session LRUs are per process, kept hot by consistent-hash
routing (see :mod:`repro.serve.shard`).

Hit/miss/eviction counters for all tiers surface in ``/metrics``
through :meth:`TopologyCache.stats` and :meth:`ResponseCache.stats`.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.api.registry import REGISTRY, TOPOLOGY
from repro.api.topology import (
    LABELING_CACHE_ENV,
    Topology,
    labeling_stats,
    session_cache,
)
from repro.errors import ConfigurationError

#: default :class:`ResponseCache` byte budget (64 MiB)
DEFAULT_RESPONSE_CACHE_BYTES = 64 * 1024 * 1024


class ResponseCache:
    """Byte-budgeted LRU of finished pipeline results, keyed by identity.

    ``max_entries`` bounds the count, ``max_bytes`` the summed pickled
    sizes; eviction drops least-recently-used entries until both bounds
    hold.  A single result larger than the whole byte budget is simply
    not stored (it would evict everything for one key).  Either bound at
    ``0`` disables the cache entirely.

    Keys must already be backend-independent: the scheduler builds them
    from ``MapRequest.group_key()`` (which hashes
    ``PipelineConfig.identity()``, excluding ``backend`` per
    ``IDENTITY_EXCLUDED``) plus ``work_key()`` -- so two requests
    differing only in kernel backend share one entry, exactly as they
    share one batch group.
    """

    def __init__(
        self,
        max_entries: int = 128,
        max_bytes: int = DEFAULT_RESPONSE_CACHE_BYTES,
    ) -> None:
        if max_entries < 0 or max_bytes < 0:
            raise ConfigurationError(
                "max_entries and max_bytes must be >= 0"
            )
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._data: dict[tuple, tuple[object, int]] = {}
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and self.max_bytes > 0

    def get(self, key: tuple):
        """The cached result for ``key`` (recency refreshed), or ``None``."""
        entry = self._data.pop(key, None)
        if entry is None:
            self.misses += 1
            return None
        self._data[key] = entry  # re-insert = move to most recent
        self.hits += 1
        return entry[0]

    def put(self, key: tuple, result: object) -> None:
        """Remember one result; evicts LRU entries past either budget."""
        if not self.enabled:
            return
        size = len(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
        if size > self.max_bytes:
            return  # one oversized entry must not flush the whole cache
        old = self._data.pop(key, None)
        if old is not None:
            self.bytes -= old[1]
        self._data[key] = (result, size)
        self.bytes += size
        while self._data and (
            len(self._data) > self.max_entries or self.bytes > self.max_bytes
        ):
            # dicts iterate in insertion order; the first key is the
            # least recently used (get() re-inserts on hit).
            victim = next(iter(self._data))
            _result, victim_size = self._data.pop(victim)
            self.bytes -= victim_size
            self.evictions += 1

    def stats(self) -> dict:
        return {
            "entries": len(self._data),
            "bytes": self.bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._data)


#: Constructor default distinguishing "no bound requested" (leave the
#: shared LRU's current limit alone) from an explicit ``None`` ("make it
#: unbounded") -- a default-constructed facade must never silently undo
#: an operator's ``--max-sessions``.
_KEEP_LIMIT = object()


class TopologyCache:
    """Serving facade over the shared session LRU + labeling disk cache.

    ``max_sessions`` bounds tier 1: an int sets the bound, an explicit
    ``None`` makes it unbounded, and omitting it keeps whatever limit
    the process already runs with.  ``disk_dir`` enables tier 2 by
    exporting ``REPRO_LABELING_CACHE`` for this process (``None`` leaves
    the environment alone, so an operator-set value keeps working).
    """

    def __init__(
        self,
        max_sessions: "int | None | object" = _KEEP_LIMIT,
        disk_dir: str | Path | None = None,
    ) -> None:
        self.sessions = session_cache()
        if max_sessions is not _KEEP_LIMIT:
            self.sessions.set_limit(max_sessions)
        if disk_dir is not None:
            os.environ[LABELING_CACHE_ENV] = str(disk_dir)
        self._base = labeling_stats()

    def get(self, spec: str) -> Topology:
        """Resolve a topology spec through the shared caches.

        Registered names go through :meth:`Topology.from_name` (tier 1
        counted, tier 2 behind it); file paths resolve per call and are
        deliberately not cached -- a mutable file must be re-read.
        """
        if (TOPOLOGY, str(spec)) in REGISTRY:
            return Topology.from_name(str(spec))
        return Topology.from_spec(spec)

    def warm(self, names: "list[str] | tuple[str, ...]") -> None:
        """Precompute labelings for topologies the service will serve."""
        for name in names:
            self.get(name).labeling

    def stats(self) -> dict:
        """Both tiers' counters, disk traffic relative to construction."""
        disk = labeling_stats()
        return {
            "sessions": self.sessions.stats(),
            "labelings_computed": disk["computed"] - self._base["computed"],
            "disk": {
                "hits": disk["disk_hits"] - self._base["disk_hits"],
                "misses": disk["disk_misses"] - self._base["disk_misses"],
                "stores": disk["disk_stores"] - self._base["disk_stores"],
                "corrupt": disk["disk_corrupt"] - self._base["disk_corrupt"],
            },
        }
