"""Two-tier topology cache for the serving layer.

Tier 1 is the process-wide :class:`~repro.api.topology.SessionLRU`
behind :meth:`Topology.from_name` -- *the same object*, not a copy, so a
labeling lives in exactly one place in memory no matter whether a
pipeline, the CLI or the serve scheduler resolved it (the
no-double-caching contract, asserted in the tests via the
``labelings_computed`` counter).  The serving layer merely *bounds* it:
a long-running service with a wide topology matrix must not accumulate
distance matrices forever, so evictions drop the least recently served
session.

Tier 2 is the ``REPRO_LABELING_CACHE`` npz disk cache (PR 4): an evicted
session's labeling is re-read from disk on the next request instead of
being recomputed -- eviction costs one ``np.load``, not an
``O(|Ep|^2)`` recognition.  :class:`TopologyCache` can point the
environment variable at a directory for the lifetime of the service.

Hit/miss/eviction counters for both tiers surface in ``/metrics``
through :meth:`TopologyCache.stats`.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.api.registry import REGISTRY, TOPOLOGY
from repro.api.topology import (
    LABELING_CACHE_ENV,
    Topology,
    labeling_stats,
    session_cache,
)


#: Constructor default distinguishing "no bound requested" (leave the
#: shared LRU's current limit alone) from an explicit ``None`` ("make it
#: unbounded") -- a default-constructed facade must never silently undo
#: an operator's ``--max-sessions``.
_KEEP_LIMIT = object()


class TopologyCache:
    """Serving facade over the shared session LRU + labeling disk cache.

    ``max_sessions`` bounds tier 1: an int sets the bound, an explicit
    ``None`` makes it unbounded, and omitting it keeps whatever limit
    the process already runs with.  ``disk_dir`` enables tier 2 by
    exporting ``REPRO_LABELING_CACHE`` for this process (``None`` leaves
    the environment alone, so an operator-set value keeps working).
    """

    def __init__(
        self,
        max_sessions: "int | None | object" = _KEEP_LIMIT,
        disk_dir: str | Path | None = None,
    ) -> None:
        self.sessions = session_cache()
        if max_sessions is not _KEEP_LIMIT:
            self.sessions.set_limit(max_sessions)
        if disk_dir is not None:
            os.environ[LABELING_CACHE_ENV] = str(disk_dir)
        self._base = labeling_stats()

    def get(self, spec: str) -> Topology:
        """Resolve a topology spec through the shared caches.

        Registered names go through :meth:`Topology.from_name` (tier 1
        counted, tier 2 behind it); file paths resolve per call and are
        deliberately not cached -- a mutable file must be re-read.
        """
        if (TOPOLOGY, str(spec)) in REGISTRY:
            return Topology.from_name(str(spec))
        return Topology.from_spec(spec)

    def warm(self, names: "list[str] | tuple[str, ...]") -> None:
        """Precompute labelings for topologies the service will serve."""
        for name in names:
            self.get(name).labeling

    def stats(self) -> dict:
        """Both tiers' counters, disk traffic relative to construction."""
        disk = labeling_stats()
        return {
            "sessions": self.sessions.stats(),
            "labelings_computed": disk["computed"] - self._base["computed"],
            "disk": {
                "hits": disk["disk_hits"] - self._base["disk_hits"],
                "misses": disk["disk_misses"] - self._base["disk_misses"],
                "stores": disk["disk_stores"] - self._base["disk_stores"],
                "corrupt": disk["disk_corrupt"] - self._base["disk_corrupt"],
            },
        }
