"""Deterministic fault injection for chaos testing the serving tier.

A :class:`FaultPlan` is a frozen, JSON-serializable description of the
faults one process (and its pool workers) should experience: worker
kills at specific task indices, injected transient stage errors on a
fixed item cadence, latency spikes, and npz cache corruption helpers.
Everything is counter- or seed-driven -- **no wall-clock, no entropy**
-- so two runs of the same plan against the same traffic fail in the
same places, and the chaos tests can assert byte-identical surviving
payloads.

Activation crosses process boundaries through the ``REPRO_FAULTS``
environment variable (a JSON object); pool workers read it at startup,
which is how ``repro serve --faults '{...}'`` reaches the processes the
supervisor forks later.  An empty/unset variable is the (default)
no-fault plan, whose hooks all compile down to cheap no-ops.

Worker kills are *generation-scoped*: ``kill_task_indices`` only fire
in generation-0 workers (the ones the pool started with), so a
restarted worker does not immediately re-crash -- modelling "a worker
died once", which is what crash-recovery tests need.  Repeatable
crashes are modelled with ``poison_markers`` instead: any work item
whose ``repr`` contains a marker kills *every* worker that touches it,
which is exactly the shape the pool's bisection logic must isolate.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError, TransientError

#: Environment variable carrying the active plan as JSON ("" = no faults).
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code used for injected worker kills (distinguishable from real
#: crashes in supervisor logs).
KILL_EXIT_CODE = 137


@dataclass(frozen=True)
class FaultPlan:
    """One process's deterministic chaos schedule.

    Attributes
    ----------
    kill_task_indices:
        a generation-0 pool worker calls ``os._exit`` *before* running
        its ``i``-th task for each ``i`` listed (worker-local count).
    poison_markers:
        substrings matched against ``repr(item)``; a match kills the
        worker every time, in every generation -- a poison request.
    item_error_every:
        every ``n``-th item (process-local count, 1-based) raises an
        injected :class:`TransientError` instead of computing; 0 = off.
    latency_spike_s / latency_every:
        every ``n``-th task sleeps ``latency_spike_s`` seconds first.
    """

    kill_task_indices: tuple[int, ...] = ()
    poison_markers: tuple[str, ...] = ()
    item_error_every: int = 0
    latency_spike_s: float = 0.0
    latency_every: int = 0

    def __post_init__(self) -> None:
        if self.item_error_every < 0 or self.latency_every < 0:
            raise ConfigurationError(
                "item_error_every and latency_every must be >= 0"
            )
        if self.latency_spike_s < 0:
            raise ConfigurationError("latency_spike_s must be >= 0")

    @property
    def active(self) -> bool:
        return bool(
            self.kill_task_indices
            or self.poison_markers
            or self.item_error_every
            or (self.latency_every and self.latency_spike_s)
        )

    # -- (de)serialization ---------------------------------------------
    def to_json(self) -> str:
        out = {k: v for k, v in asdict(self).items() if v}
        return json.dumps(out, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid fault plan JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got {payload!r}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys {unknown}; known: {sorted(known)}"
            )
        body = dict(payload)
        for key in ("kill_task_indices",):
            if key in body:
                body[key] = tuple(int(x) for x in body[key])
        if "poison_markers" in body:
            body["poison_markers"] = tuple(str(x) for x in body["poison_markers"])
        return cls(**body)

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """The plan named by ``REPRO_FAULTS`` (no-fault plan when unset)."""
        raw = os.environ.get(FAULTS_ENV, "")
        return cls.from_json(raw) if raw.strip() else cls()

    def install(self) -> None:
        """Export this plan so child processes (pool workers) inherit it."""
        if self.active:
            os.environ[FAULTS_ENV] = self.to_json()
        else:
            os.environ.pop(FAULTS_ENV, None)


@dataclass
class FaultClock:
    """Per-process mutable counters the plan's hooks advance."""

    tasks: int = 0
    items: int = 0


_CLOCK = FaultClock()


def process_clock() -> FaultClock:
    """This process's shared fault counters (one per process, by design)."""
    return _CLOCK


def on_task(
    plan: FaultPlan,
    clock: FaultClock | None = None,
    generation: int = 0,
    *,
    allow_kill: bool = True,
) -> None:
    """Task-granularity hooks: worker kill and latency spike.

    Called by a pool worker before each task, and by the in-process
    dispatch path with ``allow_kill=False`` -- killing the only serving
    process would take the service down, the opposite of what chaos
    *testing* wants to exercise.
    """
    clock = clock if clock is not None else _CLOCK
    index = clock.tasks
    clock.tasks += 1
    if (
        plan.latency_every
        and plan.latency_spike_s
        and (index + 1) % plan.latency_every == 0
    ):
        time.sleep(plan.latency_spike_s)
    if allow_kill and generation == 0 and index in plan.kill_task_indices:
        os._exit(KILL_EXIT_CODE)


def on_item(plan: FaultPlan, item: object, clock: FaultClock | None = None,
            *, allow_kill: bool = True) -> None:
    """Item-granularity hooks: poison kill and injected transient error.

    Raises :class:`TransientError` for the error-injection cadence; a
    poison-marker match exits the process (only when ``allow_kill``:
    the in-process path treats poison as an injected error instead,
    because there is no supervisor to restart the serving process).
    """
    clock = clock if clock is not None else _CLOCK
    clock.items += 1
    if plan.poison_markers:
        tag = repr(item)
        if any(marker in tag for marker in plan.poison_markers):
            if allow_kill:
                os._exit(KILL_EXIT_CODE)
            raise TransientError(f"injected poison fault on {tag[:80]}")
    if plan.item_error_every and clock.items % plan.item_error_every == 0:
        raise TransientError(
            f"injected transient fault (item #{clock.items})"
        )


# ----------------------------------------------------------------------
# npz cache corruption (chaos harness helpers)
# ----------------------------------------------------------------------
def corrupt_npz_file(path: str | os.PathLike, mode: str = "truncate") -> None:
    """Deterministically damage one npz cache entry in place.

    ``truncate`` keeps the first half of the file (a torn write);
    ``garbage`` overwrites the leading bytes (bit rot past the zip
    magic, which only a content checksum catches).
    """
    if mode not in ("truncate", "garbage"):
        raise ConfigurationError(
            f"corruption mode must be 'truncate' or 'garbage', got {mode!r}"
        )
    with open(path, "rb") as f:
        data = f.read()
    if mode == "truncate":
        data = data[: max(1, len(data) // 2)]
    else:
        head = b"\x00\xff" * 32
        data = head + data[len(head):]
    with open(path, "wb") as f:
        f.write(data)


def corrupt_cache_dir(
    root: str | os.PathLike, index: int = 0, mode: str = "truncate"
) -> str:
    """Corrupt the ``index``-th (sorted) ``.npz`` entry under ``root``.

    Returns the corrupted path; raises if the directory holds no
    entries, so a chaos job fails loudly instead of silently testing
    nothing.
    """
    from pathlib import Path

    entries = sorted(Path(root).glob("*.npz"))
    if not entries:
        raise ConfigurationError(f"no npz cache entries under {root}")
    target = entries[index % len(entries)]
    corrupt_npz_file(target, mode=mode)
    return str(target)
