"""Deterministic open-loop load generator for the mapping service.

Traffic is derived from a *scenario* (the experiment matrix of PR 2):
its instances x topologies x cases span the request catalog, so the
load profile exercises exactly the mix a sweep would -- including wide-
label topologies when the scenario has them.  On top of the catalog:

- a **seed pool** multiplies each combination by a few request seeds;
- a **hot set** concentrates ``hot_fraction`` of traffic on the first
  ``hot_keys`` catalog entries (the zipf-ish popularity skew every real
  mapping service sees, and what batching's request coalescing feeds on);
- **open-loop arrivals**: exponential inter-arrival times at ``rate``
  requests/second, fired on schedule regardless of completions -- the
  honest way to measure tail latency under overload.

Everything derives from ``(seed, purpose)`` streams via
:func:`repro.utils.rng.derive_seed_sequence`, so two runs of the same
profile issue byte-identical request sequences at identical offsets --
the serve benchmarks compare batched vs. unbatched servers on literally
the same traffic.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field
from urllib.parse import urlsplit

from repro.api.topology import Topology
from repro.errors import ConfigurationError
from repro.experiments.matrix import get_scenario
from repro.serve.scheduler import GraphSpec
from repro.utils.rng import derive_rng

#: every percentile the report carries
_QUANTILES = ((0.50, "p50"), (0.95, "p95"), (0.99, "p99"))


@dataclass(frozen=True)
class LoadProfile:
    """A fully deterministic description of one load run."""

    scenario: str = "smoke"
    requests: int = 60
    rate: float = 40.0
    seed: int = 0
    nh: int = 2
    seed_pool: int = 2
    hot_keys: int = 3
    hot_fraction: float = 0.6
    deadline_s: float | None = None
    matrix_path: str | None = None
    allow_degraded: bool = False
    #: fraction of requests that *verbatim repeat* an earlier planned
    #: request (hot-key traffic the response cache feeds on)
    repeat_fraction: float = 0.0
    #: fraction of requests converted to ``/enhance`` with a supplied
    #: deterministic mapping (exercises the second wire op under load)
    enhance_fraction: float = 0.0
    #: fraction of requests retained in server-side trace buffers; the
    #: rest carry a ``{"trace": {"sample": false}}`` opt-out hint, so a
    #: sustained load run does not churn /debug/traces out of the ring
    trace_sample: float = 1.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError("requests must be >= 1")
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1]")
        if not 0.0 <= self.repeat_fraction <= 1.0:
            raise ConfigurationError("repeat_fraction must be in [0, 1]")
        if not 0.0 <= self.enhance_fraction <= 1.0:
            raise ConfigurationError("enhance_fraction must be in [0, 1]")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigurationError("trace_sample must be in [0, 1]")
        if self.seed_pool < 1 or self.hot_keys < 1:
            raise ConfigurationError("seed_pool and hot_keys must be >= 1")


def build_catalog(profile: LoadProfile) -> list[dict]:
    """The distinct request bodies a profile draws from, in stable order."""
    scenario = get_scenario(profile.scenario, profile.matrix_path)
    cfg = scenario.config
    catalog: list[dict] = []
    for topology in cfg.topologies:
        for instance in cfg.instances:
            for case in cfg.cases:
                for s in range(profile.seed_pool):
                    catalog.append(
                        {
                            "topology": topology,
                            "graph": {
                                "kind": "generate",
                                "instance": instance,
                                "seed": s,
                                "divisor": cfg.divisor,
                                "n_min": cfg.n_min,
                                "n_max": cfg.n_max,
                            },
                            "seed": s,
                            "config": {"case": case, "nh": profile.nh},
                            **(
                                {"deadline_s": profile.deadline_s}
                                if profile.deadline_s
                                else {}
                            ),
                            **(
                                {"allow_degraded": True}
                                if profile.allow_degraded
                                else {}
                            ),
                        }
                    )
    return catalog


def _as_enhance(body: dict, cache: dict) -> dict:
    """A catalog map body converted into a deterministic ``/enhance`` body.

    The supplied mapping is the canonical round-robin placement
    ``mu[i] = i % n_pe`` -- a pure function of the body, so two planned
    runs convert identically.  Conversions are memoized per catalog
    entry (building the instance graph to size the mapping is not free).
    """
    key = json.dumps(body, sort_keys=True)
    got = cache.get(key)
    if got is None:
        n = GraphSpec.from_wire(body.get("graph", {})).build().n
        n_pe = Topology.from_name(str(body["topology"])).graph.n
        got = {**body, "op": "enhance", "mu": [i % n_pe for i in range(n)]}
        cache[key] = got
    return got


def plan_requests(profile: LoadProfile) -> list[tuple[float, dict]]:
    """``(arrival_offset_seconds, body)`` per request, fully derived.

    The hot set is the catalog's first ``hot_keys`` entries; with
    probability ``hot_fraction`` a request draws uniformly from it,
    otherwise uniformly from the remainder (or the whole catalog when it
    is smaller than the hot set).  With probability ``repeat_fraction``
    the drawn body is replaced by a verbatim repeat of an earlier
    planned request; with probability ``enhance_fraction`` it is
    converted to an ``/enhance`` request.  Each knob draws from its own
    derived stream only when enabled, so enabling one never perturbs the
    arrivals or the base mix -- a knobbed profile stays byte-comparable
    to its plain twin.
    """
    catalog = build_catalog(profile)
    arrivals_rng = derive_rng(profile.seed, "loadgen", "arrivals")
    mix_rng = derive_rng(profile.seed, "loadgen", "mix")
    repeat_rng = (
        derive_rng(profile.seed, "loadgen", "repeat")
        if profile.repeat_fraction > 0 else None
    )
    enhance_rng = (
        derive_rng(profile.seed, "loadgen", "enhance")
        if profile.enhance_fraction > 0 else None
    )
    trace_rng = (
        derive_rng(profile.seed, "loadgen", "trace")
        if profile.trace_sample < 1.0 else None
    )
    offsets = arrivals_rng.exponential(
        1.0 / profile.rate, size=profile.requests
    ).cumsum()
    hot = catalog[: profile.hot_keys]
    cold = catalog[profile.hot_keys :] or catalog
    enhance_cache: dict[str, dict] = {}
    out: list[tuple[float, dict]] = []
    for t in offsets:
        pool = hot if mix_rng.random() < profile.hot_fraction else cold
        body = pool[int(mix_rng.integers(len(pool)))]
        if (
            repeat_rng is not None
            and out
            and repeat_rng.random() < profile.repeat_fraction
        ):
            body = out[int(repeat_rng.integers(len(out)))][1]
        if (
            enhance_rng is not None
            and enhance_rng.random() < profile.enhance_fraction
        ):
            body = _as_enhance(body, enhance_cache)
        if (
            trace_rng is not None
            and trace_rng.random() >= profile.trace_sample
        ):
            body = {**body, "trace": {"sample": False}}
        out.append((float(t), body))
    return out


# ----------------------------------------------------------------------
# Minimal asyncio HTTP client (stdlib only, like the server)
# ----------------------------------------------------------------------
async def http_request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 120.0,
):
    """One request over a fresh connection -> ``(status, parsed body)``."""

    async def go():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else b""
            head = (
                f"{method} {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                f"Connection: close\r\nContent-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            length = None
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                key, _, value = raw.decode("latin-1").partition(":")
                if key.strip().lower() == "content-length":
                    length = int(value)
            data = (
                await reader.readexactly(length)
                if length is not None
                else await reader.read()
            )
            text = data.decode("utf-8")
            try:
                return status, json.loads(text)
            except json.JSONDecodeError:
                return status, text
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    return await asyncio.wait_for(go(), timeout=timeout)


# ----------------------------------------------------------------------
# Running a profile and reporting
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """What one load run measured (JSON-able via :meth:`to_json`)."""

    profile: LoadProfile
    requests: int = 0
    ok: int = 0
    degraded: int = 0
    cached: int = 0
    errors: dict = field(default_factory=dict)
    duration_seconds: float = 0.0
    throughput_rps: float = 0.0
    offered_rps: float = 0.0
    latency: dict = field(default_factory=dict)
    #: per-endpoint and cached/degraded latency split (the per-run JSON
    #: summary: every leaf is count/mean/max plus p50/p95/p99)
    latency_summary: dict = field(default_factory=dict)
    batch: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out = asdict(self)
        out["profile"] = asdict(self.profile)
        return out

    def render(self) -> str:
        lat = self.latency
        return (
            f"{self.ok}/{self.requests} ok in {self.duration_seconds:.2f}s "
            f"({self.throughput_rps:.1f} rps served, "
            f"{self.offered_rps:.1f} rps offered); latency p50 "
            f"{lat.get('p50', 0) * 1e3:.0f}ms p95 {lat.get('p95', 0) * 1e3:.0f}ms "
            f"p99 {lat.get('p99', 0) * 1e3:.0f}ms; mean batch "
            f"{self.batch.get('mean_size', 0):.2f} "
            f"({self.batch.get('coalesced', 0)} coalesced)"
            + (f"; {self.cached} cached" if self.cached else "")
            + (f"; {self.degraded} degraded" if self.degraded else "")
            + (f"; errors {self.errors}" if self.errors else "")
        )


def _quantile_stats(latencies: list[float]) -> dict:
    """count/mean/max/p50/p95/p99 of one latency population (seconds)."""
    if not latencies:
        return {"count": 0}
    ordered = sorted(latencies)
    n = len(ordered)
    return {
        "count": n,
        "mean": sum(ordered) / n,
        "max": ordered[-1],
        **{name: ordered[min(n - 1, int(q * n))] for q, name in _QUANTILES},
    }


def _summarize(
    profile: LoadProfile,
    samples: list[tuple[float, int, dict | str, str]],
    duration: float,
) -> LoadReport:
    report = LoadReport(profile=profile, requests=len(samples))
    latencies = sorted(lat for lat, _status, _body, _op in samples)
    sizes: list[int] = []
    coalesced = 0
    by_endpoint: dict[str, list[float]] = {}
    split: dict[str, list[float]] = {
        "cached": [], "uncached": [], "degraded": []
    }
    for lat, status, body, op in samples:
        by_endpoint.setdefault(op, []).append(lat)
        if status == 200 and isinstance(body, dict) and body.get("ok"):
            report.ok += 1
            report.degraded += bool(body.get("degraded"))
            report.cached += bool(body.get("cached"))
            split["cached" if body.get("cached") else "uncached"].append(lat)
            if body.get("degraded"):
                split["degraded"].append(lat)
            info = body.get("batch", {})
            sizes.append(int(info.get("size", 1)))
            coalesced += bool(info.get("coalesced"))
        else:
            key = (
                body.get("error", f"http_{status}")
                if isinstance(body, dict)
                else f"http_{status}"
            )
            report.errors[key] = report.errors.get(key, 0) + 1
    report.duration_seconds = duration
    report.throughput_rps = report.ok / duration if duration > 0 else 0.0
    report.offered_rps = profile.rate
    if latencies:
        n = len(latencies)
        report.latency = {
            "mean": sum(latencies) / n,
            "max": latencies[-1],
            **{
                name: latencies[min(n - 1, int(q * n))]
                for q, name in _QUANTILES
            },
        }
    report.latency_summary = {
        "overall": _quantile_stats(latencies),
        "by_endpoint": {
            op: _quantile_stats(lats)
            for op, lats in sorted(by_endpoint.items())
        },
        **{name: _quantile_stats(lats) for name, lats in split.items()},
    }
    if sizes:
        report.batch = {
            "mean_size": sum(sizes) / len(sizes),
            "max_size": max(sizes),
            "coalesced": coalesced,
        }
    return report


async def run_load(
    profile: LoadProfile,
    url: str | None = None,
    service=None,
) -> LoadReport:
    """Fire the profile at a server and collect the report.

    ``url`` drives a live HTTP server; ``service`` (a
    :class:`~repro.serve.service.MappingService`) is the in-process mode
    the unit tests use -- same bodies, no sockets.
    """
    if (url is None) == (service is None):
        raise ConfigurationError("pass exactly one of url= or service=")
    if url is not None:
        parts = urlsplit(url)
        host, port = parts.hostname, parts.port
        if host is None or port is None:
            raise ConfigurationError(f"load URL needs host and port: {url!r}")
    schedule = plan_requests(profile)
    t0 = time.perf_counter()

    async def fire(offset: float, body: dict):
        delay = offset - (time.perf_counter() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        sent = time.perf_counter()
        op = str(body.get("op", "map"))
        if url is not None:
            status, reply = await http_request_json(host, port, "POST", f"/{op}", body)
        else:
            status, reply, _headers = await service.handle(op, body)
        return time.perf_counter() - sent, status, reply, op

    samples = await asyncio.gather(
        *(fire(offset, body) for offset, body in schedule)
    )
    duration = time.perf_counter() - t0
    return _summarize(profile, list(samples), duration)


def generate_load(profile: LoadProfile, url: str) -> LoadReport:
    """Blocking wrapper used by ``python -m repro loadgen``."""
    return asyncio.run(run_load(profile, url=url))
