"""Lock-cheap serving metrics: counters, gauges, latency histograms.

The serving layer records everything operators ask a mapping service
about -- request/response rates, rejection reasons, queue depth, batch
size distribution, end-to-end and compute latency percentiles, cache
traffic -- without ever taking a lock on the request path.  Every update
is a single int/float operation on a plain attribute, atomic enough
under the GIL; readers (the ``/metrics`` endpoint) tolerate snapshots
that are a few updates stale.

Rendering comes in two flavors:

- :meth:`MetricsRegistry.render_json` -- one nested dict, the schema
  documented in ``docs/serving.md`` (machine-friendly, used by the
  benchmarks and the CI smoke assertions);
- :meth:`MetricsRegistry.render_prometheus` -- Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` plus samples), so a scrape
  target needs no extra dependency.

Histograms are fixed-bucket (log-spaced by default, ~18% resolution per
decade), counting observations per bucket plus exact count/sum/min/max.
Percentiles interpolate linearly inside the winning bucket -- the
standard Prometheus estimation, accurate to a bucket width, which is
plenty for p50/p95/p99 dashboards and regression floors.
"""

from __future__ import annotations

import math
import time

from repro.errors import ConfigurationError


def default_latency_buckets() -> tuple[float, ...]:
    """Log-spaced seconds buckets from 100 microseconds to ~2 minutes."""
    return tuple(1e-4 * (2.0 ** (i / 2)) for i in range(41))


class Counter:
    """Monotonic counter, optionally split by one label value."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._children: dict[str, float] = {}

    def inc(self, amount: float = 1.0, label: str | None = None) -> None:
        self.value += amount
        if label is not None:
            self._children[label] = self._children.get(label, 0.0) + amount

    def labels(self) -> dict[str, float]:
        return dict(self._children)


class Gauge:
    """A value that goes up and down, optionally split by one label.

    Labeled children track the last value set per label (e.g. the
    latest cut-edge count per topology), mirroring :class:`Counter`'s
    single-label children so the renderers and the shard front end's
    numeric merge treat both shapes uniformly.
    """

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._children: dict[str, float] = {}

    def set(self, value: float, label: str | None = None) -> None:
        self.value = float(value)
        if label is not None:
            self._children[label] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def labels(self) -> dict[str, float]:
        return dict(self._children)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything beyond the last edge.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(bounds) if bounds is not None else default_latency_buckets()
        if list(self.bounds) != sorted(self.bounds):
            raise ConfigurationError(
                f"histogram bounds must be ascending: {self.bounds}"
            )
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # leftmost bucket whose edge >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        self.bucket_counts[lo] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) from the buckets.

        Linear interpolation inside the winning bucket, clamped to the
        exact observed min/max so tails never report impossible values.
        The boundaries are exact, not interpolated: ``q=0`` is the
        observed min, ``q=1`` the observed max, a single observation is
        itself at every ``q``, and an empty histogram reports ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0 or self.count == 1:
            # q=1 is the max by definition; with one observation every
            # quantile *is* that observation (min == max), so skip the
            # in-bucket interpolation that would otherwise report a
            # fraction of the bucket width as signal.
            return self.max if q == 1.0 else self.min
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.bucket_counts):
            seen += c
            if seen >= rank and c:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (rank - (seen - c)) / c
                est = lower + (upper - lower) * frac
                return min(max(est, self.min), self.max)
        return self.max

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Name -> metric map with the two renderers.

    Metric constructors are idempotent: asking for an existing name
    returns the live metric, so components can share counters without
    coordinating creation order.
    """

    def __init__(self, namespace: str = "repro_serve") -> None:
        self.namespace = namespace
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._started = time.monotonic()

    def _get(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        return self._get(Histogram, name, help, bounds=bounds)

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    # -- rendering -----------------------------------------------------
    def render_json(self, extra: dict | None = None) -> dict:
        """The documented JSON metrics schema (see docs/serving.md)."""
        out: dict = {"uptime_seconds": self.uptime_seconds}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                # Counters and gauges share the labeled shape: a bare
                # number when unlabeled, {"total": ..., label: ...}
                # when split -- one schema for the shard merge to sum.
                out[name] = (
                    {"total": metric.value, **metric.labels()}
                    if metric.labels()
                    else metric.value
                )
        if extra:
            out.update(extra)
        return out

    def render_prometheus(self, extra: dict | None = None) -> str:
        """Prometheus text exposition format, one block per metric."""
        ns = self.namespace
        lines: list[str] = []

        def emit(name: str, kind: str, help: str) -> str:
            full = f"{ns}_{name}"
            if help:
                lines.append(f"# HELP {full} {help}")
            lines.append(f"# TYPE {full} {kind}")
            return full

        lines.append(f"# TYPE {ns}_uptime_seconds gauge")
        lines.append(f"{ns}_uptime_seconds {self.uptime_seconds:.6f}")
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                full = emit(name, "counter", metric.help)
                if metric.labels():
                    # Labeled counters emit ONLY their children: a bare
                    # total sample in the same family would double-count
                    # under sum() and trip exposition linters.
                    for label, value in sorted(metric.labels().items()):
                        lines.append(f'{full}{{label="{label}"}} {value:g}')
                else:
                    lines.append(f"{full} {metric.value:g}")
            elif isinstance(metric, Gauge):
                full = emit(name, "gauge", metric.help)
                if metric.labels():
                    for label, value in sorted(metric.labels().items()):
                        lines.append(f'{full}{{label="{label}"}} {value:g}')
                else:
                    lines.append(f"{full} {metric.value:g}")
            else:
                full = emit(name, "histogram", metric.help)
                cumulative = 0
                for edge, c in zip(metric.bounds, metric.bucket_counts):
                    cumulative += c
                    lines.append(f'{full}_bucket{{le="{edge:g}"}} {cumulative}')
                lines.append(f'{full}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{full}_sum {metric.sum:g}")
                lines.append(f"{full}_count {metric.count}")
        if extra:
            for key, value in sorted(extra.items()):
                if isinstance(value, (int, float)):
                    lines.append(f"# TYPE {ns}_{key} gauge")
                    lines.append(f"{ns}_{key} {value:g}")
                elif isinstance(value, str):
                    # Prometheus "info" idiom: the string rides in a
                    # label on a constant-1 gauge (text exposition has
                    # no string samples).
                    lines.append(f"# TYPE {ns}_{key}_info gauge")
                    lines.append(f'{ns}_{key}_info{{value="{value}"}} 1')
        return "\n".join(lines) + "\n"
