"""Supervised multi-process worker pool with crash recovery.

The pool executes *tasks* -- ``(payload_key, items)`` batches -- on a
fixed set of worker processes and returns one
:class:`concurrent.futures.Future` per item.  Unlike
:class:`multiprocessing.Pool`, a worker dying (segfault, OOM kill,
injected chaos fault) does not poison the pool or lose work:

1. the supervisor thread detects the death through the worker's
   process sentinel / connection EOF,
2. starts a replacement worker (``generation + 1``, so generation-
   scoped fault plans do not crash-loop),
3. and requeues the in-flight task: a first crash retries the batch
   whole, repeated crashes *bisect* it so a single poison item is
   isolated in ``O(log n)`` worker deaths and failed with
   :class:`~repro.errors.PoisonRequestError` while every other item in
   the batch still succeeds.

Payloads (e.g. a pickled pipeline) are content-addressed by
``payload_key`` and shipped to each worker at most once; workers
memoize the materialized object (``setup(payload)``) so repeated
batches for the same group reuse warm caches.  Per-item *exceptions*
raised by ``runner`` are not crashes -- they travel back on the result
channel and fail only their own future, which is what lets the serve
layer's retry policy treat injected :class:`TransientError` faults
differently from worker deaths.

Everything here is deliberately deterministic: no randomized backoff,
no time-based decisions beyond liveness polling.  Retry pacing and
circuit breaking live one layer up (:mod:`repro.serve.retry`).
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
from collections import deque
from concurrent.futures import Future
from multiprocessing import connection

from repro.errors import (
    ConfigurationError,
    PermanentError,
    PoisonRequestError,
    TransientError,
)
from repro.obs import get_logger, set_process_fields
from repro.serve.faults import FaultClock, FaultPlan, on_item, on_task
from repro.utils.parallel import preferred_mp_context


def _sendable(exc: BaseException) -> Exception:
    """Return ``exc`` if it survives a pickle round-trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc  # type: ignore[return-value]
    except Exception:
        return PermanentError(f"{type(exc).__name__}: {exc}")


def _worker_main(conn, runner, setup, generation: int) -> None:
    """Worker process loop: receive payloads and tasks, send results.

    A worker keeps raw payloads and their materialized contexts keyed by
    ``payload_key``; re-sending a key replaces both (the parent only
    re-sends when content changed).  Fault hooks run *inside* the
    worker so an injected kill takes down a real process and exercises
    the supervisor's actual recovery path.
    """
    set_process_fields(worker_generation=generation)
    plan = FaultPlan.from_env()
    clock = FaultClock()
    payloads: dict[str, object] = {}
    contexts: dict[str, object] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "payload":
            _, key, payload = msg
            payloads[key] = payload
            contexts.pop(key, None)
            continue
        _, task_id, key, items = msg
        results: list[tuple[str, object]] = []
        try:
            on_task(plan, clock, generation=generation)
            if key in contexts:
                ctx = contexts[key]
            else:
                payload = payloads.get(key)
                ctx = setup(payload) if setup is not None else payload
                contexts[key] = ctx
        except Exception as exc:
            err = _sendable(exc)
            results = [("err", err) for _ in items]
        else:
            for item in items:
                try:
                    on_item(plan, item, clock)
                    results.append(("ok", runner(ctx, item)))
                except Exception as exc:
                    results.append(("err", _sendable(exc)))
        try:
            conn.send(("result", task_id, results))
        except (BrokenPipeError, OSError):
            return


class _Task:
    __slots__ = ("id", "payload_key", "items", "futures", "crashes", "worker")

    def __init__(self, task_id, payload_key, items, futures, crashes=0,
                 worker=None):
        self.id = task_id
        self.payload_key = payload_key
        self.items = items
        self.futures = futures
        self.crashes = crashes
        #: worker index this task is pinned to (None = any worker).  The
        #: supervisor keeps worker indices stable across crash restarts,
        #: so a pin survives its worker dying -- the replacement at the
        #: same index picks the task up.
        self.worker = worker


class _Worker:
    __slots__ = ("proc", "conn", "generation", "seen", "current", "dead")

    def __init__(self, proc, conn, generation):
        self.proc = proc
        self.conn = conn
        self.generation = generation
        self.seen: set[str] = set()
        self.current: _Task | None = None
        self.dead = False


class SupervisedPool:
    """A crash-tolerant process pool (see module docstring).

    Parameters
    ----------
    runner:
        picklable ``runner(context, item) -> result`` executed per item.
    setup:
        optional picklable ``setup(payload) -> context`` memoized per
        payload key in each worker; when ``None`` the raw payload is
        passed to ``runner`` directly.
    workers:
        number of worker processes (the pool keeps this many alive).
    max_item_retries:
        how many times a *singleton* task may crash its worker before
        the item is failed with :class:`PoisonRequestError`.
    """

    def __init__(
        self,
        runner,
        setup=None,
        workers: int = 2,
        mp_context=None,
        max_item_retries: int = 1,
        name: str = "pool",
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"pool needs >= 1 worker, got {workers}")
        if max_item_retries < 0:
            raise ConfigurationError("max_item_retries must be >= 0")
        self._runner = runner
        self._setup = setup
        self._size = int(workers)
        self._ctx = mp_context if mp_context is not None else preferred_mp_context()
        self._max_item_retries = int(max_item_retries)
        self._name = name
        self._lock = threading.Lock()
        self._pending: deque[_Task] = deque()
        self._payloads: dict[str, object] = {}
        self._task_ids = itertools.count()
        self._worker_ids = itertools.count()
        self._running = True
        self._restarts = 0
        self._crashes = 0
        self._poisoned = 0
        self._tasks_dispatched = 0
        self._log = get_logger("serve.pool").bind(pool=name)
        self._wake_r, self._wake_w = os.pipe()
        self._workers = [self._spawn(0) for _ in range(self._size)]
        self._thread = threading.Thread(
            target=self._supervise, name=f"{name}-supervisor", daemon=True
        )
        self._thread.start()

    # -- public API ----------------------------------------------------
    def submit(
        self, payload_key: str, payload, items, worker: int | None = None
    ) -> list[Future]:
        """Queue one task; returns a future per item (in item order).

        ``worker`` pins the task to one worker index (cache affinity:
        e.g. consistent-hash routing of topologies so each worker's
        session cache stays hot); ``None`` lets any idle worker take it.
        """
        items = list(items)
        if not items:
            return []
        if worker is not None and not 0 <= int(worker) < self._size:
            raise ConfigurationError(
                f"worker pin {worker} outside pool of {self._size}"
            )
        futures = [Future() for _ in items]
        with self._lock:
            if not self._running:
                raise TransientError("worker pool is closed")
            self._payloads[payload_key] = payload
            self._pending.append(
                _Task(next(self._task_ids), payload_key, items, futures,
                      worker=None if worker is None else int(worker))
            )
        self._wake()
        return futures

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self._size,
                "restarts": self._restarts,
                "crashes": self._crashes,
                "poisoned": self._poisoned,
                "tasks_dispatched": self._tasks_dispatched,
                "pending": len(self._pending),
            }

    @property
    def restarts(self) -> int:
        with self._lock:
            return self._restarts

    def worker_pids(self) -> list[int]:
        return [w.proc.pid for w in self._workers if w.proc.pid is not None]

    def close(self) -> None:
        with self._lock:
            if not self._running:
                return
            self._running = False
        self._wake()
        self._thread.join(timeout=10)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- supervisor thread ---------------------------------------------
    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _spawn(self, generation: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._runner, self._setup, generation),
            daemon=True,
            name=f"{self._name}-w{next(self._worker_ids)}g{generation}",
        )
        proc.start()
        child_conn.close()
        self._log.debug(
            "worker_spawned", worker=proc.name, worker_generation=generation
        )
        return _Worker(proc, parent_conn, generation)

    def _supervise(self) -> None:
        try:
            while True:
                with self._lock:
                    if not self._running:
                        break
                self._dispatch()
                waitables = [w.conn for w in self._workers if not w.dead]
                waitables += [w.proc.sentinel for w in self._workers if not w.dead]
                waitables.append(self._wake_r)
                ready = connection.wait(waitables, timeout=0.2)
                for obj in ready:
                    if obj == self._wake_r:
                        try:
                            os.read(self._wake_r, 65536)
                        except OSError:
                            pass
                        continue
                    worker = self._worker_for(obj)
                    if worker is None or worker.dead:
                        continue
                    if obj is worker.conn:
                        self._on_readable(worker)
                    else:
                        self._on_exit(worker)
        finally:
            self._shutdown()

    def _worker_for(self, obj) -> _Worker | None:
        for w in self._workers:
            if obj is w.conn or obj == w.proc.sentinel:
                return w
        return None

    def _dispatch(self) -> None:
        for index, worker in enumerate(self._workers):
            if worker.dead or worker.current is not None:
                continue
            with self._lock:
                if not self._pending:
                    return
                # First pending task this worker may run: unpinned tasks
                # go to anyone, pinned tasks only to their index.
                task = next(
                    (t for t in self._pending
                     if t.worker is None or t.worker == index),
                    None,
                )
                if task is None:
                    continue  # only tasks pinned to busy workers remain
                self._pending.remove(task)
                payload = self._payloads[task.payload_key]
            try:
                if task.payload_key not in worker.seen:
                    worker.conn.send(("payload", task.payload_key, payload))
                    worker.seen.add(task.payload_key)
                worker.conn.send(("task", task.id, task.payload_key, task.items))
            except (BrokenPipeError, OSError):
                # worker died before the task ever reached it: requeue
                # without charging a crash to the task, reap via sentinel.
                with self._lock:
                    self._pending.appendleft(task)
                continue
            worker.current = task
            with self._lock:
                self._tasks_dispatched += 1

    def _on_readable(self, worker: _Worker) -> None:
        try:
            while worker.conn.poll():
                msg = worker.conn.recv()
                self._handle_result(worker, msg)
        except (EOFError, OSError):
            self._on_exit(worker)

    def _handle_result(self, worker: _Worker, msg) -> None:
        if not msg or msg[0] != "result":
            return
        _, task_id, results = msg
        task = worker.current
        if task is None or task.id != task_id:
            return
        worker.current = None
        for future, (kind, value) in zip(task.futures, results):
            if future.done():
                continue
            if kind == "ok":
                future.set_result(value)
            else:
                future.set_exception(value)

    def _on_exit(self, worker: _Worker) -> None:
        if worker.dead:
            return
        if worker.proc.is_alive():
            # Spurious wake (stale fd number reused by a fresh worker's
            # sentinel): a live process is never treated as crashed.
            return
        # A worker may have sent its result and *then* died (e.g. a kill
        # fault on the next task's hook): drain before declaring loss.
        try:
            while worker.conn.poll():
                self._handle_result(worker, worker.conn.recv())
        except (EOFError, OSError):
            pass
        worker.dead = True
        task = worker.current
        worker.current = None
        worker.proc.join(timeout=5)
        try:
            worker.conn.close()
        except OSError:
            pass
        self._log.warn(
            "worker_crashed",
            worker=worker.proc.name,
            worker_generation=worker.generation,
            exitcode=worker.proc.exitcode,
            task_lost=task is not None,
        )
        index = self._workers.index(worker)
        self._workers[index] = self._spawn(worker.generation + 1)
        with self._lock:
            self._crashes += 1
            self._restarts += 1
        if task is not None:
            self._requeue_crashed(task)

    def _requeue_crashed(self, task: _Task) -> None:
        task.crashes += 1
        if len(task.items) == 1:
            if task.crashes > self._max_item_retries:
                tag = repr(task.items[0])[:120]
                exc = PoisonRequestError(
                    f"work item crashed its worker {task.crashes} times "
                    f"and was isolated by bisection: {tag}"
                )
                with self._lock:
                    self._poisoned += 1
                if not task.futures[0].done():
                    task.futures[0].set_exception(exc)
                return
            with self._lock:
                self._pending.appendleft(task)
            return
        if task.crashes >= 2:
            # Bisect: each half starts with one crash on record so a
            # further death splits it again immediately -- a poison item
            # is cornered in O(log n) restarts.
            mid = len(task.items) // 2
            left = _Task(
                next(self._task_ids),
                task.payload_key,
                task.items[:mid],
                task.futures[:mid],
                crashes=1,
                worker=task.worker,
            )
            right = _Task(
                next(self._task_ids),
                task.payload_key,
                task.items[mid:],
                task.futures[mid:],
                crashes=1,
                worker=task.worker,
            )
            with self._lock:
                self._pending.appendleft(right)
                self._pending.appendleft(left)
            return
        with self._lock:
            self._pending.appendleft(task)

    def _shutdown(self) -> None:
        for worker in self._workers:
            if worker.dead:
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        orphans: list[_Task] = []
        for worker in self._workers:
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.current is not None:
                orphans.append(worker.current)
                worker.current = None
        with self._lock:
            while self._pending:
                orphans.append(self._pending.popleft())
        for task in orphans:
            for future in task.futures:
                if not future.done():
                    future.set_exception(TransientError("worker pool closed"))
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
