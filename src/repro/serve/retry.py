"""Retry pacing and per-group circuit breaking for the serve tier.

Two small, independently testable policies the scheduler composes:

* :class:`RetryPolicy` -- bounded retries of :class:`TransientError`
  failures with exponential backoff and **deterministic jitter**: the
  jitter for ``(key, attempt)`` comes from
  :func:`~repro.utils.rng.derive_rng`, so replaying the same traffic
  against the same fault plan produces the same sleep schedule (the
  chaos tests depend on this).

* :class:`CircuitBreaker` -- the classic closed / open / half-open
  automaton per ``(topology, config)`` group.  Only *service-side*
  failures (crash-retry exhaustion, poison isolation) should be
  recorded; client errors and deadline misses say nothing about group
  health.  While open, the scheduler sheds load for the group with
  :class:`~repro.errors.CircuitOpenError` (HTTP 503 + ``Retry-After``)
  instead of queueing work that is expected to fail.

Both objects are used from a single event-loop thread and carry no
locks by design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import CircuitOpenError, ConfigurationError, TransientError
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts total tries (1 = no retries).  The delay
    before retry ``attempt`` (1-based) is
    ``min(base_delay * 2**(attempt-1), max_delay)`` scaled by a jitter
    factor in ``[0.5, 1.0)`` derived from ``(seed, key, attempt)``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: int = 0xD1CE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigurationError(
                "need 0 <= base_delay <= max_delay for a retry policy"
            )

    def is_retryable(self, exc: BaseException) -> bool:
        """Transients retry; an open breaker is a verdict, not a fault."""
        return isinstance(exc, TransientError) and not isinstance(
            exc, CircuitOpenError
        )

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before 1-based retry ``attempt`` of work ``key``."""
        if attempt < 1:
            return 0.0
        base = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        jitter = derive_rng(self.seed, "retry", key, attempt).random()
        return base * (0.5 + 0.5 * jitter)


class CircuitBreaker:
    """Closed / open / half-open breaker for one dispatch group.

    ``failure_threshold`` consecutive recorded failures open the
    breaker for ``reset_s`` seconds.  After the window one *probe* is
    admitted (half-open); its outcome closes or re-opens the circuit.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_s <= 0:
            raise ConfigurationError("reset_s must be > 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_s = float(reset_s)
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.transitions = 0

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_s
        ):
            self._transition(self.HALF_OPEN)
        return self._state

    def _transition(self, new_state: str) -> None:
        if new_state != self._state:
            self._state = new_state
            self.transitions += 1
            if new_state != self.HALF_OPEN:
                self._probe_inflight = False

    def retry_after(self) -> float:
        """Seconds until the next probe would be admitted (0 if now)."""
        if self.state != self.OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.reset_s - self._clock())

    def allow(self) -> bool:
        """Whether a new request for this group may be admitted.

        In half-open state exactly one in-flight probe is admitted;
        everything else is shed until the probe reports back.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def check(self, group: str) -> None:
        """Raise :class:`CircuitOpenError` unless :meth:`allow` admits."""
        if not self.allow():
            hint = self.retry_after()
            raise CircuitOpenError(
                f"circuit breaker open for group {group}", retry_after=hint
            )

    # -- outcome recording ---------------------------------------------
    def record_success(self) -> None:
        self._failures = 0
        self._probe_inflight = False
        if self._state in (self.HALF_OPEN, self.OPEN):
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self._probe_inflight = False
        if self.state == self.HALF_OPEN:
            self._opened_at = self._clock()
            self._transition(self.OPEN)
            return
        self._failures += 1
        if self._state == self.CLOSED and self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self._transition(self.OPEN)

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "failures": self._failures,
            "transitions": self.transitions,
            "retry_after": round(self.retry_after(), 3),
        }
