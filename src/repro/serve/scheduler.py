"""Micro-batching scheduler: group, coalesce, dispatch, bound, recover.

The serving front end (:mod:`repro.serve.service`) turns every wire
request into a :class:`MapRequest` and awaits
:meth:`BatchScheduler.submit`.  The scheduler holds each request for at
most one *batching window* and groups everything that arrives for the
same ``(topology, pipeline-config identity)`` into one dispatch through
:meth:`repro.api.Pipeline.run_batch` -- the amortization shape the API
layer was built for (one labeling, one distance matrix, one worker-pool
fan-out per batch instead of per request).

Inside a batch, requests with identical work identity -- same graph
spec, same seed, same supplied mapping -- are **coalesced**: computed
once, answered many times.  This is sound *because* of the determinism
contract (same request == same mapping, test-asserted), and it is where
most of the batching throughput win comes from on hot keys.

*Across* windows the same contract powers the response cache: every
successful full-fidelity result is remembered in a byte-budgeted LRU
(:class:`~repro.serve.cache.ResponseCache`) keyed by the run identity
``(group key, graph content, seed, mu tag)``, and ``submit`` checks it
*before* admission control -- a repeat request is answered instantly,
byte-identical to a fresh compute, without occupying a queue slot or a
batch.  Degraded (enhance-stripped) results are remembered under their
rewritten group key, so they can never impersonate a full result.

Admission control is a single bound on in-flight requests
(``max_queue``): past it, ``submit`` fails fast with
:class:`QueueFullError` carrying a retry-after hint, which the HTTP
layer maps to a 429.  Every request may carry a deadline; requests that
expire while queued are failed without being computed, and requests
whose deadline passes *during* their batch's computation are failed on
completion (the work is wasted, the client already walked away).

Fault tolerance
---------------
With ``workers > 0`` batches execute on a :class:`SupervisedPool`: a
worker death restarts the worker and requeues (then bisects) the lost
batch, so at most one poison item fails while its batch-mates succeed.
Per-item :class:`~repro.errors.TransientError` failures are retried
under a :class:`~repro.serve.retry.RetryPolicy` (bounded attempts,
exponential backoff, jitter derived deterministically from the work
key).  A per-group :class:`~repro.serve.retry.CircuitBreaker` sheds
load with 503/``Retry-After`` while a group keeps failing, and
requests marked ``allow_degraded`` may instead be answered from the
response cache or rerouted to an enhance-free pipeline -- always
flagged ``degraded`` so the byte-identity contract is only claimed for
full-fidelity responses.

Determinism: a batch dispatch passes each request's seed verbatim to
``run_batch(seeds=[...])`` (in-process) or ``Pipeline.run`` (pool
workers) -- the same call a direct library user makes.  Batched,
coalesced, retried, ``jobs=1`` or pool-dispatched: byte-identical
mappings on every non-degraded path.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.pipeline import (
    Pipeline,
    PipelineConfig,
    PipelineResult,
    _rebuild_pipeline,
)
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    PermanentError,
    ReproError,
    TransientError,
)
from repro.experiments.instances import generate_instance, instance_names
from repro.experiments.store import canonical_json, cell_key
from repro.graphs.builder import from_edges
from repro.graphs.graph import Graph
from repro.obs import get_tracer, profile_call
from repro.obs.trace import SpanContext, TraceBuffer, Tracer
from repro.serve.cache import (
    DEFAULT_RESPONSE_CACHE_BYTES,
    ResponseCache,
    TopologyCache,
)
from repro.serve.faults import FaultClock, FaultPlan, on_item, on_task
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import SupervisedPool
from repro.serve.retry import CircuitBreaker, RetryPolicy


class QueueFullError(TransientError):
    """Admission control rejected the request (HTTP 429)."""

    def __init__(self, pending: int, max_queue: int, retry_after: float) -> None:
        super().__init__(
            f"queue full: {pending} requests in flight (limit {max_queue})"
        )
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """The request's deadline passed before a result could be returned."""


# ----------------------------------------------------------------------
# Request model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphSpec:
    """Deterministic description of an application graph.

    Two kinds travel on the wire:

    - ``generate``: a Table-1 synthetic instance by name, regenerated
      from ``(instance, seed, sizing)`` -- compact and fully
      reproducible, the load generator's format;
    - ``edges``: an inline ``n`` + weighted edge list for callers
      mapping their own graphs.

    ``cache_key()`` is the content identity coalescing works on.
    """

    kind: str = "generate"
    instance: str = "p2p-Gnutella"
    seed: int = 0
    divisor: int = 1024
    n_min: int = 128
    n_max: int = 192
    n: int | None = None
    edges: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("generate", "edges"):
            raise ConfigurationError(
                f"graph spec kind must be 'generate' or 'edges', got {self.kind!r}"
            )
        if self.kind == "generate" and self.instance not in instance_names():
            raise ConfigurationError(
                f"unknown instance {self.instance!r}; known: "
                f"{', '.join(instance_names())}"
            )
        if self.kind == "edges" and self.n is None:
            raise ConfigurationError("inline graph spec needs a vertex count 'n'")

    def build(self) -> Graph:
        if self.kind == "generate":
            return generate_instance(
                self.instance,
                seed=self.seed,
                divisor=self.divisor,
                n_min=self.n_min,
                n_max=self.n_max,
            )
        return from_edges(
            self.n, [tuple(e) for e in self.edges], name=f"inline{self.n}"
        )

    def cache_key(self) -> str:
        if self.kind == "generate":
            return (
                f"gen:{self.instance}:{self.seed}:{self.divisor}"
                f":{self.n_min}:{self.n_max}"
            )
        digest = hashlib.sha256(
            canonical_json([self.n, [list(map(float, e)) for e in self.edges]])
            .encode()
        ).hexdigest()[:16]
        return f"edges:{digest}"

    def to_wire(self) -> dict:
        if self.kind == "generate":
            return {
                "kind": "generate",
                "instance": self.instance,
                "seed": self.seed,
                "divisor": self.divisor,
                "n_min": self.n_min,
                "n_max": self.n_max,
            }
        return {"kind": "edges", "n": self.n, "edges": [list(e) for e in self.edges]}

    @classmethod
    def from_wire(cls, payload: dict) -> "GraphSpec":
        if not isinstance(payload, dict):
            raise ConfigurationError(f"graph spec must be an object, got {payload!r}")
        known = {
            "kind", "instance", "seed", "divisor", "n_min", "n_max", "n", "edges",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown graph spec keys {unknown}; known: {sorted(known)}"
            )
        body = dict(payload)
        if "edges" in body:
            body["edges"] = tuple(tuple(e) for e in body["edges"])
        return cls(**body)


@dataclass
class MapRequest:
    """One unit of serving work, parsed and validated."""

    topology: str
    graph: GraphSpec
    config: PipelineConfig = field(default_factory=PipelineConfig)
    seed: int | None = None
    #: supplied mapping => enhance-only request (partition/map skipped)
    mu: np.ndarray | None = None
    deadline_s: float | None = None
    #: opt-in to degraded answers (response cache / enhance-free) when
    #: the group's breaker is open or the deadline cannot fit a full run
    allow_degraded: bool = False
    #: trace context stamped by the transport layer; pure observability,
    #: deliberately absent from ``group_key``/``work_key`` -- tracing a
    #: request must never change how it batches, caches, or computes
    trace: SpanContext | None = None

    def group_key(self) -> str:
        """Batching group: same topology + same config identity-hash."""
        return cell_key(
            {"topology": self.topology, "config": self.config.identity()}
        )

    def work_key(self) -> tuple:
        """Coalescing identity: requests with equal keys share one run."""
        mu_tag = (
            hashlib.sha256(
                np.ascontiguousarray(self.mu, dtype=np.int64).tobytes()
            ).hexdigest()[:16]
            if self.mu is not None
            else None
        )
        return (self.graph.cache_key(), self.seed, mu_tag)


@dataclass
class ServedResult:
    """A pipeline result plus how the scheduler handled it."""

    result: PipelineResult
    batch_size: int
    batch_unique: int
    coalesced: bool
    queue_seconds: float
    compute_seconds: float
    #: degraded answers trade fidelity for availability and are exempt
    #: from the byte-identity contract; ``degraded_mode`` says how
    #: ("no_enhance" = enhance skipped)
    degraded: bool = False
    degraded_mode: str | None = None
    #: answered from the response cache: full fidelity (byte-identical
    #: to a fresh compute by the determinism contract), zero compute
    cached: bool = False
    #: trace id linking this response to its span tree in /debug/traces
    trace_id: str = ""


@dataclass
class _Job:
    request: MapRequest
    future: asyncio.Future
    enqueued: float
    deadline: float | None
    degraded_mode: str | None = None
    #: open ``queue_wait`` span, finished when the batch dispatches
    span: object = None


class _Group:
    __slots__ = ("jobs", "timer", "pipeline")

    def __init__(self, pipeline: Pipeline) -> None:
        self.jobs: list[_Job] = []
        self.timer: asyncio.TimerHandle | None = None
        #: held here so a dispatch keeps its pipeline even if the
        #: scheduler's pipeline LRU evicts the group key meanwhile
        self.pipeline = pipeline


# ----------------------------------------------------------------------
# Supervised-pool plumbing (module-level: must pickle into workers)
# ----------------------------------------------------------------------
def _pool_setup(payload) -> Pipeline:
    """Materialize a worker-side pipeline from its pickled payload."""
    return _rebuild_pipeline(*payload)


def _pool_run(pipe: Pipeline, item) -> tuple[PipelineResult, list]:
    """Run one work item -- the exact call a direct library user makes.

    Returns ``(result, finished spans)``: when the item carries a trace
    context, the worker opens a ``pool_execute`` span under it, converts
    the result's stage timings into child spans, and ships the finished
    span dicts back over the result pipe so the scheduler's process can
    merge them into its trace buffer (pool workers have no HTTP
    endpoint of their own).
    """
    _wkey, wire, seed, mu, trace_wire = item
    ga = GraphSpec.from_wire(wire).build()
    ctx = SpanContext.from_wire(trace_wire) if trace_wire else None
    if ctx is None:
        return pipe.run(ga, mu=mu, seed=seed), []
    # A throwaway single-trace tracer: spans travel back on the result
    # channel, so nothing needs to persist worker-side.
    tracer = Tracer(
        process="pool",
        buffer=TraceBuffer(max_traces=4, max_spans_per_trace=256),
    )
    with tracer.span("pool_execute", ctx) as span:
        result = pipe.run(ga, mu=mu, seed=seed)
        result.record_spans(tracer, span.context)
    spans = [s for _tid, trace in tracer.buffer.traces() for s in trace]
    return result, spans


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class BatchScheduler:
    """Window-and-size micro-batcher over a shared :class:`TopologyCache`.

    Parameters
    ----------
    window_s:
        how long the first request of a group waits for company.  ``0``
        still batches whatever lands in the same event-loop tick; the
        benchmarks' "batching disabled" baseline uses ``max_batch=1``.
    max_batch:
        dispatch a group as soon as it holds this many requests.
    max_queue:
        admission bound on in-flight requests across all groups.
    jobs:
        worker processes for ``run_batch`` inside one in-process
        dispatch (1 = fully in-process, byte-identical either way).
    workers:
        size of the supervised worker pool.  ``0`` (default) keeps the
        historical in-process compute path; ``> 0`` moves batch compute
        onto crash-supervised processes with requeue/bisection recovery.
    dispatch_workers:
        executor threads running batch computations; with a pool this
        defaults to ``workers`` so groups dispatch concurrently.
    max_pipelines:
        LRU bound on cached per-group pipelines (group keys embed
        client-supplied config values, so the cache must not trust
        clients to keep the key space small).
    retry:
        :class:`RetryPolicy` for transient per-item failures.
    breaker_threshold / breaker_reset_s:
        per-group circuit-breaker tuning (consecutive service-side
        failures to open; seconds before a half-open probe).
    faults:
        deterministic :class:`FaultPlan` for chaos testing; installed
        into the environment so pool workers inherit it.
    response_cache_size / response_cache_bytes:
        entry-count and byte bounds on the cross-window response cache
        checked on the hot path before admission (either 0 disables).
    """

    def __init__(
        self,
        *,
        window_s: float = 0.025,
        max_batch: int = 16,
        max_queue: int = 256,
        jobs: int = 1,
        workers: int = 0,
        dispatch_workers: int | None = None,
        max_pipelines: int = 64,
        cache: TopologyCache | None = None,
        metrics: MetricsRegistry | None = None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 10.0,
        faults: FaultPlan | None = None,
        response_cache_size: int = 128,
        response_cache_bytes: int = DEFAULT_RESPONSE_CACHE_BYTES,
        degrade_margin: float = 1.2,
        tracer: Tracer | None = None,
        profile: bool = False,
        profile_top: int = 10,
        clock=time.monotonic,
    ) -> None:
        if max_batch < 1 or max_queue < 1 or max_pipelines < 1:
            raise ConfigurationError(
                "max_batch, max_queue and max_pipelines must be >= 1"
            )
        if workers < 0 or response_cache_size < 0:
            raise ConfigurationError(
                "workers and response_cache_size must be >= 0"
            )
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self.jobs = int(jobs)
        self.max_pipelines = int(max_pipelines)
        self.cache = cache if cache is not None else TopologyCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_s = float(breaker_reset_s)
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.response_cache_size = int(response_cache_size)
        self.response_cache = ResponseCache(
            max_entries=response_cache_size, max_bytes=response_cache_bytes
        )
        self.degrade_margin = float(degrade_margin)
        self.tracer = tracer if tracer is not None else get_tracer()
        self.profile = bool(profile)
        self.profile_top = int(profile_top)
        self.clock = clock
        self._fault_clock = FaultClock()
        self._groups: dict[str, _Group] = {}
        #: LRU of assembled pipelines by group key.  Bounded because the
        #: config identity contains client-controlled floats (epsilon):
        #: unbounded, a hostile stream of distinct configs would pin
        #: Topology sessions past the session LRU's own evictions.
        self._pipelines: dict[str, Pipeline] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._compute_ewma: dict[str, float] = {}
        self._pending = 0
        self._closed = False
        self._pool: SupervisedPool | None = None
        self._pool_router = None
        if workers > 0:
            self.faults.install()  # pool workers read REPRO_FAULTS at start
            self._pool = SupervisedPool(
                _pool_run, setup=_pool_setup, workers=workers, name="repro-serve"
            )
            # Pin each topology's batches to one pool worker by the same
            # rendezvous hash the shard front end uses, so per-worker
            # session caches (labeling + distances) stay hot instead of
            # every worker slowly accumulating every topology.
            from repro.serve.shard import ShardRouter  # lazy: avoids cycle

            self._pool_router = ShardRouter([str(i) for i in range(workers)])
        if dispatch_workers is None:
            dispatch_workers = workers if workers > 0 else 1
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(dispatch_workers)),
            thread_name_prefix="repro-serve",
        )
        self._dispatch_tasks: set[asyncio.Task] = set()
        m = self.metrics
        self._m_requests = m.counter(
            "requests_total", "requests admitted to the scheduler"
        )
        self._m_rejected = m.counter(
            "rejected_total", "requests rejected before compute, by reason"
        )
        self._m_batches = m.counter("batches_total", "batch dispatches")
        self._m_coalesced = m.counter(
            "coalesced_total", "requests answered from a shared in-batch run"
        )
        self._m_queue_depth = m.gauge("queue_depth", "in-flight requests")
        self._m_batch_size = m.histogram(
            "batch_size", "requests per dispatched batch",
            bounds=tuple(float(x) for x in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
                                            48, 64, 96, 128)),
        )
        self._m_batch_unique = m.histogram(
            "batch_unique", "unique computations per dispatched batch",
            bounds=self._m_batch_size.bounds,
        )
        self._m_queue_s = m.histogram(
            "queue_seconds", "admission -> dispatch wait"
        )
        self._m_compute_s = m.histogram(
            "compute_seconds", "batch computation wall time"
        )
        self._m_retries = m.counter(
            "retries_total", "per-item transient-failure retries"
        )
        self._m_failures = m.counter(
            "failures_total", "work items failed after recovery, by class"
        )
        self._m_degraded = m.counter(
            "degraded_total", "degraded responses served, by mode"
        )
        self._m_cache_hits = m.counter(
            "response_cache_hits_total",
            "requests answered from the cross-window response cache",
        )
        self._m_cache_misses = m.counter(
            "response_cache_misses_total",
            "requests that missed the response cache and went to compute",
        )
        self._m_cache_evictions = m.counter(
            "response_cache_evictions_total",
            "response-cache entries evicted past the entry/byte budgets",
        )
        self._m_cache_entries = m.gauge(
            "response_cache_entries", "response-cache entries held"
        )
        self._m_cache_bytes = m.gauge(
            "response_cache_bytes", "pickled bytes held by the response cache"
        )
        self._m_worker_restarts = m.gauge(
            "worker_restarts", "pool workers restarted after a crash"
        )
        self._m_poisoned = m.gauge(
            "poisoned_requests", "work items isolated by crash bisection"
        )
        self._m_breakers_open = m.gauge(
            "breakers_open", "dispatch groups currently shedding load"
        )
        self._m_breaker_transitions = m.gauge(
            "breaker_transitions", "circuit state changes across all groups"
        )
        # Per-scenario quality: the serve-time window onto mapping
        # quality drift (ROADMAP item 5) -- last observed value per
        # topology, so a regression shows up in /metrics immediately.
        self._m_quality_cut = m.gauge(
            "quality_cut_edges", "latest mapped edge cut, by topology"
        )
        self._m_quality_coco = m.gauge(
            "quality_objective", "latest Coco objective value, by topology"
        )

    # -- public API ----------------------------------------------------
    @property
    def pending(self) -> int:
        return self._pending

    @property
    def pool(self) -> SupervisedPool | None:
        return self._pool

    def pipeline_for(
        self, request: MapRequest, gkey: str | None = None
    ) -> Pipeline:
        """The (cached) pipeline serving this request's batch group."""
        if gkey is None:
            gkey = request.group_key()
        pipe = self._pipelines.pop(gkey, None)
        if pipe is None:
            topology = self.cache.get(request.topology)
            pipe = Pipeline(topology, request.config)
        self._pipelines[gkey] = pipe  # (re-)insert = most recently used
        while len(self._pipelines) > self.max_pipelines:
            self._pipelines.pop(next(iter(self._pipelines)))
        return pipe

    def breaker_for(self, gkey: str) -> CircuitBreaker:
        """The (cached) circuit breaker guarding one dispatch group."""
        breaker = self._breakers.pop(gkey, None)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                reset_s=self.breaker_reset_s,
                clock=self.clock,
            )
        self._breakers[gkey] = breaker
        while len(self._breakers) > self.max_pipelines:
            # Prefer evicting a healthy breaker; an open one is actively
            # protecting the service from a failing group.
            victim = next(
                (k for k, b in self._breakers.items()
                 if b.state == CircuitBreaker.CLOSED and k != gkey),
                next(iter(self._breakers)),
            )
            self._breakers.pop(victim)
        return breaker

    def breaker_snapshot(self) -> dict:
        """Per-group breaker states (for /healthz introspection)."""
        return {k: b.snapshot() for k, b in self._breakers.items()}

    async def submit(self, request: MapRequest) -> ServedResult:
        """Admit, batch, and await one request (may raise the 4xx errors)."""
        if self._closed:
            raise ReproError("scheduler is closed")
        ctx = request.trace
        trace_id = ctx.trace_id if ctx is not None else ""
        # Hot path: a remembered identical run answers before admission
        # control, batching or breaker checks -- sound because the
        # determinism contract makes the cached result byte-identical to
        # the recompute it replaces.
        if self.response_cache.enabled:
            with self.tracer.span("cache_lookup", ctx) as cache_span:
                hit = self.response_cache.get(
                    (request.group_key(),) + request.work_key()
                )
                cache_span.set(hit=hit is not None)
            if hit is not None:
                self._m_requests.inc()
                self._m_cache_hits.inc()
                return ServedResult(
                    result=hit,
                    batch_size=1,
                    batch_unique=1,
                    coalesced=False,
                    queue_seconds=0.0,
                    compute_seconds=0.0,
                    cached=True,
                    trace_id=trace_id,
                )
            self._m_cache_misses.inc()
        if self._pending >= self.max_queue:
            self._m_rejected.inc(label="queue_full")
            raise QueueFullError(
                self._pending, self.max_queue, retry_after=max(2 * self.window_s, 0.05)
            )
        gkey = request.group_key()
        # Resolve the pipeline *before* enqueueing so an unknown
        # topology or bad config rejects immediately, not mid-batch.
        pipe = self.pipeline_for(request, gkey)
        degraded_mode: str | None = None
        breaker = self.breaker_for(gkey)
        degrade_reason = None
        if not breaker.allow():
            degrade_reason = "breaker_open"
        elif request.allow_degraded and request.deadline_s is not None:
            ewma = self._compute_ewma.get(gkey)
            if (
                ewma is not None
                and request.deadline_s
                < self.degrade_margin * ewma + self.window_s
            ):
                degrade_reason = "deadline"
        if degrade_reason is not None:
            # The ladder's verdict is observable even when it rejects:
            # the span finishes before the shed error propagates.
            degrade_span = self.tracer.span(
                "degrade_decision", ctx, reason=degrade_reason
            )
            try:
                served = self._degrade(request, gkey, breaker, degrade_reason)
            except BaseException:
                degrade_span.set(outcome="shed")
                degrade_span.finish(status="error")
                raise
            if isinstance(served, ServedResult):
                degrade_span.set(outcome="served")
                degrade_span.finish()
                return served
            request, gkey, pipe, degraded_mode = served
            degrade_span.set(outcome=degraded_mode or "full")
            degrade_span.finish()
        loop = asyncio.get_running_loop()
        now = self.clock()
        job = _Job(
            request=request,
            future=loop.create_future(),
            enqueued=now,
            deadline=(now + request.deadline_s) if request.deadline_s else None,
            degraded_mode=degraded_mode,
            span=self.tracer.span(
                "queue_wait", ctx, window_s=self.window_s
            ),
        )
        self._pending += 1
        self._m_requests.inc()
        self._m_queue_depth.set(self._pending)
        group = self._groups.get(gkey)
        if group is None:
            group = self._groups[gkey] = _Group(pipe)
        group.jobs.append(job)
        if len(group.jobs) >= self.max_batch:
            self._flush(gkey, "max_batch")
        elif group.timer is None:
            group.timer = loop.call_later(
                self.window_s, self._flush, gkey, "window"
            )
        return await job.future

    async def drain(self) -> None:
        """Wait until every admitted request has been answered."""
        while self._pending or self._dispatch_tasks:
            await asyncio.sleep(0.005)

    def close(self) -> None:
        """Stop accepting work and fail whatever is still queued."""
        self._closed = True
        for gkey, group in list(self._groups.items()):
            if group.timer is not None:
                group.timer.cancel()
                group.timer = None
            for job in group.jobs:
                if not job.future.done():
                    job.future.set_exception(ReproError("scheduler closed"))
                self._pending -= 1
            group.jobs.clear()
        self._groups.clear()
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._pool is not None:
            self._pool.close()

    # -- degradation ----------------------------------------------------
    def _degrade(
        self,
        request: MapRequest,
        gkey: str,
        breaker: CircuitBreaker,
        reason: str,
    ):
        """Resolve an unhealthy-group/tight-deadline request.

        Returns a rewritten ``(request, gkey, pipe, degraded_mode)``
        tuple to enqueue instead, or raises :class:`CircuitOpenError`.
        (A response-cache replay needs no degradation ladder any more:
        the hot-path check in :meth:`submit` already answered any
        request whose identical run is remembered, at full fidelity.)
        """
        shed = CircuitOpenError(
            f"circuit breaker open for group {gkey}",
            retry_after=breaker.retry_after(),
        )
        if not request.allow_degraded:
            self._m_rejected.inc(label="breaker_open")
            self._refresh_breaker_metrics()
            raise shed
        if request.config.enhance not in ("", "none"):
            bare = replace(
                request, config=replace(request.config, enhance="none")
            )
            bare_key = bare.group_key()
            bare_breaker = self.breaker_for(bare_key)
            if bare_breaker.allow():
                return bare, bare_key, self.pipeline_for(bare, bare_key), "no_enhance"
            self._m_rejected.inc(label="breaker_open")
            self._refresh_breaker_metrics()
            raise shed
        if reason == "breaker_open":
            self._m_rejected.inc(label="breaker_open")
            self._refresh_breaker_metrics()
            raise shed
        # Deadline-pressured but already enhance-free with no cache hit:
        # nothing left to strip, run it straight.
        return request, gkey, self.pipeline_for(request, gkey), None

    # -- internals -----------------------------------------------------
    def _observe_quality(self, topology: str, result) -> None:
        """Serve-time quality + per-stage latency for one fresh result."""
        metrics = getattr(result, "metrics", None) or {}
        if "cut_after" in metrics:
            self._m_quality_cut.set(float(metrics["cut_after"]), label=topology)
        if "coco_after" in metrics:
            self._m_quality_coco.set(
                float(metrics["coco_after"]), label=topology
            )
        for timing in getattr(result, "stage_timings", ()):
            self.metrics.histogram(
                f"stage_seconds_{timing.stage}",
                f"wall seconds spent in the {timing.stage} stage",
            ).observe(timing.seconds)

    def _refresh_breaker_metrics(self) -> None:
        self._m_breakers_open.set(
            sum(1 for b in self._breakers.values()
                if b.state != CircuitBreaker.CLOSED)
        )
        self._m_breaker_transitions.set(
            sum(b.transitions for b in self._breakers.values())
        )

    def _remember(self, gkey: str, request: MapRequest, result) -> None:
        if not self.response_cache.enabled:
            return
        self.response_cache.put((gkey,) + request.work_key(), result)
        stats = self.response_cache.stats()
        self._m_cache_entries.set(stats["entries"])
        self._m_cache_bytes.set(stats["bytes"])
        self._m_cache_evictions.inc(
            stats["evictions"] - self._m_cache_evictions.value
        )

    def _flush(self, gkey: str, reason: str = "window") -> None:
        """Move up to ``max_batch`` queued jobs of a group into a dispatch."""
        group = self._groups.get(gkey)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        if not group.jobs:  # window elapsed on an already-drained group
            del self._groups[gkey]
            return
        batch, group.jobs = group.jobs[: self.max_batch], group.jobs[self.max_batch:]
        if group.jobs:  # overflow keeps flowing without a fresh window
            group.timer = asyncio.get_running_loop().call_later(
                0, self._flush, gkey, "overflow"
            )
        else:
            # Drained groups are dropped so an idle group's pipeline
            # reference lives only in the (bounded) pipeline LRU.
            del self._groups[gkey]
        task = asyncio.get_running_loop().create_task(
            self._dispatch(gkey, group.pipeline, batch, reason)
        )
        self._dispatch_tasks.add(task)
        task.add_done_callback(self._dispatch_tasks.discard)

    def _finish(self, job: _Job, outcome) -> None:
        self._pending -= 1
        self._m_queue_depth.set(self._pending)
        if job.future.done():  # client went away (connection dropped)
            return
        if isinstance(outcome, BaseException):
            job.future.set_exception(outcome)
        else:
            job.future.set_result(outcome)

    def _compute_once(
        self,
        gkey: str,
        pipe: Pipeline,
        reqs: list[MapRequest],
        ctxs: list[SpanContext],
    ):
        """One compute attempt; returns a result-or-exception per request.

        Runs on an executor thread.  Pool mode ships ``(work-key, graph
        wire spec, seed, mu, trace wire)`` items plus the pipeline's
        pickled payload and blocks on the per-item futures; worker death
        surfaces here only after the supervisor's requeue/bisection gave
        up.  ``ctxs`` are the per-item compute-span contexts: pool
        workers parent their spans under them, in-process paths convert
        the result's stage timings directly.
        """
        plan = self.faults
        if self._pool is not None:
            pipe.warm_caches()  # labeling accounted to the parent process
            items = [
                (
                    str(req.work_key()),
                    req.graph.to_wire(),
                    req.seed,
                    None if req.mu is None
                    else np.ascontiguousarray(req.mu, dtype=np.int64),
                    ctx.to_wire()
                    if ctx.sampled and ctx.trace_id
                    else None,
                )
                for req, ctx in zip(reqs, ctxs)
            ]
            # All requests in a group share one topology (it is part of
            # the group key), so the whole batch pins to that topology's
            # rendezvous-routed worker -- its session cache stays hot.
            pin = (
                int(self._pool_router.route(reqs[0].topology))
                if self._pool_router is not None
                else None
            )
            futures = self._pool.submit(
                gkey, pipe._pickle_payload(), items, worker=pin
            )
            outcomes = []
            for future in futures:
                try:
                    value, spans = future.result()
                    if spans:
                        self.tracer.buffer.ingest(spans)
                    outcomes.append(value)
                except BaseException as exc:  # noqa: BLE001 - refiled per item
                    outcomes.append(exc)
            return outcomes
        if plan.active or any(req.mu is not None for req in reqs):
            # Per-item execution: supplied-mapping requests cannot ride
            # run_batch's seeds-only signature, and fault hooks need
            # per-item failure granularity.  Kills are never honored
            # in-process -- that would take down the service itself.
            on_task(plan, self._fault_clock, allow_kill=False)
            outcomes = []
            for req, ctx in zip(reqs, ctxs):
                try:
                    on_item(
                        plan, req.work_key(), self._fault_clock, allow_kill=False
                    )
                    ga = req.graph.build()
                    result = pipe.run(ga, mu=req.mu, seed=req.seed)
                    result.record_spans(self.tracer, ctx)
                    outcomes.append(result)
                except Exception as exc:  # noqa: BLE001 - refiled per item
                    outcomes.append(exc)
            return outcomes
        graphs = [req.graph.build() for req in reqs]
        try:
            results = pipe.run_batch(
                graphs, seeds=[req.seed for req in reqs], jobs=self.jobs
            )
        except Exception as exc:  # noqa: BLE001 - refiled per item
            return [exc for _ in reqs]
        for result, ctx in zip(results, ctxs):
            result.record_spans(self.tracer, ctx)
        return results

    def _compute_with_retries(
        self,
        gkey: str,
        pipe: Pipeline,
        unique: list[MapRequest],
        order: list[tuple],
        members: dict[tuple, list[_Job]],
        spans: list,
    ) -> list:
        """Compute all unique items, retrying transients with backoff.

        Runs on an executor thread; backoff sleeps block only this
        dispatch, not the event loop.  Before each backoff, items whose
        waiters would *all* miss their deadlines during the sleep are
        failed immediately instead of wasting the recompute.

        ``spans`` are the per-item ``compute`` spans (finished by the
        dispatcher); retry backoffs open child spans under them, and
        ``--profile`` attaches the batch's top-K hotspot frames.
        """
        ctxs = [span.context for span in spans]
        outcomes: list = [None] * len(unique)
        todo = list(range(len(unique)))
        for attempt in range(1, self.retry.max_attempts + 1):
            sub_reqs = [unique[i] for i in todo]
            sub_ctxs = [ctxs[i] for i in todo]
            if self.profile:
                results, frames = profile_call(
                    self._compute_once, gkey, pipe, sub_reqs, sub_ctxs,
                    top=self.profile_top,
                )
                for i in todo:
                    spans[i].set(profile=frames)
            else:
                results = self._compute_once(gkey, pipe, sub_reqs, sub_ctxs)
            for i, out in zip(todo, results):
                outcomes[i] = out
            if attempt == self.retry.max_attempts:
                break
            retryable = [
                i for i in todo
                if isinstance(outcomes[i], BaseException)
                and self.retry.is_retryable(outcomes[i])
            ]
            if not retryable:
                break
            delay = max(
                self.retry.delay(str(order[i]), attempt) for i in retryable
            )
            horizon = self.clock() + delay
            todo = []
            for i in retryable:
                jobs = members[order[i]]
                if all(
                    j.deadline is not None and horizon > j.deadline for j in jobs
                ):
                    exc = DeadlineExceededError(
                        "deadline would pass during retry backoff "
                        f"(attempt {attempt}, {delay:.3f}s)"
                    )
                    exc.during_retry = True
                    outcomes[i] = exc
                else:
                    todo.append(i)
            if not todo:
                break
            self._m_retries.inc(len(todo))
            backoff_spans = [
                self.tracer.span(
                    "retry_backoff", ctxs[i], attempt=attempt, delay_s=delay
                )
                for i in todo
            ]
            time.sleep(delay)
            for span in backoff_spans:
                span.finish()
        return outcomes

    async def _dispatch(
        self, gkey: str, pipe: Pipeline, batch: list[_Job], reason: str
    ) -> None:
        now = self.clock()
        live: list[_Job] = []
        for job in batch:
            if job.deadline is not None and now > job.deadline:
                if job.span is not None:
                    job.span.set(outcome="deadline_queued")
                    job.span.finish(status="error")
                self._m_rejected.inc(label="deadline_queued")
                self._finish(
                    job,
                    DeadlineExceededError(
                        f"deadline passed after {now - job.enqueued:.3f}s in queue"
                    ),
                )
            else:
                if job.span is not None:
                    job.span.set(flush_reason=reason)
                    job.span.finish()
                live.append(job)
        if not live:
            return
        # Coalesce: one computation per distinct work identity.
        order: list[tuple] = []
        members: dict[tuple, list[_Job]] = {}
        for job in live:
            key = job.request.work_key()
            if key not in members:
                members[key] = []
                order.append(key)
            members[key].append(job)
        unique = [members[key][0].request for key in order]
        # One compute span per unique item, parented under the *primary*
        # waiter's trace: a coalesced follower's tree records that it
        # coalesced (ServedResult.coalesced), not a duplicate subtree.
        compute_spans = [
            self.tracer.span(
                "compute",
                members[key][0].request.trace,
                batch_size=len(live),
                batch_unique=len(unique),
                flush_reason=reason,
                pooled=self._pool is not None,
            )
            for key in order
        ]
        loop = asyncio.get_running_loop()
        t0 = self.clock()
        outcomes = await loop.run_in_executor(
            self._executor,
            self._compute_with_retries,
            gkey, pipe, unique, order, members, compute_spans,
        )
        compute_s = self.clock() - t0
        for span, out in zip(compute_spans, outcomes):
            span.finish(
                status="error" if isinstance(out, BaseException) else "ok"
            )
        done = self.clock()
        self._m_batches.inc()
        self._m_batch_size.observe(len(live))
        self._m_batch_unique.observe(len(unique))
        self._m_coalesced.inc(len(live) - len(unique))
        self._m_compute_s.observe(compute_s)
        ewma = self._compute_ewma.get(gkey)
        per_item_s = compute_s / max(1, len(unique))
        self._compute_ewma[gkey] = (
            per_item_s if ewma is None else 0.7 * ewma + 0.3 * per_item_s
        )
        breaker = self.breaker_for(gkey)
        for i, key in enumerate(order):
            out = outcomes[i]
            if isinstance(out, BaseException):
                # Only service-side failures inform the breaker: client
                # errors and deadline misses say nothing about health.
                if isinstance(out, (TransientError, PermanentError)):
                    breaker.record_failure()
                    self._m_failures.inc(label=type(out).__name__)
            else:
                breaker.record_success()
                self._remember(gkey, unique[i], out)
                self._observe_quality(unique[i].topology, out)
            for j, job in enumerate(members[key]):
                self._m_queue_s.observe(t0 - job.enqueued)
                if isinstance(out, BaseException):
                    if isinstance(out, DeadlineExceededError):
                        label = (
                            "deadline_retry"
                            if getattr(out, "during_retry", False)
                            else "deadline_compute"
                        )
                        self._m_rejected.inc(label=label)
                    self._finish(job, out)
                elif job.deadline is not None and done > job.deadline:
                    self._m_rejected.inc(label="deadline_compute")
                    self._finish(
                        job,
                        DeadlineExceededError(
                            f"deadline passed during a {compute_s:.3f}s batch"
                        ),
                    )
                else:
                    if job.degraded_mode is not None:
                        self._m_degraded.inc(label=job.degraded_mode)
                    self._finish(
                        job,
                        ServedResult(
                            result=out,
                            batch_size=len(live),
                            batch_unique=len(unique),
                            coalesced=j > 0,
                            queue_seconds=t0 - job.enqueued,
                            compute_seconds=compute_s,
                            degraded=job.degraded_mode is not None,
                            degraded_mode=job.degraded_mode,
                            trace_id=(
                                job.request.trace.trace_id
                                if job.request.trace is not None
                                else ""
                            ),
                        ),
                    )
        if self._pool is not None:
            stats = self._pool.stats()
            self._m_worker_restarts.set(stats["restarts"])
            self._m_poisoned.set(stats["poisoned"])
        self._refresh_breaker_metrics()
