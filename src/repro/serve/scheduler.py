"""Micro-batching scheduler: group, coalesce, dispatch, bound, reject.

The serving front end (:mod:`repro.serve.service`) turns every wire
request into a :class:`MapRequest` and awaits
:meth:`BatchScheduler.submit`.  The scheduler holds each request for at
most one *batching window* and groups everything that arrives for the
same ``(topology, pipeline-config identity)`` into one dispatch through
:meth:`repro.api.Pipeline.run_batch` -- the amortization shape the API
layer was built for (one labeling, one distance matrix, one worker-pool
fan-out per batch instead of per request).

Inside a batch, requests with identical work identity -- same graph
spec, same seed, same supplied mapping -- are **coalesced**: computed
once, answered many times.  This is sound *because* of the determinism
contract (same request == same mapping, test-asserted), and it is where
most of the batching throughput win comes from on hot keys.

Admission control is a single bound on in-flight requests
(``max_queue``): past it, ``submit`` fails fast with
:class:`QueueFullError` carrying a retry-after hint, which the HTTP
layer maps to a 429.  Every request may carry a deadline; requests that
expire while queued are failed without being computed, and requests
whose deadline passes *during* their batch's computation are failed on
completion (the work is wasted, the client already walked away).

Determinism: a batch dispatch passes each request's seed verbatim to
``run_batch(seeds=[...])``, which runs ``Pipeline.run(ga, seed=s)`` per
graph -- the same call a direct library user makes.  Batched, coalesced,
``jobs=1`` or ``jobs=N``: byte-identical mappings.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.api.pipeline import Pipeline, PipelineConfig, PipelineResult
from repro.errors import ConfigurationError, ReproError
from repro.experiments.instances import generate_instance, instance_names
from repro.experiments.store import canonical_json, cell_key
from repro.graphs.builder import from_edges
from repro.graphs.graph import Graph
from repro.serve.cache import TopologyCache
from repro.serve.metrics import MetricsRegistry


class QueueFullError(ReproError):
    """Admission control rejected the request (HTTP 429)."""

    def __init__(self, pending: int, max_queue: int, retry_after: float) -> None:
        super().__init__(
            f"queue full: {pending} requests in flight (limit {max_queue})"
        )
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """The request's deadline passed before a result could be returned."""


# ----------------------------------------------------------------------
# Request model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphSpec:
    """Deterministic description of an application graph.

    Two kinds travel on the wire:

    - ``generate``: a Table-1 synthetic instance by name, regenerated
      from ``(instance, seed, sizing)`` -- compact and fully
      reproducible, the load generator's format;
    - ``edges``: an inline ``n`` + weighted edge list for callers
      mapping their own graphs.

    ``cache_key()`` is the content identity coalescing works on.
    """

    kind: str = "generate"
    instance: str = "p2p-Gnutella"
    seed: int = 0
    divisor: int = 1024
    n_min: int = 128
    n_max: int = 192
    n: int | None = None
    edges: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("generate", "edges"):
            raise ConfigurationError(
                f"graph spec kind must be 'generate' or 'edges', got {self.kind!r}"
            )
        if self.kind == "generate" and self.instance not in instance_names():
            raise ConfigurationError(
                f"unknown instance {self.instance!r}; known: "
                f"{', '.join(instance_names())}"
            )
        if self.kind == "edges" and self.n is None:
            raise ConfigurationError("inline graph spec needs a vertex count 'n'")

    def build(self) -> Graph:
        if self.kind == "generate":
            return generate_instance(
                self.instance,
                seed=self.seed,
                divisor=self.divisor,
                n_min=self.n_min,
                n_max=self.n_max,
            )
        return from_edges(
            self.n, [tuple(e) for e in self.edges], name=f"inline{self.n}"
        )

    def cache_key(self) -> str:
        if self.kind == "generate":
            return (
                f"gen:{self.instance}:{self.seed}:{self.divisor}"
                f":{self.n_min}:{self.n_max}"
            )
        digest = hashlib.sha256(
            canonical_json([self.n, [list(map(float, e)) for e in self.edges]])
            .encode()
        ).hexdigest()[:16]
        return f"edges:{digest}"

    def to_wire(self) -> dict:
        if self.kind == "generate":
            return {
                "kind": "generate",
                "instance": self.instance,
                "seed": self.seed,
                "divisor": self.divisor,
                "n_min": self.n_min,
                "n_max": self.n_max,
            }
        return {"kind": "edges", "n": self.n, "edges": [list(e) for e in self.edges]}

    @classmethod
    def from_wire(cls, payload: dict) -> "GraphSpec":
        if not isinstance(payload, dict):
            raise ConfigurationError(f"graph spec must be an object, got {payload!r}")
        known = {
            "kind", "instance", "seed", "divisor", "n_min", "n_max", "n", "edges",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown graph spec keys {unknown}; known: {sorted(known)}"
            )
        body = dict(payload)
        if "edges" in body:
            body["edges"] = tuple(tuple(e) for e in body["edges"])
        return cls(**body)


@dataclass
class MapRequest:
    """One unit of serving work, parsed and validated."""

    topology: str
    graph: GraphSpec
    config: PipelineConfig = field(default_factory=PipelineConfig)
    seed: int | None = None
    #: supplied mapping => enhance-only request (partition/map skipped)
    mu: np.ndarray | None = None
    deadline_s: float | None = None

    def group_key(self) -> str:
        """Batching group: same topology + same config identity-hash."""
        return cell_key(
            {"topology": self.topology, "config": self.config.identity()}
        )

    def work_key(self) -> tuple:
        """Coalescing identity: requests with equal keys share one run."""
        mu_tag = (
            hashlib.sha256(
                np.ascontiguousarray(self.mu, dtype=np.int64).tobytes()
            ).hexdigest()[:16]
            if self.mu is not None
            else None
        )
        return (self.graph.cache_key(), self.seed, mu_tag)


@dataclass
class ServedResult:
    """A pipeline result plus how the scheduler handled it."""

    result: PipelineResult
    batch_size: int
    batch_unique: int
    coalesced: bool
    queue_seconds: float
    compute_seconds: float


@dataclass
class _Job:
    request: MapRequest
    future: asyncio.Future
    enqueued: float
    deadline: float | None


class _Group:
    __slots__ = ("jobs", "timer", "pipeline")

    def __init__(self, pipeline: Pipeline) -> None:
        self.jobs: list[_Job] = []
        self.timer: asyncio.TimerHandle | None = None
        #: held here so a dispatch keeps its pipeline even if the
        #: scheduler's pipeline LRU evicts the group key meanwhile
        self.pipeline = pipeline


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class BatchScheduler:
    """Window-and-size micro-batcher over a shared :class:`TopologyCache`.

    Parameters
    ----------
    window_s:
        how long the first request of a group waits for company.  ``0``
        still batches whatever lands in the same event-loop tick; the
        benchmarks' "batching disabled" baseline uses ``max_batch=1``.
    max_batch:
        dispatch a group as soon as it holds this many requests.
    max_queue:
        admission bound on in-flight requests across all groups.
    jobs:
        worker processes for ``run_batch`` inside one dispatch (1 =
        in-process, byte-identical either way).
    dispatch_workers:
        executor threads running batch computations; 1 (the default)
        serializes batches, which keeps single-core latency predictable.
    max_pipelines:
        LRU bound on cached per-group pipelines (group keys embed
        client-supplied config values, so the cache must not trust
        clients to keep the key space small).
    """

    def __init__(
        self,
        *,
        window_s: float = 0.025,
        max_batch: int = 16,
        max_queue: int = 256,
        jobs: int = 1,
        dispatch_workers: int = 1,
        max_pipelines: int = 64,
        cache: TopologyCache | None = None,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_batch < 1 or max_queue < 1 or max_pipelines < 1:
            raise ConfigurationError(
                "max_batch, max_queue and max_pipelines must be >= 1"
            )
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self.jobs = int(jobs)
        self.max_pipelines = int(max_pipelines)
        self.cache = cache if cache is not None else TopologyCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self._groups: dict[str, _Group] = {}
        #: LRU of assembled pipelines by group key.  Bounded because the
        #: config identity contains client-controlled floats (epsilon):
        #: unbounded, a hostile stream of distinct configs would pin
        #: Topology sessions past the session LRU's own evictions.
        self._pipelines: dict[str, Pipeline] = {}
        self._pending = 0
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="repro-serve"
        )
        self._dispatch_tasks: set[asyncio.Task] = set()
        m = self.metrics
        self._m_requests = m.counter(
            "requests_total", "requests admitted to the scheduler"
        )
        self._m_rejected = m.counter(
            "rejected_total", "requests rejected before compute, by reason"
        )
        self._m_batches = m.counter("batches_total", "batch dispatches")
        self._m_coalesced = m.counter(
            "coalesced_total", "requests answered from a shared in-batch run"
        )
        self._m_queue_depth = m.gauge("queue_depth", "in-flight requests")
        self._m_batch_size = m.histogram(
            "batch_size", "requests per dispatched batch",
            bounds=tuple(float(x) for x in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
                                            48, 64, 96, 128)),
        )
        self._m_batch_unique = m.histogram(
            "batch_unique", "unique computations per dispatched batch",
            bounds=self._m_batch_size.bounds,
        )
        self._m_queue_s = m.histogram(
            "queue_seconds", "admission -> dispatch wait"
        )
        self._m_compute_s = m.histogram(
            "compute_seconds", "batch computation wall time"
        )

    # -- public API ----------------------------------------------------
    @property
    def pending(self) -> int:
        return self._pending

    def pipeline_for(
        self, request: MapRequest, gkey: str | None = None
    ) -> Pipeline:
        """The (cached) pipeline serving this request's batch group."""
        if gkey is None:
            gkey = request.group_key()
        pipe = self._pipelines.pop(gkey, None)
        if pipe is None:
            topology = self.cache.get(request.topology)
            pipe = Pipeline(topology, request.config)
        self._pipelines[gkey] = pipe  # (re-)insert = most recently used
        while len(self._pipelines) > self.max_pipelines:
            self._pipelines.pop(next(iter(self._pipelines)))
        return pipe

    async def submit(self, request: MapRequest) -> ServedResult:
        """Admit, batch, and await one request (may raise the 4xx errors)."""
        if self._closed:
            raise ReproError("scheduler is closed")
        if self._pending >= self.max_queue:
            self._m_rejected.inc(label="queue_full")
            raise QueueFullError(
                self._pending, self.max_queue, retry_after=max(2 * self.window_s, 0.05)
            )
        gkey = request.group_key()
        # Resolve the pipeline *before* enqueueing so an unknown
        # topology or bad config rejects immediately, not mid-batch.
        pipe = self.pipeline_for(request, gkey)
        loop = asyncio.get_running_loop()
        now = self.clock()
        job = _Job(
            request=request,
            future=loop.create_future(),
            enqueued=now,
            deadline=(now + request.deadline_s) if request.deadline_s else None,
        )
        self._pending += 1
        self._m_requests.inc()
        self._m_queue_depth.set(self._pending)
        group = self._groups.get(gkey)
        if group is None:
            group = self._groups[gkey] = _Group(pipe)
        group.jobs.append(job)
        if len(group.jobs) >= self.max_batch:
            self._flush(gkey)
        elif group.timer is None:
            group.timer = loop.call_later(self.window_s, self._flush, gkey)
        return await job.future

    async def drain(self) -> None:
        """Wait until every admitted request has been answered."""
        while self._pending or self._dispatch_tasks:
            await asyncio.sleep(0.005)

    def close(self) -> None:
        """Stop accepting work and fail whatever is still queued."""
        self._closed = True
        for gkey, group in list(self._groups.items()):
            if group.timer is not None:
                group.timer.cancel()
                group.timer = None
            for job in group.jobs:
                if not job.future.done():
                    job.future.set_exception(ReproError("scheduler closed"))
                self._pending -= 1
            group.jobs.clear()
        self._groups.clear()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- internals -----------------------------------------------------
    def _flush(self, gkey: str) -> None:
        """Move up to ``max_batch`` queued jobs of a group into a dispatch."""
        group = self._groups.get(gkey)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        if not group.jobs:  # window elapsed on an already-drained group
            del self._groups[gkey]
            return
        batch, group.jobs = group.jobs[: self.max_batch], group.jobs[self.max_batch:]
        if group.jobs:  # overflow keeps flowing without a fresh window
            group.timer = asyncio.get_running_loop().call_later(
                0, self._flush, gkey
            )
        else:
            # Drained groups are dropped so an idle group's pipeline
            # reference lives only in the (bounded) pipeline LRU.
            del self._groups[gkey]
        task = asyncio.get_running_loop().create_task(
            self._dispatch(group.pipeline, batch)
        )
        self._dispatch_tasks.add(task)
        task.add_done_callback(self._dispatch_tasks.discard)

    def _finish(self, job: _Job, outcome) -> None:
        self._pending -= 1
        self._m_queue_depth.set(self._pending)
        if job.future.done():  # client went away (connection dropped)
            return
        if isinstance(outcome, BaseException):
            job.future.set_exception(outcome)
        else:
            job.future.set_result(outcome)

    async def _dispatch(self, pipe: Pipeline, batch: list[_Job]) -> None:
        now = self.clock()
        live: list[_Job] = []
        for job in batch:
            if job.deadline is not None and now > job.deadline:
                self._m_rejected.inc(label="deadline_queued")
                self._finish(
                    job,
                    DeadlineExceededError(
                        f"deadline passed after {now - job.enqueued:.3f}s in queue"
                    ),
                )
            else:
                live.append(job)
        if not live:
            return
        # Coalesce: one computation per distinct work identity.
        order: list[tuple] = []
        members: dict[tuple, list[_Job]] = {}
        for job in live:
            key = job.request.work_key()
            if key not in members:
                members[key] = []
                order.append(key)
            members[key].append(job)
        unique = [members[key][0].request for key in order]
        loop = asyncio.get_running_loop()
        t0 = self.clock()

        def compute() -> list[PipelineResult]:
            graphs = [req.graph.build() for req in unique]
            if any(req.mu is not None for req in unique):
                # Supplied-mapping (enhance) requests cannot ride
                # run_batch's seeds-only signature; the session caches
                # still amortize across the loop.
                return [
                    pipe.run(ga, mu=req.mu, seed=req.seed)
                    for ga, req in zip(graphs, unique)
                ]
            return pipe.run_batch(
                graphs, seeds=[req.seed for req in unique], jobs=self.jobs
            )

        try:
            results = await loop.run_in_executor(self._executor, compute)
            error: BaseException | None = None
        except BaseException as exc:
            results, error = [], exc
        compute_s = self.clock() - t0
        done = self.clock()
        self._m_batches.inc()
        self._m_batch_size.observe(len(live))
        self._m_batch_unique.observe(len(unique))
        self._m_coalesced.inc(len(live) - len(unique))
        self._m_compute_s.observe(compute_s)
        for i, key in enumerate(order):
            for j, job in enumerate(members[key]):
                self._m_queue_s.observe(t0 - job.enqueued)
                if error is not None:
                    self._finish(job, error)
                elif job.deadline is not None and done > job.deadline:
                    self._m_rejected.inc(label="deadline_compute")
                    self._finish(
                        job,
                        DeadlineExceededError(
                            f"deadline passed during a {compute_s:.3f}s batch"
                        ),
                    )
                else:
                    self._finish(
                        job,
                        ServedResult(
                            result=results[i],
                            batch_size=len(live),
                            batch_unique=len(unique),
                            coalesced=j > 0,
                            queue_seconds=t0 - job.enqueued,
                            compute_seconds=compute_s,
                        ),
                    )
