"""JSON-over-HTTP (and JSON-lines stdio) front end for the pipeline.

One long-lived process serves TIMER's whole chain against a fixed set of
topologies, amortizing labelings, distance matrices and batch dispatch
across requests (the ROADMAP's "heavy traffic" shape).  Everything is
stdlib ``asyncio`` -- no web framework -- because the protocol is five
endpoints and the hot path is the scheduler, not the parser:

- ``POST /map``      -- partition + initial mapping (+ enhance) of one
  application graph; body documented in ``docs/serving.md``.
- ``POST /enhance``  -- run the enhance stage on a supplied mapping.
- ``POST /batch``    -- a list of map/enhance payloads submitted
  concurrently, so they share one batching window by construction.
- ``GET  /healthz``  -- liveness + queue depth + served topologies.
- ``GET  /metrics``  -- Prometheus text; ``?format=json`` for the JSON
  schema the benchmarks consume.

The stdio mode (``repro serve --stdio``) speaks the same request bodies
as newline-delimited JSON with an ``op`` field, for embedding the
service under a supervisor or over SSH without opening a port.

Server-side request validation is hook-based: the service registers the
``serve-admissible`` verify hook (graph-size admission limit) in the
unified registry and prepends it to every request's ``pre_verify``
chain, alongside a parse-time fast check so oversized inline graphs are
rejected before they are ever built.  The standard ``mapping-valid``
hook runs post-run on every served result.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import traceback
from dataclasses import dataclass
from functools import partial
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.obs import configure_tracer, get_logger
from repro.obs.trace import WIRE_KEY, SpanContext

from repro.api.pipeline import PipelineConfig
from repro.api.registry import REGISTRY, TOPOLOGY, VERIFY
from repro.core.backend import get_backend, set_default_backend
from repro.core.config import TimerConfig
from repro.errors import (
    CircuitOpenError,
    MappingError,
    PermanentError,
    ReproError,
    TransientError,
)
from repro.serve.cache import DEFAULT_RESPONSE_CACHE_BYTES, TopologyCache
from repro.serve.faults import FaultPlan
from repro.serve.metrics import MetricsRegistry
from repro.serve.retry import RetryPolicy
from repro.serve.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    GraphSpec,
    MapRequest,
    QueueFullError,
    ServedResult,
)

#: Registry-name prefix of the server-side admission verify hook.  The
#: unsuffixed name is the no-limit hook; a service with ``--max-n N``
#: registers (and references in its configs) ``serve-admissible-N``, so
#: the name *encodes* the limit: two services in one process can hold
#: different limits without clobbering each other's registration, and
#: re-registering the same name is idempotent.
ADMISSION_HOOK = "serve-admissible"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard cap on request body bytes (inline edge lists can be large, but a
#: serving process must bound what it buffers per connection).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Hard cap on accumulated request-header bytes per request; a client
#: streaming endless header lines must hit a 400, not grow the dict.
MAX_HEADER_BYTES = 64 * 1024


def register_admission_hook(max_graph_n: int | None) -> str:
    """Register the admission verify hook for ``max_graph_n``; return its name.

    The hook enforces the service's graph-size admission limit *inside*
    the pipeline, so it also covers library users who borrow the served
    config; the service additionally rejects oversized specs at parse
    time to keep a poisoned request from failing its batch neighbors.
    The registered name encodes the limit (see :data:`ADMISSION_HOOK`),
    keeping the name -> behavior mapping deterministic however many
    services a process hosts.
    """
    name = (
        ADMISSION_HOOK if max_graph_n is None
        else f"{ADMISSION_HOOK}-{int(max_graph_n)}"
    )

    def hook(ctx) -> None:
        if max_graph_n is not None and ctx.ga.n > max_graph_n:
            raise MappingError(
                f"graph has {ctx.ga.n} vertices; this server admits at "
                f"most {max_graph_n}"
            )

    # repro: allow[REG001] reason=admission limits are per-ServeSettings, so the hook can only exist once a service is configured; the name encodes the limit and overwrite=True keeps re-registration idempotent
    REGISTRY.register(VERIFY, name, hook, overwrite=True)
    return name


register_admission_hook(None)


# ----------------------------------------------------------------------
# Wire parsing
# ----------------------------------------------------------------------
_CONFIG_KEYS = {
    "partition", "initial_mapping", "case", "enhance", "epsilon",
    "seed_policy", "nh", "n_hierarchies", "strategy", "swap_strategy",
    "verify", "report", "backend",
}


def parse_config(
    payload: dict | None, admission_hook: str = ADMISSION_HOOK
) -> PipelineConfig:
    """Wire config dict -> :class:`PipelineConfig` (CLI flag spellings).

    The parsed config always carries the server's verify chain: the
    admission hook pre-run and ``mapping-valid`` (plus any requested
    hooks) post-run.
    """
    payload = dict(payload or {})
    unknown = sorted(set(payload) - _CONFIG_KEYS)
    if unknown:
        raise ReproError(
            f"unknown config keys {unknown}; known: {sorted(_CONFIG_KEYS)}"
        )
    verify = tuple(payload.get("verify", ()))
    reports = tuple(payload.get("report", ()))
    nh = int(payload.get("nh", payload.get("n_hierarchies", 8)))
    strategy = str(payload.get("strategy", payload.get("swap_strategy", "greedy")))
    return PipelineConfig(
        partition=str(payload.get("partition", "kway")),
        initial_mapping=str(payload.get("initial_mapping", payload.get("case", "c2"))),
        enhance=str(payload.get("enhance", "timer")),
        epsilon=float(payload.get("epsilon", 0.03)),
        seed_policy=str(payload.get("seed_policy", "stream")),
        timer=TimerConfig(n_hierarchies=nh, swap_strategy=strategy),
        pre_verify=(admission_hook,),
        post_verify=("mapping-valid",) + verify,
        reports=reports,
        # Note: backend is excluded from PipelineConfig.identity(), so
        # requests differing only in backend still share a batch group
        # and a response-cache cell (the backends are byte-identical).
        backend=str(payload.get("backend", "")),
    )


def parse_request(
    payload: dict,
    *,
    require_mu: bool = False,
    max_graph_n: int | None = None,
    admission_hook: str = ADMISSION_HOOK,
    default_deadline_s: float | None = None,
) -> MapRequest:
    """One wire body -> a validated :class:`MapRequest` (raises ReproError)."""
    if not isinstance(payload, dict):
        raise ReproError(f"request body must be a JSON object, got {payload!r}")
    known = {
        "topology", "graph", "config", "seed", "mu", "deadline_s",
        "allow_degraded", "op", "id", "trace",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ReproError(f"unknown request keys {unknown}; known: {sorted(known)}")
    if "topology" not in payload:
        raise ReproError("request needs a 'topology'")
    spec = GraphSpec.from_wire(payload.get("graph", {}))
    if max_graph_n is not None:
        approx_n = spec.n if spec.kind == "edges" else spec.n_max
        if approx_n is not None and approx_n > max_graph_n:
            raise ReproError(
                f"graph spec allows {approx_n} vertices; this server admits "
                f"at most {max_graph_n}"
            )
    seed = payload.get("seed")
    if seed is not None:
        seed = int(seed)
    mu = payload.get("mu")
    if require_mu and mu is None:
        raise ReproError("enhance requests need a 'mu' mapping array")
    if mu is not None:
        mu = np.asarray([int(x) for x in mu], dtype=np.int64)
    deadline_s = payload.get("deadline_s", default_deadline_s)
    if deadline_s is not None:
        deadline_s = float(deadline_s)
        if deadline_s <= 0:
            raise ReproError(f"deadline_s must be positive, got {deadline_s}")
    return MapRequest(
        topology=str(payload["topology"]),
        graph=spec,
        config=parse_config(payload.get("config"), admission_hook),
        seed=seed,
        mu=mu,
        deadline_s=deadline_s,
        allow_degraded=bool(payload.get("allow_degraded", False)),
    )


# ----------------------------------------------------------------------
# The service (transport-independent op handling)
# ----------------------------------------------------------------------
class MappingService:
    """Routes parsed operations through one :class:`BatchScheduler`."""

    def __init__(
        self,
        scheduler: BatchScheduler,
        *,
        max_graph_n: int | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.metrics = scheduler.metrics
        self.tracer = scheduler.tracer
        self.max_graph_n = max_graph_n
        self.admission_hook = register_admission_hook(max_graph_n)
        self._m_responses = self.metrics.counter(
            "responses_total", "responses sent, by status code"
        )
        self._log = get_logger("serve.service")

    async def handle(self, op: str, payload: dict) -> tuple[int, dict | str, dict]:
        """Dispatch one operation -> ``(status, body, extra_headers)``."""
        try:
            if op == "healthz":
                return 200, self._healthz(), {}
            if op == "metrics":
                fmt = (payload or {}).get("format", "text")
                extra = self._metrics_extra()
                if fmt == "json":
                    return 200, self.metrics.render_json(extra=extra), {}
                return 200, self.metrics.render_prometheus(extra=extra), {}
            if op in ("map", "enhance"):
                with self._open_request_span(op, payload) as span:
                    request = parse_request(
                        payload,
                        require_mu=(op == "enhance"),
                        max_graph_n=self.max_graph_n,
                        admission_hook=self.admission_hook,
                    )
                    request.trace = span.context
                    served = await self.scheduler.submit(request)
                    span.set(cached=served.cached, degraded=served.degraded)
                return 200, result_body(served), {}
            if op == "batch":
                return await self._handle_batch(payload)
            if op == "traces":
                q = payload or {}
                snapshot = self.tracer.debug_snapshot(
                    recent=int(q.get("recent", 20)),
                    slowest=int(q.get("slowest", 5)),
                )
                return 200, snapshot, {}
            return 404, {"ok": False, "error": "not_found",
                         "message": f"unknown operation {op!r}"}, {}
        except QueueFullError as exc:
            body = {"ok": False, "error": "queue_full", "message": str(exc),
                    "retry_after_s": exc.retry_after}
            return 429, body, {"Retry-After": f"{exc.retry_after:.3f}"}
        except DeadlineExceededError as exc:
            return 504, {"ok": False, "error": "deadline_exceeded",
                         "message": str(exc)}, {}
        except CircuitOpenError as exc:
            body = {"ok": False, "error": "circuit_open", "message": str(exc),
                    "retry_after_s": exc.retry_after}
            return 503, body, {"Retry-After": f"{max(exc.retry_after, 0.001):.3f}"}
        except TransientError as exc:
            # Retries exhausted on a transient fault: the work may well
            # succeed on a fresh request, so shed rather than condemn.
            hint = max(float(getattr(exc, "retry_after", 0.0)), 0.1)
            body = {"ok": False, "error": "transient", "message": str(exc),
                    "retry_after_s": hint}
            return 503, body, {"Retry-After": f"{hint:.3f}"}
        except PermanentError as exc:
            # Service-side verdict (e.g. a poison request isolated by
            # crash bisection): retrying the same work cannot help.
            return 500, {"ok": False, "error": "permanent",
                         "message": str(exc)}, {}
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            return 400, {"ok": False, "error": "bad_request",
                         "message": str(exc)}, {}
        except Exception as exc:  # pragma: no cover - defensive
            self._log.error(
                "unhandled_exception",
                op=op,
                error=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
            )
            return 500, {"ok": False, "error": "internal",
                         "message": f"{type(exc).__name__}: {exc}"}, {}

    def _open_request_span(self, op: str, payload: dict):
        """The server-side root span for one map/enhance request.

        A front-end-stamped context in ``payload["trace"]`` parents this
        span under the frontend's request span (one cross-process tree);
        otherwise the trace id derives from the payload's canonical JSON
        -- the request's run identity, so replays share a trace id.  A
        client hint ``{"trace": {"sample": false}}`` opts the request
        out of trace retention (the loadgen ``--trace-sample`` knob).
        """
        raw = payload.get(WIRE_KEY) if isinstance(payload, dict) else None
        ctx = SpanContext.from_wire(raw)
        if ctx is None:
            sampled = True
            if isinstance(raw, dict):
                sampled = bool(raw.get("sample", True))
            base = (
                {k: v for k, v in payload.items() if k != WIRE_KEY}
                if isinstance(payload, dict)
                else payload
            )
            ctx = self.tracer.start_trace(base, sampled=sampled)
        return self.tracer.span("handle", ctx, op=op)

    async def _handle_batch(self, payload: dict) -> tuple[int, dict, dict]:
        requests = (payload or {}).get("requests")
        if not isinstance(requests, list) or not requests:
            raise ReproError("batch body needs a non-empty 'requests' list")
        if not all(isinstance(item, dict) for item in requests):
            # Rejected before anything is submitted: one malformed item
            # must not waste its siblings' computation.
            raise ReproError("every 'requests' entry must be a JSON object")
        # Submitted concurrently, so the whole batch shares one window.
        outcomes = await asyncio.gather(
            *(
                self.handle(str(item.get("op", "map")), item)
                for item in requests
            ),
        )
        results = []
        for (status, body, _headers), item in zip(outcomes, requests):
            if isinstance(body, dict) and "id" in item:
                body = {**body, "id": item["id"]}
            # "status_code", like the stdio wrapper: a healthz body's own
            # "status": "ok" must not shadow the integer code.
            results.append(
                {"status_code": status, **(body if isinstance(body, dict)
                                           else {"body": body})}
            )
        return 200, {"ok": True, "results": results}, {}

    def _healthz(self) -> dict:
        body = {
            "status": "ok",
            "uptime_seconds": self.metrics.uptime_seconds,
            "pending": self.scheduler.pending,
            "topologies": list(REGISTRY.names(TOPOLOGY)),
            "cache": self.scheduler.cache.stats(),
            "breakers": self.scheduler.breaker_snapshot(),
            "faults_active": self.scheduler.faults.active,
            "kernel_backend": get_backend(),
        }
        if self.scheduler.pool is not None:
            body["pool"] = self.scheduler.pool.stats()
        return body

    def _metrics_extra(self) -> dict:
        stats = self.scheduler.cache.stats()
        trace_stats = self.tracer.buffer.stats()
        return {
            "cache_sessions_size": stats["sessions"]["size"],
            "cache_sessions_hits": stats["sessions"]["hits"],
            "cache_sessions_misses": stats["sessions"]["misses"],
            "cache_sessions_evictions": stats["sessions"]["evictions"],
            "cache_disk_hits": stats["disk"]["hits"],
            "cache_disk_misses": stats["disk"]["misses"],
            "cache_disk_stores": stats["disk"]["stores"],
            "cache_disk_corrupt": stats["disk"]["corrupt"],
            "labelings_computed": stats["labelings_computed"],
            "kernel_backend": get_backend(),
            "trace_buffer_traces": trace_stats["traces"],
            "trace_buffer_spans": trace_stats["spans"],
            "trace_buffer_dropped_spans": trace_stats["dropped_spans"],
        }

    def record_response(self, status: int) -> None:
        self._m_responses.inc(label=str(status))


def result_body(served: ServedResult) -> dict:
    """The documented response body of a successful map/enhance."""
    res = served.result
    body = {
        "ok": True,
        "graph": res.graph,
        "topology": res.topology,
        "seed": res.seed,
        "mu": [int(x) for x in res.mu_final],
        "metrics": res.metrics,
        "reports": res.reports,
        "identity_hash": res.identity_hash,
        "batch": {
            "size": served.batch_size,
            "unique": served.batch_unique,
            "coalesced": served.coalesced,
            "queue_seconds": served.queue_seconds,
            "compute_seconds": served.compute_seconds,
        },
    }
    if served.degraded:
        # Flagged so clients never mistake a degraded answer for the
        # byte-identity-contracted full result.
        body["degraded"] = True
        body["degraded_mode"] = served.degraded_mode
    if served.cached:
        # Informational only: a response-cache hit is full fidelity
        # (byte-identical to a recompute by the determinism contract).
        body["cached"] = True
    if served.trace_id:
        # The handle to this request's span tree in /debug/traces.
        body["trace_id"] = served.trace_id
    return body


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
_ROUTES = {
    ("POST", "/map"): "map",
    ("POST", "/enhance"): "enhance",
    ("POST", "/batch"): "batch",
    ("GET", "/healthz"): "healthz",
    ("GET", "/metrics"): "metrics",
    ("GET", "/debug/traces"): "traces",
}


async def _read_http_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise ReproError(f"malformed request line {line!r}") from None
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise ReproError(f"request headers exceed {MAX_HEADER_BYTES} bytes")
        key, _, value = raw.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    if length > MAX_BODY_BYTES:
        raise ReproError(f"request body of {length} bytes exceeds the limit")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def _http_response(
    status: int, body: dict | str, extra_headers: dict | None = None
) -> bytes:
    if isinstance(body, str):
        payload = body.encode("utf-8")
        ctype = "text/plain; version=0.0.4; charset=utf-8"
    else:
        payload = (json.dumps(body) + "\n").encode("utf-8")
        ctype = "application/json"
    head = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
    head.append(f"Content-Type: {ctype}")
    head.append(f"Content-Length: {len(payload)}")
    for key, value in (extra_headers or {}).items():
        head.append(f"{key}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload


async def handle_http_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    service: MappingService,
) -> None:
    """Keep-alive request loop for one client connection."""
    try:
        while True:
            try:
                parsed = await _read_http_request(reader)
            except (ReproError, asyncio.IncompleteReadError, ValueError):
                writer.write(_http_response(
                    400, {"ok": False, "error": "bad_request",
                          "message": "malformed HTTP request"}))
                break
            if parsed is None:
                break
            method, target, headers, raw_body = parsed
            url = urlsplit(target)
            op = _ROUTES.get((method, url.path))
            if op is None:
                known_path = any(p == url.path for (_m, p) in _ROUTES)
                status, body, extra = (405 if known_path else 404), {
                    "ok": False,
                    "error": "method_not_allowed" if known_path else "not_found",
                    "message": f"no route for {method} {url.path}",
                }, {}
            else:
                try:
                    payload = json.loads(raw_body) if raw_body else {}
                except json.JSONDecodeError as exc:
                    payload, op = None, None
                    status, body, extra = 400, {
                        "ok": False, "error": "bad_request",
                        "message": f"invalid JSON body: {exc}"}, {}
                if op is not None:
                    query = {k: v[0] for k, v in parse_qs(url.query).items()}
                    if op in ("metrics", "traces") and query:
                        payload = {**(payload or {}), **query}
                    status, body, extra = await service.handle(op, payload)
            service.record_response(status)
            writer.write(_http_response(status, body, extra))
            await writer.drain()
            if headers.get("connection", "keep-alive").lower() == "close":
                break
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# stdio transport (JSON lines)
# ----------------------------------------------------------------------
async def _drain_oversized_line(reader: asyncio.StreamReader) -> bool:
    """Discard buffered input through the next newline; True on EOF."""
    while True:
        try:
            await reader.readuntil(b"\n")
            return False
        except asyncio.LimitOverrunError as exc:
            await reader.read(max(int(exc.consumed), 1))
        except (asyncio.IncompleteReadError, ValueError):
            return True


async def serve_stdio(
    service: MappingService,
    reader: asyncio.StreamReader,
    write_line,
) -> None:
    """One JSON request per input line, one JSON response line each.

    Requests carry ``{"op": "map" | "enhance" | "batch" | "healthz" |
    "metrics", "id": <echoed>, ...body}``; ``op`` defaults to ``map``.
    Requests are **pipelined**: each valid line is dispatched as its own
    task and its response line is written as soon as the handler
    finishes, so many map lines sent back-to-back share one batching
    window exactly like concurrent HTTP posts.  Responses may therefore
    return out of submission order -- embedders sending more than one
    in-flight request must tag each line with an ``id`` and match
    responses by the echoed ``id``, not by position.

    A malformed or oversized line answers with a structured error and
    the loop continues -- one bad request must never terminate the
    session (the embedder would lose every request behind it).
    """
    tasks: set[asyncio.Task] = set()

    async def dispatch(payload: dict) -> None:
        op = str(payload.get("op", "map"))
        status, body, _headers = await service.handle(op, payload)
        if isinstance(body, str):
            body = {"ok": status == 200, "text": body}
        if "id" in payload:
            body = {**body, "id": payload["id"]}
        service.record_response(status)
        # "status_code", not "status": healthz bodies carry their own
        # "status": "ok" field which must survive the wrapping.
        write_line(json.dumps({"status_code": status, **body}))

    def submit(payload: dict) -> None:
        task = asyncio.ensure_future(dispatch(payload))
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    try:
        while True:
            try:
                # readuntil, not readline: readline's overrun handling
                # clears the whole buffer, which would also discard
                # healthy requests already queued behind the oversized
                # line.
                raw = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as exc:
                raw = exc.partial  # final line without a terminator
            except (asyncio.LimitOverrunError, ValueError):
                # Line exceeds the reader's buffer limit: discard
                # through the next newline so the stream resynchronizes,
                # then answer with a structured error instead of dying.
                eof = await _drain_oversized_line(reader)
                write_line(json.dumps({
                    "ok": False, "error": "bad_request",
                    "message": "request line exceeds the size limit",
                }))
                if eof:
                    return
                continue
            if not raw:
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                write_line(json.dumps({"ok": False, "error": "bad_request",
                                       "message": f"invalid JSON: {exc}"}))
                continue
            if not isinstance(payload, dict):
                write_line(json.dumps({"ok": False, "error": "bad_request",
                                       "message": "request line must be a "
                                       "JSON object"}))
                continue
            submit(payload)
    finally:
        # EOF: finish what was admitted (responses the embedder is
        # still owed) before returning control to the caller.
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
@dataclass
class ServeSettings:
    """Everything ``repro serve`` configures (defaults match the CLI)."""

    host: str = "127.0.0.1"
    port: int = 8080
    window_ms: float = 25.0
    max_batch: int = 16
    max_queue: int = 256
    jobs: int = 1
    #: > 0 moves batch compute onto the supervised crash-tolerant pool
    workers: int = 0
    max_sessions: int | None = None
    #: bound on memoized per-group :class:`Pipeline` objects; pipelines
    #: pin their topology session, so shrinking this (with
    #: ``max_sessions``) is what actually caps labeling residency
    max_pipelines: int = 64
    labeling_cache: str | None = None
    max_graph_n: int | None = None
    warm: tuple[str, ...] = ()
    stdio: bool = False
    retry_attempts: int = 3
    retry_base_ms: float = 50.0
    breaker_threshold: int = 5
    breaker_reset_s: float = 10.0
    #: JSON fault plan (see :class:`repro.serve.faults.FaultPlan`);
    #: ``None`` falls back to the ``REPRO_FAULTS`` environment variable
    faults: str | None = None
    response_cache: int = 128
    #: byte budget of the run-identity response cache (0 disables it)
    response_cache_bytes: int = DEFAULT_RESPONSE_CACHE_BYTES
    #: process-default kernel backend ("" = auto); per-request configs
    #: can still name their own (``config.backend`` on the wire)
    backend: str = ""
    #: > 0 serves through a consistent-hash front end over this many
    #: backend worker processes (see :mod:`repro.serve.shard`)
    shards: int = 0
    #: end-to-end tracing (deterministic span trees in /debug/traces);
    #: cheap enough to default on -- the bench gates overhead at <= 2%
    trace: bool = True
    #: trace ring-buffer bound (traces retained per process)
    trace_buffer: int = 256
    #: role tag stamped on this process's spans ("serve" standalone,
    #: "shard" under a front end -- set by the shard spawner)
    trace_process: str = "serve"
    #: attach cProfile top-K hotspot frames to every compute span
    profile: bool = False


def build_service(settings: ServeSettings) -> MappingService:
    if settings.backend:
        # Validates the name up front (bad --backend fails at boot, not
        # on the first request) and becomes the process-wide default.
        set_default_backend(settings.backend)
    cache = TopologyCache(
        max_sessions=settings.max_sessions, disk_dir=settings.labeling_cache
    )
    if settings.warm:
        cache.warm(settings.warm)
    plan = (
        FaultPlan.from_json(settings.faults)
        if settings.faults
        else FaultPlan.from_env()
    )
    tracer = configure_tracer(
        process=settings.trace_process,
        enabled=settings.trace,
        max_traces=settings.trace_buffer,
    )
    scheduler = BatchScheduler(
        window_s=settings.window_ms / 1000.0,
        max_batch=settings.max_batch,
        max_queue=settings.max_queue,
        max_pipelines=settings.max_pipelines,
        jobs=settings.jobs,
        workers=settings.workers,
        cache=cache,
        metrics=MetricsRegistry(),
        retry=RetryPolicy(
            max_attempts=settings.retry_attempts,
            base_delay=settings.retry_base_ms / 1000.0,
        ),
        breaker_threshold=settings.breaker_threshold,
        breaker_reset_s=settings.breaker_reset_s,
        faults=plan,
        response_cache_size=settings.response_cache,
        response_cache_bytes=settings.response_cache_bytes,
        tracer=tracer,
        profile=settings.profile,
    )
    return MappingService(scheduler, max_graph_n=settings.max_graph_n)


async def _amain(settings: ServeSettings) -> int:
    service = build_service(settings)
    try:
        if settings.stdio:
            loop = asyncio.get_running_loop()
            # Same per-request size cap as the HTTP transport; overlong
            # lines get a structured error (see serve_stdio), so the
            # limit bounds buffering without killing the session.
            reader = asyncio.StreamReader(limit=MAX_BODY_BYTES)
            await loop.connect_read_pipe(
                lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
            )

            def write_line(text: str) -> None:
                sys.stdout.write(text + "\n")
                sys.stdout.flush()

            get_logger("serve").info("serve_started", mode="stdio")
            await serve_stdio(service, reader, write_line)
            return 0
        server = await asyncio.start_server(
            partial(handle_http_connection, service=service),
            settings.host,
            settings.port,
        )
        bound = server.sockets[0].getsockname()
        get_logger("serve").info(
            "serve_listening",
            url=f"http://{bound[0]}:{bound[1]}",
            window_ms=settings.window_ms,
            max_batch=settings.max_batch,
            max_queue=settings.max_queue,
            jobs=settings.jobs,
            workers=settings.workers,
        )
        async with server:
            await server.serve_forever()
        return 0
    finally:
        service.scheduler.close()


def run_server(settings: ServeSettings) -> int:
    """Blocking entry point used by ``python -m repro serve``."""
    try:
        return asyncio.run(_amain(settings))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


class ServerThread:
    """An in-process HTTP server on an ephemeral port (tests, benches).

    Context manager: ``with ServerThread(settings) as srv:`` exposes
    ``srv.host`` / ``srv.port`` / ``srv.url`` while a private event loop
    runs the service in a daemon thread; exit stops the loop and closes
    the scheduler.
    """

    def __init__(self, settings: ServeSettings | None = None) -> None:
        self.settings = settings or ServeSettings(port=0)
        self.host = self.settings.host
        self.port: int | None = None
        self.service: MappingService | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                self.service = build_service(self.settings)
                server = await asyncio.start_server(
                    partial(handle_http_connection, service=self.service),
                    self.settings.host,
                    self.settings.port,
                )
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            try:
                async with server:
                    await self._stop.wait()
            finally:
                self.service.scheduler.close()

        asyncio.run(main())

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("server thread failed to start in 30s")
        if self._startup_error is not None:
            raise ReproError(
                f"server thread failed to start: {self._startup_error}"
            )
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
