"""Scale-out serving: consistent-hash sharding over serve workers.

One serve process amortizes labelings and batches well, but it is still
one process.  This module adds the horizontal layer: a front end that
routes requests across ``N`` independent backend serve workers by
**rendezvous (highest-random-weight) hashing on the topology name**.

Why hash on topology?  The expensive per-worker state is the topology
session (labeling + distance matrix) and the response cache keyed by
run identity -- both functions of the topology.  Routing every request
for a topology to the same worker keeps that worker's session LRU and
response LRU hot; the ``REPRO_LABELING_CACHE`` npz disk tier is the only
cross-worker state, by design.  Rendezvous hashing gives the stability
the cache economics need: the route is a pure function of
``sha256(shard | key)``, identical in every process with no coordination,
and adding or removing one shard of ``N`` moves only ``~1/N`` of the
keys (test-asserted) -- every other shard's caches stay warm.

Availability: the front end walks a key's full preference order.  A
shard that cannot be *reached* (connect failure, timeout, torn
connection) is failed over -- the next-ranked shard computes the same
deterministic result, byte-identical by the determinism contract -- and
after ``fail_threshold`` consecutive transport failures a shard is
marked down for ``down_cooldown_s`` so traffic stops queuing on a
corpse.  Service-level answers (including 4xx/5xx) are returned as-is:
the shard answered, so its verdict stands and its breakers stay
authoritative.

``/healthz`` and ``/metrics`` aggregate across shards (per-shard detail
included); the numeric merge rule is: counters and histogram
count/sum add, ``uptime_seconds``/``max``/percentiles take the worst
shard, ``min`` takes the best.

Wired as ``repro serve --shards N``: :class:`ShardCluster` spawns the
workers on ephemeral ports and :func:`run_sharded_server` runs the
front end on the public port.  The same rendezvous router also pins
batch groups to supervised-pool workers (scheduler) and fans
experiment-sweep tasks out by topology (runner ``dispatch="shards"``).
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from dataclasses import replace
from functools import partial

from repro.errors import ConfigurationError, ReproError, TransientError
from repro.obs import configure_tracer, get_logger
from repro.obs.trace import (
    WIRE_KEY,
    SpanContext,
    Tracer,
    merge_debug_snapshots,
)
from repro.serve.loadgen import http_request_json
from repro.serve.metrics import MetricsRegistry
from repro.serve.service import (
    ServeSettings,
    build_service,
    handle_http_connection,
)
from repro.utils.parallel import preferred_mp_context

#: transport-level failures that trigger failover to the next shard --
#: deliberately excludes service answers of any HTTP status (the shard
#: is alive and its verdict, e.g. 429 admission control, stands).
TRANSPORT_ERRORS = (
    ConnectionError,
    OSError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
)


class ShardRouter:
    """Rendezvous (highest-random-weight) hash over named shards.

    ``route(key)`` is a pure function of the shard names and the key --
    deterministic across processes and restarts, no shared state.  Each
    shard's weight for a key is ``sha256("<shard>|<key>")``; the key
    routes to the highest weight, and ``ranked(key)`` is the full
    preference order used for failover.  Removing a shard moves exactly
    the keys it owned (everyone else's order is untouched); adding one
    moves only the keys whose new weight tops the old maximum --
    ``~1/N`` of them.
    """

    def __init__(self, shards) -> None:
        names = [str(s) for s in shards]
        if not names:
            raise ConfigurationError("router needs at least one shard")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate shard names in {names}")
        self.shards: tuple[str, ...] = tuple(sorted(names))

    @staticmethod
    def weight(shard: str, key: str) -> int:
        digest = hashlib.sha256(f"{shard}|{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def ranked(self, key: str) -> list[str]:
        """All shards in preference order for ``key`` (failover order)."""
        key = str(key)
        return sorted(self.shards, key=lambda s: (-self.weight(s, key), s))

    def route(self, key: str) -> str:
        """The owning shard for ``key``."""
        key = str(key)
        return max(self.shards, key=lambda s: (self.weight(s, key), s))


def _merge_numeric(total: dict, part: dict) -> dict:
    """Aggregate one shard's JSON metrics into ``total`` (see module doc)."""
    for key, value in part.items():
        if isinstance(value, bool):
            total[key] = value
        elif isinstance(value, (int, float)):
            if key in ("uptime_seconds", "max", "p50", "p95", "p99", "mean"):
                total[key] = max(total.get(key, value), value)
            elif key == "min":
                total[key] = min(total.get(key, value), value)
            else:
                total[key] = total.get(key, 0) + value
        elif isinstance(value, dict):
            total[key] = _merge_numeric(dict(total.get(key, {})), value)
        else:
            total[key] = value
    return total


class ShardFrontend:
    """Routes wire operations across backend shards (duck-types the
    ``service`` interface of :func:`handle_http_connection`).

    ``backends`` maps shard name -> ``(host, port)``.  Transport
    failures fail over along the router's preference order and, past
    ``fail_threshold`` consecutive failures, mark the shard down for
    ``down_cooldown_s`` (downed shards are still tried last-resort when
    every ranked shard is down, so a wrongly-marked shard recovers).
    """

    def __init__(
        self,
        backends: dict,
        *,
        metrics: MetricsRegistry | None = None,
        fail_threshold: int = 2,
        down_cooldown_s: float = 2.0,
        request_timeout_s: float = 120.0,
        clock=time.monotonic,
        tracer=None,
    ) -> None:
        if fail_threshold < 1 or down_cooldown_s < 0:
            raise ConfigurationError(
                "fail_threshold must be >= 1 and down_cooldown_s >= 0"
            )
        self.backends = {str(k): (str(h), int(p)) for k, (h, p) in backends.items()}
        self.router = ShardRouter(self.backends)
        self.fail_threshold = int(fail_threshold)
        self.down_cooldown_s = float(down_cooldown_s)
        self.request_timeout_s = float(request_timeout_s)
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            namespace="repro_shard"
        )
        self.tracer = tracer if tracer is not None else Tracer(process="frontend")
        self._fails: dict[str, int] = {name: 0 for name in self.backends}
        self._down_until: dict[str, float] = {name: 0.0 for name in self.backends}
        m = self.metrics
        self._m_requests = m.counter(
            "frontend_requests_total", "operations handled by the front end, by op"
        )
        self._m_responses = m.counter(
            "frontend_responses_total", "responses sent, by status code"
        )
        self._m_routed = m.counter(
            "shard_requests_total", "requests forwarded, by shard"
        )
        self._m_failovers = m.counter(
            "shard_failovers_total",
            "transport failures that failed over, by failing shard",
        )
        self._m_unrouteable = m.counter(
            "shard_unrouteable_total", "requests with no reachable shard"
        )
        self._m_down = m.gauge("shards_down", "shards currently marked down")

    # -- shard health bookkeeping --------------------------------------
    def _mark_failure(self, shard: str) -> None:
        self._fails[shard] += 1
        if self._fails[shard] >= self.fail_threshold:
            self._down_until[shard] = self.clock() + self.down_cooldown_s
        self._refresh_down_gauge()

    def _mark_success(self, shard: str) -> None:
        self._fails[shard] = 0
        self._down_until[shard] = 0.0
        self._refresh_down_gauge()

    def _refresh_down_gauge(self) -> None:
        now = self.clock()
        self._m_down.set(
            sum(1 for until in self._down_until.values() if until > now)
        )

    def down_shards(self) -> list[str]:
        now = self.clock()
        return [s for s, until in self._down_until.items() if until > now]

    def _candidates(self, key: str) -> list[str]:
        """Preference order with downed shards demoted to last resort."""
        ranked = self.router.ranked(key)
        now = self.clock()
        up = [s for s in ranked if self._down_until[s] <= now]
        return up + [s for s in ranked if self._down_until[s] > now]

    # -- forwarding ----------------------------------------------------
    async def _send(self, key: str, path: str, body: dict | None, parent=None):
        """Forward one request along ``key``'s failover order."""
        last_exc: BaseException | None = None
        for shard in self._candidates(key):
            host, port = self.backends[shard]
            span = self.tracer.span("forward", parent, shard=shard, path=path)
            try:
                status, reply = await http_request_json(
                    host, port, "POST", path, body,
                    timeout=self.request_timeout_s,
                )
            except TRANSPORT_ERRORS as exc:
                span.set(error=type(exc).__name__)
                span.finish(status="error")
                self._mark_failure(shard)
                self._m_failovers.inc(label=shard)
                last_exc = exc
                continue
            span.set(status_code=status)
            span.finish()
            self._mark_success(shard)
            self._m_routed.inc(label=shard)
            return status, reply
        self._m_unrouteable.inc()
        raise TransientError(
            f"no shard reachable for key {key!r} "
            f"({len(self.backends)} configured): "
            f"{type(last_exc).__name__}: {last_exc}"
        )

    # -- the service interface -----------------------------------------
    async def handle(self, op: str, payload: dict) -> tuple[int, dict | str, dict]:
        """Dispatch one operation -> ``(status, body, extra_headers)``."""
        self._m_requests.inc(label=str(op))
        try:
            if op == "healthz":
                return await self._healthz()
            if op == "metrics":
                return await self._metrics(payload)
            if op == "traces":
                return await self._traces(payload)
            if op in ("map", "enhance"):
                key = str((payload or {}).get("topology", ""))
                with self._open_frontend_span(op, payload) as span:
                    forwarded = dict(payload or {})
                    if span.context.trace_id:
                        forwarded[WIRE_KEY] = span.context.to_wire()
                    status, body = await self._send(
                        key, f"/{op}", forwarded, parent=span.context
                    )
                    span.set(status_code=status)
                return status, body, {}
            if op == "batch":
                return await self._batch(payload)
            return 404, {"ok": False, "error": "not_found",
                         "message": f"unknown operation {op!r}"}, {}
        except TransientError as exc:
            hint = 0.5
            return 503, {"ok": False, "error": "transient", "message": str(exc),
                         "retry_after_s": hint}, {"Retry-After": f"{hint:.3f}"}
        except ReproError as exc:
            return 400, {"ok": False, "error": "bad_request",
                         "message": str(exc)}, {}

    def _open_frontend_span(self, op: str, payload: dict):
        """Root span of a cross-process trace.

        The trace id derives from the request payload's canonical JSON
        (its run identity), and the span's context is stamped into the
        forwarded body under ``payload["trace"]`` so the shard worker's
        ``handle`` span -- and everything below it -- parents here.  A
        client hint ``{"trace": {"sample": false}}`` opts out.
        """
        payload = payload if isinstance(payload, dict) else {}
        raw = payload.get(WIRE_KEY)
        ctx = SpanContext.from_wire(raw)
        if ctx is None:
            sampled = not (
                isinstance(raw, dict) and raw.get("sample") is False
            )
            base = {k: v for k, v in payload.items() if k != WIRE_KEY}
            ctx = self.tracer.start_trace(base, sampled=sampled)
        return self.tracer.span("frontend", ctx, op=op)

    async def _traces(self, payload: dict) -> tuple[int, dict, dict]:
        """``/debug/traces`` aggregated across shards (like ``/metrics``):
        per-process snapshots are merged by trace id, stitching the
        frontend-rooted spans to the shard/pool halves."""
        recent = int((payload or {}).get("recent", 20))
        slowest = int((payload or {}).get("slowest", 5))
        path = f"/debug/traces?recent={recent}&slowest={slowest}"
        outs = await asyncio.gather(
            *(self._probe(s, path) for s in self.router.shards)
        )
        snapshots = [self.tracer.debug_snapshot(recent=recent, slowest=slowest)]
        per_shard: dict[str, dict] = {}
        reachable = 0
        for shard, (status, body) in zip(self.router.shards, outs):
            if status == 200 and isinstance(body, dict):
                reachable += 1
                snapshots.append(body)
                per_shard[shard] = body.get("buffer", {})
            else:
                per_shard[shard] = {"status": "unreachable"}
        merged = merge_debug_snapshots(snapshots, recent=recent, slowest=slowest)
        merged["shards_reporting"] = reachable
        merged["shards"] = per_shard
        return 200, merged, {}

    async def _batch(self, payload: dict) -> tuple[int, dict, dict]:
        requests = (payload or {}).get("requests")
        if not isinstance(requests, list) or not requests:
            raise ReproError("batch body needs a non-empty 'requests' list")
        if not all(isinstance(item, dict) for item in requests):
            raise ReproError("every 'requests' entry must be a JSON object")
        # Split per owning shard, forward the sub-batches concurrently
        # (each shares its shard's batching window), reassemble in order.
        groups: dict[str, list[int]] = {}
        for idx, item in enumerate(requests):
            shard = self.router.route(str(item.get("topology", "")))
            groups.setdefault(shard, []).append(idx)

        async def run_group(idxs: list[int]) -> list[dict]:
            key = str(requests[idxs[0]].get("topology", ""))
            sub = {"requests": [requests[i] for i in idxs]}
            try:
                status, body = await self._send(key, "/batch", sub)
            except TransientError as exc:
                err = {"status_code": 503, "ok": False, "error": "transient",
                       "message": str(exc)}
                return [dict(err) for _ in idxs]
            if (
                status == 200
                and isinstance(body, dict)
                and isinstance(body.get("results"), list)
                and len(body["results"]) == len(idxs)
            ):
                return body["results"]
            wrapped = {"status_code": status,
                       **(body if isinstance(body, dict) else {"body": body})}
            return [dict(wrapped) for _ in idxs]

        outs = await asyncio.gather(*(run_group(idxs) for idxs in groups.values()))
        results: list[dict | None] = [None] * len(requests)
        for idxs, group_results in zip(groups.values(), outs):
            for i, item_result in zip(idxs, group_results):
                results[i] = item_result
        return 200, {"ok": True, "results": results}, {}

    async def _probe(self, shard: str, path: str):
        host, port = self.backends[shard]
        try:
            return await http_request_json(host, port, "GET", path, timeout=30.0)
        except TRANSPORT_ERRORS as exc:
            return None, {"status": "unreachable",
                          "error": f"{type(exc).__name__}: {exc}"}

    async def _healthz(self) -> tuple[int, dict, dict]:
        outs = await asyncio.gather(
            *(self._probe(s, "/healthz") for s in self.router.shards)
        )
        shards: dict[str, dict] = {}
        up = 0
        for shard, (status, body) in zip(self.router.shards, outs):
            ok = (
                status == 200
                and isinstance(body, dict)
                and body.get("status") == "ok"
            )
            up += ok
            shards[shard] = body if isinstance(body, dict) else {"status": "error"}
        total = len(self.router.shards)
        body = {
            # "ok" as long as one shard can serve: every key has a full
            # failover order, so a partial cluster degrades, not dies.
            "status": "ok" if up else "unreachable",
            "shards_up": up,
            "shards_total": total,
            "shards_down": self.down_shards(),
            "router": list(self.router.shards),
            "shards": shards,
        }
        return (200 if up else 503), body, {}

    async def _metrics(self, payload: dict) -> tuple[int, dict | str, dict]:
        fmt = (payload or {}).get("format", "text")
        outs = await asyncio.gather(
            *(self._probe(s, "/metrics?format=json") for s in self.router.shards)
        )
        aggregate: dict = {}
        per_shard: dict[str, dict] = {}
        reachable = 0
        for shard, (status, body) in zip(self.router.shards, outs):
            per_shard[shard] = body if isinstance(body, dict) else {}
            if status == 200 and isinstance(body, dict):
                reachable += 1
                aggregate = _merge_numeric(aggregate, body)
        out = {
            **aggregate,
            "shards_reporting": reachable,
            "frontend": self.metrics.render_json(),
            "shards": per_shard,
        }
        if fmt == "json":
            return 200, out, {}
        extra = {
            k: v for k, v in aggregate.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        extra["shards_reporting"] = reachable
        return 200, self.metrics.render_prometheus(extra=extra), {}

    def record_response(self, status: int) -> None:
        self._m_responses.inc(label=str(status))


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _shard_worker_main(settings: ServeSettings, conn) -> None:
    """Entry point of one backend shard: serve on an ephemeral port,
    report the bound port through ``conn``, then serve forever."""

    async def main() -> None:
        service = build_service(settings)
        try:
            server = await asyncio.start_server(
                partial(handle_http_connection, service=service),
                settings.host,
                settings.port,
            )
            conn.send(int(server.sockets[0].getsockname()[1]))
            conn.close()
            async with server:
                await server.serve_forever()
        finally:
            service.scheduler.close()

    asyncio.run(main())


class ShardCluster:
    """``shards`` backend serve workers on ephemeral ports.

    Context manager: entering spawns the processes (each a full
    :func:`build_service` stack with ``shards=0``) and fills
    ``backends`` (shard name -> ``(host, port)``); exiting terminates
    them.  All workers share the parent's ``labeling_cache`` directory
    -- the disk tier is the only cross-worker state.
    """

    def __init__(
        self,
        settings: ServeSettings,
        shards: int,
        start_timeout_s: float = 60.0,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"need >= 1 shard, got {shards}")
        self.settings = settings
        self.shards = int(shards)
        self.start_timeout_s = float(start_timeout_s)
        self.backends: dict[str, tuple[str, int]] = {}
        self._procs: dict[str, object] = {}

    def __enter__(self) -> "ShardCluster":
        ctx = preferred_mp_context()
        worker_settings = replace(
            self.settings, port=0, shards=0, stdio=False, warm=self.settings.warm
        )
        pending: list[tuple[str, object]] = []
        for i in range(self.shards):
            name = f"shard{i}"
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(replace(worker_settings, trace_process=name), child_conn),
                daemon=True,
                name=f"repro-{name}",
            )
            proc.start()
            child_conn.close()
            self._procs[name] = proc
            pending.append((name, parent_conn))
        try:
            for name, parent_conn in pending:
                if not parent_conn.poll(self.start_timeout_s):
                    raise ReproError(
                        f"{name} did not report a port within "
                        f"{self.start_timeout_s:g}s"
                    )
                self.backends[name] = (
                    self.settings.host, int(parent_conn.recv())
                )
                parent_conn.close()
        except BaseException:
            self._terminate()
            raise
        return self

    def kill(self, name: str) -> None:
        """Hard-kill one shard (failover tests / chaos drills)."""
        proc = self._procs.get(name)
        if proc is None:
            raise ConfigurationError(
                f"unknown shard {name!r}; known: {sorted(self._procs)}"
            )
        proc.terminate()
        proc.join(timeout=10)

    def _terminate(self) -> None:
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=5)
        self._procs.clear()

    def __exit__(self, *exc_info) -> None:
        self._terminate()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_sharded_server(settings: ServeSettings) -> int:
    """Blocking entry for ``repro serve --shards N``."""

    tracer = configure_tracer(
        process="frontend",
        enabled=settings.trace,
        max_traces=settings.trace_buffer,
    )
    with ShardCluster(settings, settings.shards) as cluster:
        frontend = ShardFrontend(cluster.backends, tracer=tracer)

        async def amain() -> None:
            server = await asyncio.start_server(
                partial(handle_http_connection, service=frontend),
                settings.host,
                settings.port,
            )
            bound = server.sockets[0].getsockname()
            routes = {
                name: f"{host}:{port}"
                for name, (host, port) in sorted(cluster.backends.items())
            }
            get_logger("serve.shard").info(
                "frontend_listening",
                url=f"http://{bound[0]}:{bound[1]}",
                shards=settings.shards,
                routes=routes,
            )
            async with server:
                await server.serve_forever()

        try:
            asyncio.run(amain())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
    return 0


class FrontendThread:
    """An in-process shard front end on an ephemeral port (tests, benches).

    Mirrors :class:`~repro.serve.service.ServerThread`: ``with
    FrontendThread(backends) as front:`` exposes ``front.url`` while a
    private event loop serves :class:`ShardFrontend` in a daemon thread.
    The backend processes themselves are managed separately (usually by
    a :class:`ShardCluster` the caller entered first).
    """

    def __init__(
        self, backends: dict, host: str = "127.0.0.1", **frontend_kwargs
    ) -> None:
        self.backends = dict(backends)
        self.host = host
        self.port: int | None = None
        self.frontend: ShardFrontend | None = None
        self._kwargs = frontend_kwargs
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                self.frontend = ShardFrontend(self.backends, **self._kwargs)
                server = await asyncio.start_server(
                    partial(handle_http_connection, service=self.frontend),
                    self.host,
                    0,
                )
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            async with server:
                await self._stop.wait()

        asyncio.run(main())

    def __enter__(self) -> "FrontendThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("front-end thread failed to start in 30s")
        if self._startup_error is not None:
            raise ReproError(
                f"front-end thread failed to start: {self._startup_error}"
            )
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
