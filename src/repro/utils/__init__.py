"""Shared low-level utilities: RNG handling, bit operations, validation."""

from repro.utils.rng import derive_rng, derive_seed, derive_seed_sequence, make_rng, spawn_rngs
from repro.utils.bitops import (
    popcount,
    hamming,
    bit_length_for,
    mask_of_width,
    permute_bits,
    unpermute_bits,
    words_for_bits,
    is_wide,
    popcount_labels,
    hamming_labels,
    pairwise_hamming,
    label_sort_keys,
    pack_bit_matrix,
    unpack_bit_matrix,
)
from repro.utils.stopwatch import Stopwatch

__all__ = [
    "make_rng",
    "spawn_rngs",
    "derive_rng",
    "derive_seed",
    "derive_seed_sequence",
    "popcount",
    "hamming",
    "bit_length_for",
    "mask_of_width",
    "permute_bits",
    "unpermute_bits",
    "words_for_bits",
    "is_wide",
    "popcount_labels",
    "hamming_labels",
    "pairwise_hamming",
    "label_sort_keys",
    "pack_bit_matrix",
    "unpack_bit_matrix",
    "Stopwatch",
]
