"""Bit-level helpers for label arithmetic.

Vertex labels in TIMER are bitvectors of length ``dim_Ga <= 63``; the whole
library stores them packed into ``int64`` numpy arrays.  Bit ``0`` (the
least significant bit) is the paper's *last* label entry -- the digit that
the hierarchy construction cuts off first -- and the lp-part (processor
labels) occupies the *high* bits.

All helpers here are pure and vectorized so the hot paths of the objective
function and the swap passes stay in numpy.
"""

from __future__ import annotations

import numpy as np

#: Maximum supported label width.  63 keeps labels inside signed int64.
MAX_LABEL_BITS = 63

#: Popcounts of all byte values; powers the numpy < 2.0 fallback.
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _bitwise_count_fallback(x) -> np.ndarray:
    """Per-element popcount via a byte lookup table.

    ``np.bitwise_count`` only exists from numpy 2.0; this fallback views
    each int64 as 8 bytes and sums table lookups, which is the fastest
    pure-numpy construction (cf. the classic unpackbits/LUT trick).  Only
    non-negative values are meaningful -- labels never go negative.
    """
    arr = np.ascontiguousarray(np.atleast_1d(np.asarray(x)), dtype=np.int64)
    by = arr.view(np.uint8).reshape(arr.shape + (8,))
    out = _POPCOUNT_TABLE[by].sum(axis=-1, dtype=np.int64)
    if np.ndim(x) == 0:
        return out.reshape(())
    return out


#: ``bitwise_count(x)``: per-element popcount, native on numpy >= 2.0.
bitwise_count = getattr(np, "bitwise_count", _bitwise_count_fallback)


def popcount(x: np.ndarray) -> np.ndarray:
    """Number of set bits of each element of ``x`` (any integer dtype)."""
    return bitwise_count(x)


def hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise Hamming distance between packed bitvectors."""
    return bitwise_count(np.bitwise_xor(a, b))


def bit_length_for(n: int) -> int:
    """Number of bits needed to represent values ``0 .. n-1``.

    This is the paper's ``ceil(log2 n)`` with the conventions
    ``bit_length_for(0) == bit_length_for(1) == 0``.
    """
    if n <= 1:
        return 0
    return int(n - 1).bit_length()


def mask_of_width(width: int) -> int:
    """Bitmask with the ``width`` least significant bits set."""
    if width < 0 or width > MAX_LABEL_BITS:
        raise ValueError(f"mask width {width} out of range [0, {MAX_LABEL_BITS}]")
    return (1 << width) - 1


def permute_bits(labels: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Permute bit positions of every label.

    ``perm`` maps *new* bit position ``j`` to *old* bit position
    ``perm[j]``: output bit ``j`` equals input bit ``perm[j]``.  Bits above
    ``len(perm)`` must be zero (labels use exactly ``len(perm)`` bits).

    The implementation gathers one bit-plane per output position; with
    ``dim <= 63`` this is at most 63 vectorized passes over the array,
    which profiling showed is far cheaper than any per-element Python loop
    for the instance sizes of the paper.
    """
    labels = np.asarray(labels, dtype=np.int64)
    perm = np.asarray(perm, dtype=np.int64)
    out = np.zeros_like(labels)
    for j, p in enumerate(perm):
        bit = (labels >> int(p)) & 1
        out |= bit << j
    return out


def unpermute_bits(labels: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Inverse of :func:`permute_bits` for the same ``perm``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm), dtype=np.int64)
    return permute_bits(labels, inv)


def bits_to_int(bits) -> int:
    """Pack an iterable of 0/1 digits, most significant first, into an int.

    Mirrors the paper's reading order: ``bits_to_int([1, 0]) == 2``.
    """
    value = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"digit {b!r} is not a bit")
        value = (value << 1) | b
    return value


def int_to_bits(value: int, width: int) -> list[int]:
    """Unpack ``value`` into ``width`` digits, most significant first."""
    if value < 0 or (width < MAX_LABEL_BITS and value >= (1 << width)):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]
