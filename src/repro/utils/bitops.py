"""Bit-level helpers for label arithmetic, narrow and wide.

Vertex labels in TIMER are bitvectors of length ``dim_Ga``.  The library
stores them in one of two representations, and every helper here (and
every label consumer in the package) is polymorphic over both:

- **narrow** -- ``dim <= MAX_LABEL_BITS`` (63): a 1-D ``int64`` array,
  one packed word per vertex.  This is the original representation; all
  fixed-seed outputs on it are byte-identical to the pre-wide code, and
  the hot kernels keep their single-word arithmetic.
- **wide** -- ``dim > MAX_LABEL_BITS``: a 2-D ``(n, W)`` ``uint64`` array
  with ``W = ceil(dim / 64)`` words per vertex, word ``w`` holding bits
  ``64*w .. 64*w + 63`` (little-endian word order).  This lifts the
  63-class partial-cube cap: trees beyond 64 vertices, fat-trees beyond
  64 PEs and any ``dim_p + dim_e > 63`` application labeling now label
  fine.

Bit ``0`` (the least significant bit of word 0) is the paper's *last*
label entry -- the digit that the hierarchy construction cuts off first
-- and the lp-part (processor labels) occupies the *high* bits.

Ordering and sorting of wide labels go through :func:`label_sort_keys`,
which views the words as big-endian, most-significant-word-first byte
strings: ``memcmp`` order on those keys equals numeric order of the
bitvectors, so one ``void``-dtype argsort/searchsorted replaces every
integer comparison the narrow code relies on.

All helpers here are pure and vectorized so the hot paths of the
objective function and the swap passes stay in numpy in both width
regimes.
"""

from __future__ import annotations

import numpy as np

#: Maximum label width of the *narrow* (single ``int64`` word)
#: representation.  63 keeps narrow labels inside signed int64; wider
#: labelings switch to the multi-word representation automatically.
MAX_LABEL_BITS = 63

#: Bits per word of the wide representation.
WORD_BITS = 64

#: Popcounts of all byte values; powers the byte-LUT reference fallback.
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _bitwise_count_fallback(x) -> np.ndarray:
    """Per-element popcount via a byte lookup table (reference fallback).

    Views each 64-bit word as 8 bytes and sums table lookups.  Kept as
    the ground truth the SWAR path is tested against; only non-negative
    values are meaningful for the int64 case -- labels never go
    negative.
    """
    arr = np.atleast_1d(np.asarray(x))
    if arr.dtype != np.uint64:
        arr = arr.astype(np.int64, copy=False)
    arr = np.ascontiguousarray(arr)
    by = arr.view(np.uint8).reshape(arr.shape + (8,))
    out = _POPCOUNT_TABLE[by].sum(axis=-1, dtype=np.int64)
    if np.ndim(x) == 0:
        return out.reshape(())
    return out


_SWAR_M1 = np.uint64(0x5555555555555555)
_SWAR_M2 = np.uint64(0x3333333333333333)
_SWAR_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_SWAR_H01 = np.uint64(0x0101010101010101)


def _bitwise_count_swar(x) -> np.ndarray:
    """Per-element popcount via SWAR arithmetic (numpy < 2.0 fast path).

    The classic SIMD-within-a-register construction: six full-width
    vector operations per word, no gathers, so numpy's elementwise loops
    vectorize it -- measured ~3x over the byte-LUT fallback.  Exact for
    the whole uint64 range (the final multiply wraps mod 2**64 by
    design).
    """
    arr = np.atleast_1d(np.asarray(x))
    if arr.dtype == np.uint64:
        v = arr.copy()
    elif arr.dtype == np.int64:
        # Labels are non-negative, so the uint64 view is value-exact.
        v = np.ascontiguousarray(arr).view(np.uint64).copy()
    else:
        v = arr.astype(np.uint64)
    v -= (v >> np.uint64(1)) & _SWAR_M1
    v = (v & _SWAR_M2) + ((v >> np.uint64(2)) & _SWAR_M2)
    v = (v + (v >> np.uint64(4))) & _SWAR_M4
    out = ((v * _SWAR_H01) >> np.uint64(56)).astype(np.int64)
    if np.ndim(x) == 0:
        return out.reshape(())
    return out


#: ``bitwise_count(x)``: per-element popcount -- native on numpy >= 2.0,
#: the SWAR construction otherwise.
bitwise_count = getattr(np, "bitwise_count", _bitwise_count_swar)


def popcount(x: np.ndarray) -> np.ndarray:
    """Number of set bits of each element of ``x`` (any integer dtype)."""
    return bitwise_count(x)


def hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise Hamming distance between packed bitvectors."""
    return bitwise_count(np.bitwise_xor(a, b))


def bit_length_for(n: int) -> int:
    """Number of bits needed to represent values ``0 .. n-1``.

    This is the paper's ``ceil(log2 n)`` with the conventions
    ``bit_length_for(0) == bit_length_for(1) == 0``.
    """
    if n <= 1:
        return 0
    return int(n - 1).bit_length()


def mask_of_width(width: int) -> int:
    """Bitmask with the ``width`` least significant bits set (narrow)."""
    if width < 0 or width > MAX_LABEL_BITS:
        raise ValueError(f"mask width {width} out of range [0, {MAX_LABEL_BITS}]")
    return (1 << width) - 1


# ----------------------------------------------------------------------
# Representation plumbing
# ----------------------------------------------------------------------
def words_for_bits(dim: int) -> int:
    """Number of 64-bit words a ``dim``-bit label occupies.

    1 for every narrow width (``dim <= MAX_LABEL_BITS`` keeps the packed
    int64 representation), ``ceil(dim / 64)`` beyond.
    """
    if dim < 0:
        raise ValueError(f"label width {dim} must be >= 0")
    if dim <= MAX_LABEL_BITS:
        return 1
    return -(-dim // WORD_BITS)


def is_wide(labels: np.ndarray) -> bool:
    """True for the multi-word ``(n, W)`` representation."""
    return np.asarray(labels).ndim == 2


def label_words(labels: np.ndarray) -> int:
    """Words per label: 1 for narrow arrays, ``W`` for wide ones."""
    labels = np.asarray(labels)
    return int(labels.shape[1]) if labels.ndim == 2 else 1


def zeros_labels(n: int, dim: int) -> np.ndarray:
    """All-zero label array of the representation matching ``dim``."""
    if dim <= MAX_LABEL_BITS:
        return np.zeros(n, dtype=np.int64)
    return np.zeros((n, words_for_bits(dim)), dtype=np.uint64)


def as_label_array(labels: np.ndarray) -> np.ndarray:
    """Canonical dtype view: int64 for narrow input, uint64 for wide."""
    labels = np.asarray(labels)
    if labels.ndim == 2:
        return labels.astype(np.uint64, copy=False)
    return labels.astype(np.int64, copy=False)


def widen_labels(labels: np.ndarray, words: int) -> np.ndarray:
    """Convert to the wide representation with (at least) ``words`` words.

    Narrow input lands in word 0; already-wide input is zero-padded (or
    truncated, asserting the dropped high words are all zero).
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        out = np.zeros((labels.shape[0], max(1, words)), dtype=np.uint64)
        out[:, 0] = labels.astype(np.int64).view(np.uint64)
        return out
    cur = labels.shape[1]
    if cur == words:
        return labels.astype(np.uint64, copy=False)
    if cur < words:
        out = np.zeros((labels.shape[0], words), dtype=np.uint64)
        out[:, :cur] = labels
        return out
    if np.any(labels[:, words:]):
        raise ValueError(f"cannot truncate to {words} words: high bits set")
    return np.ascontiguousarray(labels[:, :words])


def narrow_labels(labels: np.ndarray) -> np.ndarray:
    """Convert to the narrow int64 representation (high words must be 0)."""
    labels = np.asarray(labels)
    if labels.ndim == 1:
        return labels.astype(np.int64, copy=False)
    if labels.shape[1] > 1 and np.any(labels[:, 1:]):
        raise ValueError("labels do not fit in one word")
    word0 = np.ascontiguousarray(labels[:, 0], dtype=np.uint64)
    if np.any(word0 >> np.uint64(MAX_LABEL_BITS)):
        raise ValueError(f"labels exceed {MAX_LABEL_BITS} bits")
    return word0.view(np.int64)


def resize_label_words(labels: np.ndarray, words: int) -> np.ndarray:
    """Match a wide array's word count (pad/truncate); narrow passthrough."""
    if np.asarray(labels).ndim == 1 and words == 1:
        return np.asarray(labels, dtype=np.int64)
    return widen_labels(labels, words)


def copy_labels(labels: np.ndarray) -> np.ndarray:
    """A mutable copy in canonical dtype (both representations)."""
    return as_label_array(labels).copy()


# ----------------------------------------------------------------------
# Polymorphic label arithmetic
# ----------------------------------------------------------------------
def popcount_labels(x: np.ndarray) -> np.ndarray:
    """Per-label popcount: one int per label row in either representation.

    Accepts any array whose *last* axis is the word axis for wide input
    (so pairwise ``(n, n, W)`` XOR tensors reduce correctly).  Dispatches
    through the active kernel backend (the numba tiers run a compiled
    SWAR reduction over the word axis).
    """
    from repro.core.backend import current_backend

    return current_backend().popcount_labels(x)


def hamming_labels(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-label Hamming distance in either representation."""
    return popcount_labels(np.bitwise_xor(a, b))


def pairwise_hamming(labels: np.ndarray, block: int = 256) -> np.ndarray:
    """``(n, n)`` Hamming distance matrix of a label array.

    Dispatches through the active kernel backend: the numpy reference is
    row-blocked so the wide case never materializes the full
    ``(n, n, W)`` XOR tensor at once; the numba tiers run a compiled
    SWAR loop with no intermediate tensors at all.
    """
    from repro.core.backend import current_backend

    return current_backend().pairwise_hamming(labels, block=block)


def label_mask(width: int, labels: np.ndarray) -> "int | np.ndarray":
    """Low-``width``-bits mask in the representation of ``labels``.

    Narrow input gets a plain int (``mask_of_width``); wide input gets a
    ``(W,)`` ``uint64`` word vector that broadcasts against ``(n, W)``.
    """
    if np.asarray(labels).ndim == 1:
        return mask_of_width(width)
    return wide_mask(width, label_words(labels))


def wide_mask(width: int, words: int) -> np.ndarray:
    """``(words,)`` uint64 vector with the ``width`` low bits set."""
    if width < 0 or width > words * WORD_BITS:
        raise ValueError(f"mask width {width} out of range [0, {words * WORD_BITS}]")
    out = np.zeros(words, dtype=np.uint64)
    full, rem = divmod(width, WORD_BITS)
    out[:full] = np.uint64(0xFFFFFFFFFFFFFFFF)
    if rem:
        out[full] = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
    return out


def get_label_bit(labels: np.ndarray, j: int) -> np.ndarray:
    """Bit ``j`` of every label as an int64 0/1 array."""
    labels = np.asarray(labels)
    if labels.ndim == 1:
        return (labels >> np.int64(j)) & np.int64(1)
    w, b = divmod(j, WORD_BITS)
    return ((labels[:, w] >> np.uint64(b)) & np.uint64(1)).astype(np.int64)


def set_label_bit(labels: np.ndarray, j: int, bits: np.ndarray) -> None:
    """OR 0/1 ``bits`` into bit ``j`` of every label, in place."""
    if labels.ndim == 1:
        labels |= np.asarray(bits, dtype=np.int64) << np.int64(j)
    else:
        w, b = divmod(j, WORD_BITS)
        labels[:, w] |= np.asarray(bits).astype(np.uint64) << np.uint64(b)


def label_lsb(labels: np.ndarray) -> np.ndarray:
    """The least significant bit of every label (int64 0/1 array).

    This is the only label content the swap kernels ever test, so both
    width regimes share the exact same vectorized gain arithmetic.
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        return labels & np.int64(1)
    return (labels[:, 0] & np.uint64(1)).astype(np.int64)


def shift_right_labels(labels: np.ndarray, k: int) -> np.ndarray:
    """``labels >> k`` in either representation (word-carrying for wide)."""
    labels = np.asarray(labels)
    if labels.ndim == 1:
        return labels >> np.int64(k)
    n, W = labels.shape
    word_shift, bit_shift = divmod(k, WORD_BITS)
    out = np.zeros_like(labels)
    if word_shift < W:
        shifted = labels[:, word_shift:]
        if bit_shift == 0:
            out[:, : W - word_shift] = shifted
        else:
            lo = shifted >> np.uint64(bit_shift)
            out[:, : W - word_shift] = lo
            if shifted.shape[1] > 1:
                out[:, : W - word_shift - 1] |= shifted[:, 1:] << np.uint64(
                    WORD_BITS - bit_shift
                )
    return out


def shift_left_labels(labels: np.ndarray, k: int) -> np.ndarray:
    """``labels << k`` in either representation (word-carrying for wide).

    Wide output keeps the input's word count; bits shifted beyond the
    top word are dropped (callers size the array via
    :func:`words_for_bits` first).
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        return labels << np.int64(k)
    n, W = labels.shape
    word_shift, bit_shift = divmod(k, WORD_BITS)
    out = np.zeros_like(labels)
    if word_shift < W:
        src = labels[:, : W - word_shift]
        if bit_shift == 0:
            out[:, word_shift:] = src
        else:
            out[:, word_shift:] = src << np.uint64(bit_shift)
            if src.shape[1] > 1:
                out[:, word_shift + 1 :] |= src[:, :-1] >> np.uint64(
                    WORD_BITS - bit_shift
                )
    return out


# ----------------------------------------------------------------------
# Ordering, grouping, row swaps
# ----------------------------------------------------------------------
def label_sort_keys(labels: np.ndarray) -> np.ndarray:
    """A 1-D array whose ``<``/``==`` order equals numeric label order.

    Narrow labels are their own keys.  Wide labels become ``void`` byte
    strings -- words reversed to most-significant-first and byteswapped
    to big-endian -- so memcmp order (what numpy's void dtype sorts,
    uniques and searchsorts by) coincides with bitvector order.
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        return labels
    W = labels.shape[1]
    be = np.ascontiguousarray(labels[:, ::-1]).astype(">u8")
    return np.ascontiguousarray(be).view(np.dtype((np.void, 8 * W))).ravel()


#: Wide label arrays at or above this many rows argsort via the
#: word-column radix path (np.lexsort); below it the generic void-key
#: argsort wins on constant factors.  Tuned on the bench_micro workload.
RADIX_SORT_THRESHOLD = 256

#: The radix path pays one full stable sort pass per *varying* word,
#: while the void path's memcmp usually exits on the first differing
#: byte, so lexsort only wins while the pass count stays small
#: (measured: ~1.2 - 2.3x faster at <= 2 varying words, ~0.7x at 4,
#: across n = 256 .. 5e5).  Constant word columns cannot affect a
#: stable order, so the regime is counted over varying columns -- which
#: extends the fast path to any total W (e.g. contracted hierarchy
#: levels, whose high words are all zero).
RADIX_SORT_MAX_WORDS = 2


def argsort_labels(labels: np.ndarray) -> np.ndarray:
    """Stable argsort of a label array in numeric bitvector order.

    Narrow labels use numpy's integer sort directly.  Wide labels order
    by their big-endian byte keys (:func:`label_sort_keys`); at or above
    :data:`RADIX_SORT_THRESHOLD` rows with at most
    :data:`RADIX_SORT_MAX_WORDS` *varying* words the memcmp-based void
    argsort is replaced by a radix-style pass -- ``np.lexsort`` over the
    varying word columns, least significant first.  All paths are
    stable, so they produce the identical permutation; the choice
    dispatches through the active kernel backend.
    """
    from repro.core.backend import current_backend

    return current_backend().argsort_labels(labels)


def labels_equal_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise label equality -> 1-D bool (row-wise for wide)."""
    a, b = np.asarray(a), np.asarray(b)
    if a.ndim == 1:
        return a == b
    return (a == b).all(axis=1)


def swap_label_rows(labels: np.ndarray, u: int, v: int) -> None:
    """Exchange the labels of vertices ``u`` and ``v`` in place.

    The 2-D case needs an explicit copy: tuple assignment of row views
    would alias and corrupt one side.
    """
    if labels.ndim == 1:
        labels[u], labels[v] = labels[v], labels[u]
    else:
        tmp = labels[u].copy()
        labels[u] = labels[v]
        labels[v] = tmp


def unique_labels(labels: np.ndarray):
    """Sorted-unique labels with inverse, for either representation.

    Returns ``(uniq, inverse)`` where ``uniq`` holds the distinct labels
    in ascending numeric order (same representation as the input) and
    ``inverse`` maps every row to its position in ``uniq`` -- the wide
    generalization of ``np.unique(labels, return_inverse=True)``.
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        uniq, inverse = np.unique(labels, return_inverse=True)
        return uniq, inverse.astype(np.int64, copy=False)
    keys = label_sort_keys(labels)
    _, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
    return labels[first], inverse.astype(np.int64, copy=False)


# ----------------------------------------------------------------------
# Bit-matrix packing and integer round-trips
# ----------------------------------------------------------------------
def pack_bit_matrix(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(n, dim)`` 0/1 matrix into labels (column ``j`` = bit ``j``).

    Chooses the representation from ``dim``: narrow int64 words up to 63
    bits, ``(n, W)`` uint64 beyond.
    """
    bits = np.asarray(bits)
    n, dim = bits.shape
    if dim <= MAX_LABEL_BITS:
        shifts = np.arange(dim, dtype=np.int64)
        return (bits.astype(np.int64) << shifts[None, :]).sum(
            axis=1, dtype=np.int64
        )
    W = words_for_bits(dim)
    out = np.zeros((n, W), dtype=np.uint64)
    for w in range(W):
        chunk = bits[:, w * WORD_BITS : (w + 1) * WORD_BITS].astype(np.uint64)
        shifts = np.arange(chunk.shape[1], dtype=np.uint64)
        out[:, w] = (chunk << shifts[None, :]).sum(axis=1, dtype=np.uint64)
    return out


def unpack_bit_matrix(labels: np.ndarray, dim: int) -> np.ndarray:
    """``(n, dim)`` int8 0/1 matrix; column ``j`` = bit ``j`` of each label."""
    labels = np.asarray(labels)
    n = labels.shape[0]
    out = np.empty((n, dim), dtype=np.int8)
    for j in range(dim):
        out[:, j] = get_label_bit(labels, j)
    return out


def label_to_int(labels: np.ndarray, v: int) -> int:
    """Vertex ``v``'s label as an arbitrary-precision Python int."""
    labels = np.asarray(labels)
    if labels.ndim == 1:
        return int(labels[v])
    value = 0
    for w in range(labels.shape[1] - 1, -1, -1):
        value = (value << WORD_BITS) | int(labels[v, w])
    return value


def int_to_label_row(value: int, words: int) -> np.ndarray:
    """A Python int as one wide label row (``(words,)`` uint64)."""
    if value < 0 or value >> (words * WORD_BITS):
        raise ValueError(f"value does not fit in {words} words")
    mask = (1 << WORD_BITS) - 1
    return np.array(
        [(value >> (WORD_BITS * w)) & mask for w in range(words)], dtype=np.uint64
    )


# ----------------------------------------------------------------------
# Bit permutations
# ----------------------------------------------------------------------
def permute_bits(labels: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Permute bit positions of every label.

    ``perm`` maps *new* bit position ``j`` to *old* bit position
    ``perm[j]``: output bit ``j`` equals input bit ``perm[j]``.  Bits above
    ``len(perm)`` must be zero (labels use exactly ``len(perm)`` bits).

    The implementation gathers one bit-plane per output position; this
    is at most ``dim`` vectorized passes over the array, which profiling
    showed is far cheaper than any per-element Python loop for the
    instance sizes of the paper.  Wide labels use the same construction
    with word-addressed bit extraction.
    """
    perm = np.asarray(perm, dtype=np.int64)
    labels = np.asarray(labels)
    if labels.ndim == 1:
        labels = labels.astype(np.int64, copy=False)
        out = np.zeros_like(labels)
        for j, p in enumerate(perm):
            bit = (labels >> int(p)) & 1
            out |= bit << j
        return out
    out = np.zeros_like(labels, dtype=np.uint64)
    for j, p in enumerate(perm):
        set_label_bit(out, j, get_label_bit(labels, int(p)))
    return out


def unpermute_bits(labels: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Inverse of :func:`permute_bits` for the same ``perm``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm), dtype=np.int64)
    return permute_bits(labels, inv)


def bits_to_int(bits) -> int:
    """Pack an iterable of 0/1 digits, most significant first, into an int.

    Mirrors the paper's reading order: ``bits_to_int([1, 0]) == 2``.
    """
    value = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"digit {b!r} is not a bit")
        value = (value << 1) | b
    return value


def int_to_bits(value: int, width: int) -> list[int]:
    """Unpack ``value`` into ``width`` digits, most significant first."""
    if value < 0 or (width < MAX_LABEL_BITS and value >= (1 << width)):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]
