"""Shared multiprocessing policy for the worker pools.

Both the experiment runner and ``Pipeline.run_batch`` parallelize over
identity-seeded work units, so determinism never depends on the start
method; the choice is purely about cost and robustness, and it must be
made *identically* everywhere -- hence this one helper.
"""

from __future__ import annotations

import multiprocessing as mp
import sys


def preferred_mp_context() -> mp.context.BaseContext:
    """``fork`` on Linux, ``spawn`` everywhere else.

    Fork makes workers inherit the parent's imports and warmed caches
    (topology labelings, distance matrices) for free, and works when the
    parent has no importable ``__main__`` (REPL, stdin).  Everywhere
    else -- macOS forks crash under Accelerate/ObjC, which is why
    CPython's own default moved -- fall back to ``spawn``.
    """
    use_fork = sys.platform.startswith("linux") and (
        "fork" in mp.get_all_start_methods()
    )
    return mp.get_context("fork" if use_fork else "spawn")
