"""Deterministic random-number-generator plumbing.

All randomized components of the library accept a ``seed`` argument which is
either ``None`` (non-deterministic), an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  Routing everything through
:func:`make_rng` keeps experiments reproducible and keeps the seeding
convention in exactly one place.
"""

from __future__ import annotations

import hashlib
import numpy as np

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing a generator returns it unchanged, so functions can forward
    their ``seed`` argument without re-seeding (and thus without
    accidentally correlating sub-streams).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` statistically independent generators.

    Used by the experiment runner to give every (instance, repetition)
    cell its own stream, so adding repetitions never perturbs earlier
    ones.  When ``seed`` is already a generator, children are derived
    from integers drawn from it.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        children = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(c)) for c in children]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed_sequence(root: int, *identity: object) -> np.random.SeedSequence:
    """A :class:`numpy.random.SeedSequence` keyed by ``(root, identity)``.

    ``identity`` is any tuple of stringifiable components (e.g. an
    experiment cell's ``("case", instance, rep, topology, case)``).  The
    components are joined with an unambiguous separator, hashed with
    SHA-256 and folded into the entropy pool next to ``root``, so:

    - the same identity always yields the same stream, independent of
      *when* or *on which worker process* it is drawn (this is what makes
      a parallel experiment sweep byte-identical to a sequential one);
    - distinct identities yield statistically independent streams (the
      SeedSequence entropy mixing keeps even single-bit differences
      uncorrelated).
    """
    blob = "\x1f".join(str(part) for part in identity).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    entropy = [int(root) & 0xFFFFFFFFFFFFFFFF] + [
        int.from_bytes(digest[i : i + 8], "little") for i in range(0, 32, 8)
    ]
    return np.random.SeedSequence(entropy)


def derive_rng(root: int, *identity: object) -> np.random.Generator:
    """Generator for :func:`derive_seed_sequence` of the same arguments."""
    return np.random.default_rng(derive_seed_sequence(root, *identity))


def derive_seed(root: int, *identity: object) -> int:
    """A stable non-negative ``int64`` seed for ``(root, identity)``.

    For callers that record the seed (experiment artifacts) and re-seed
    through :func:`make_rng`; equals the first 63 bits of the derived
    SeedSequence state.
    """
    state = derive_seed_sequence(root, *identity).generate_state(1, np.uint64)[0]
    return int(state >> np.uint64(1))
