"""Deterministic random-number-generator plumbing.

All randomized components of the library accept a ``seed`` argument which is
either ``None`` (non-deterministic), an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  Routing everything through
:func:`make_rng` keeps experiments reproducible and keeps the seeding
convention in exactly one place.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing a generator returns it unchanged, so functions can forward
    their ``seed`` argument without re-seeding (and thus without
    accidentally correlating sub-streams).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` statistically independent generators.

    Used by the experiment runner to give every (instance, repetition)
    cell its own stream, so adding repetitions never perturbs earlier
    ones.  When ``seed`` is already a generator, children are derived
    from integers drawn from it.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        children = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(c)) for c in children]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
