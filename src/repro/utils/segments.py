"""Reusable CSR segment reductions.

The hot kernels of the library (batch swap deltas, contraction edge
merging, per-vertex gain accumulation) all reduce an array of per-edge
values into per-vertex (or per-run) aggregates described by a CSR-style
``indptr``.  ``np.add.reduceat`` is the right primitive but has two sharp
edges -- empty segments repeat the element at the segment start instead of
yielding the identity, and a start index equal to ``len(values)`` raises --
so every caller used to hand-roll the same guards.  This module centralizes
the safe versions.

All helpers take ``indptr`` of length ``n_segments + 1`` with
``indptr[0] == 0`` and ``indptr[-1] == len(values)``, exactly the CSR
convention of :class:`repro.graphs.graph.Graph`.
"""

from __future__ import annotations

import numpy as np


def _check_indptr(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr.ndim != 1 or indptr.shape[0] < 1:
        raise ValueError("indptr must be a 1-D array of length >= 1")
    if indptr[0] != 0 or indptr[-1] != values.shape[0]:
        raise ValueError(
            f"indptr must span values exactly: indptr[0]={int(indptr[0])}, "
            f"indptr[-1]={int(indptr[-1])}, len(values)={values.shape[0]}"
        )
    return indptr


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sums: ``out[i] = values[indptr[i]:indptr[i+1]].sum()``.

    Empty segments sum to 0 (unlike raw ``np.add.reduceat``).
    """
    values = np.asarray(values)
    indptr = _check_indptr(values, indptr)
    n = indptr.shape[0] - 1
    out = np.zeros(n, dtype=np.result_type(values.dtype))
    if values.shape[0] == 0 or n == 0:
        return out
    counts = np.diff(indptr)
    nonempty = counts > 0
    # With empty segments dropped, consecutive non-empty starts delimit
    # exactly the non-empty ranges, so reduceat is safe and exact.
    out[nonempty] = np.add.reduceat(values, indptr[:-1][nonempty])
    return out


def group_reduce_sum(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` grouped by ``keys``: ``(unique_keys, sums)``.

    The sort/unique/reduceat idiom that contraction (parallel-edge
    merging) and several kernels previously hand-rolled; ``unique_keys``
    comes back sorted ascending and ``sums[i]`` is the total of the
    values whose key equals ``unique_keys[i]``.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape:
        raise ValueError(
            f"keys and values must align: {keys.shape} vs {values.shape}"
        )
    if keys.size == 0:
        return keys.copy(), values.copy()
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    uniq, starts = np.unique(keys_sorted, return_index=True)
    indptr = np.concatenate([starts, [keys.shape[0]]])
    return uniq, segment_sum(values[order], indptr)


def group_ranks(keys: np.ndarray) -> np.ndarray:
    """Rank of each element within its key group, in position order.

    ``out[i]`` counts the earlier positions ``j < i`` with ``keys[j] ==
    keys[i]``.  Used by the label assembler to grant per-suffix digit
    capacities in vertex order; extracted here because it is the same
    stable-sort run-decomposition that underlies the other helpers.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    k_sorted = keys[order]
    is_start = np.empty(k_sorted.shape[0], dtype=bool)
    is_start[0] = True
    np.not_equal(k_sorted[1:], k_sorted[:-1], out=is_start[1:])
    start_pos = np.nonzero(is_start)[0]
    run_id = np.cumsum(is_start) - 1
    ranks_sorted = np.arange(k_sorted.shape[0], dtype=np.int64) - start_pos[run_id]
    ranks = np.empty_like(ranks_sorted)
    ranks[order] = ranks_sorted
    return ranks


def build_csr(
    n: int, us: np.ndarray, vs: np.ndarray, ws: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric CSR ``(indptr, indices, weights)`` from undirected edges.

    Each edge ``{u, v, w}`` appears in both directions, matching the layout
    of :class:`repro.graphs.graph.Graph`.  This is the single place the
    swap kernels build adjacency from a hierarchy level's edge arrays.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    ws = np.asarray(ws, dtype=np.float64)
    src = np.concatenate([us, vs])
    dst = np.concatenate([vs, us])
    wt = np.concatenate([ws, ws])
    order = np.argsort(src, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst[order], wt[order]
