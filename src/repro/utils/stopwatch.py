"""A tiny wall-clock stopwatch used by the experiment harness.

``perf_counter`` based, supports use as a context manager and accumulation
over repeated sections -- enough to reproduce the paper's running-time
quotients without pulling in a profiling dependency.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
