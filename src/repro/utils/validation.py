"""Argument-validation helpers shared across the package.

These raise early with actionable messages instead of letting numpy
index errors surface deep inside an algorithm.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def as_int_array(name: str, values, n: int | None = None) -> np.ndarray:
    """Coerce ``values`` to a 1-D int64 array, optionally checking length."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    return arr


def check_assignment(name: str, assignment: np.ndarray, n_targets: int) -> None:
    """Validate an assignment array maps into ``range(n_targets)``."""
    if assignment.size == 0:
        return
    lo, hi = int(assignment.min()), int(assignment.max())
    if lo < 0 or hi >= n_targets:
        raise ValueError(
            f"{name} values must be in [0, {n_targets - 1}], found range [{lo}, {hi}]"
        )
