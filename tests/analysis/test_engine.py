"""Engine-level behavior: suppression syntax, coverage, staleness,
rendering, and the CLI exit-code contract."""

from __future__ import annotations

import json
from pathlib import PurePosixPath

from repro.analysis.engine import (
    Finding,
    Report,
    lint_source,
    module_relpath,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.analysis.rules import DeterministicRandomness, default_rules


def det_findings(source, relpath="core/x.py"):
    return lint_source(
        source,
        path=relpath,
        rules=[DeterministicRandomness()],
        relpath=PurePosixPath(relpath),
    )


FIRING = "import numpy as np\nrng = np.random.default_rng()\n"


class TestSuppressions:
    def test_inline_allow_with_reason_suppresses(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro: allow[DET001] reason=fixture for the linter's own tests\n"
        )
        found = det_findings(src)
        assert len(found) == 1
        assert found[0].suppressed
        assert found[0].suppression_reason == "fixture for the linter's own tests"

    def test_preceding_comment_line_covers_next_line(self):
        src = (
            "import numpy as np\n"
            "# repro: allow[DET001] reason=entropy seed is hashed into the run id\n"
            "rng = np.random.default_rng()\n"
        )
        found = det_findings(src)
        assert len(found) == 1 and found[0].suppressed

    def test_reason_is_mandatory(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: allow[DET001]\n"
        )
        found = det_findings(src)
        rules = {f.rule for f in found}
        # The allow is rejected: DET001 stays active and SUP001 flags the
        # reason-less directive.
        assert "SUP001" in rules
        det = [f for f in found if f.rule == "DET001"]
        assert det and not det[0].suppressed

    def test_stale_allow_is_flagged(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)  # repro: allow[DET001] reason=stale\n"
        )
        found = det_findings(src)
        assert {f.rule for f in found} == {"SUP002"}

    def test_allow_does_not_leak_to_other_rules(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: allow[DET002] reason=wrong id\n"
        )
        found = det_findings(src)
        det = [f for f in found if f.rule == "DET001"]
        assert det and not det[0].suppressed

    def test_multiple_ids_in_one_directive(self):
        allows, problems = parse_suppressions(
            "x = 1  # repro: allow[DET001, SRV002] reason=shared fixture\n", "x.py"
        )
        assert problems == []
        assert len(allows) == 1
        assert allows[0].rule_ids == ("DET001", "SRV002")
        assert allows[0].reason == "shared fixture"


class TestEngine:
    def test_syntax_error_becomes_eng001(self):
        found = lint_source("def broken(:\n", path="core/x.py", rules=default_rules())
        assert [f.rule for f in found] == ["ENG001"]

    def test_module_relpath_strips_repro_prefix(self):
        rel = module_relpath("/root/repo/src/repro/core/kernels.py")
        assert rel == PurePosixPath("core/kernels.py")

    def test_findings_sorted_by_location(self):
        src = (
            "import random\n"
            "import numpy as np\n"
            "np.random.shuffle([])\n"
        )
        found = det_findings(src)
        assert [f.line for f in found] == sorted(f.line for f in found)


class TestRendering:
    def _report(self):
        return Report(findings=det_findings(FIRING), files_scanned=1)

    def test_text_render_has_location_rule_and_hint(self):
        text = render_text(self._report())
        assert "core/x.py:2" in text
        assert "DET001" in text
        assert "hint:" in text

    def test_json_render_round_trips(self):
        payload = json.loads(render_json(self._report()))
        assert payload["files_scanned"] == 1
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET001"
        assert finding["line"] == 2
        assert finding["suppressed"] is False

    def test_report_ok_iff_no_active_findings(self):
        active = self._report()
        assert not active.ok
        suppressed = Report(
            findings=[
                Finding(
                    rule=f.rule,
                    path=f.path,
                    line=f.line,
                    col=f.col,
                    message=f.message,
                    hint=f.hint,
                    suppressed=True,
                    suppression_reason="test",
                )
                for f in active.findings
            ],
            files_scanned=1,
        )
        assert suppressed.ok
        assert len(suppressed.suppressed) == 1
