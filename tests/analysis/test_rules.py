"""Fixture pairs for every lint rule: one snippet that MUST fire, one
near-miss that MUST NOT.

The near-misses are modeled on real shipped code (``np.random.Generator``
type annotations, ``time.sleep`` on the executor path, the
``current_backend()`` facades), so the rules stay precise enough to run
over ``src/`` without drowning the tree in suppressions.
"""

from __future__ import annotations

from pathlib import PurePosixPath

from repro.analysis.engine import lint_source
from repro.analysis.rules import (
    BackendDispatchOnly,
    ConfigIdentityCoverage,
    DeterministicRandomness,
    NoBlockingInAsyncServe,
    NoWallClockInIdentity,
    RegisterAtImportScope,
    ServeErrorTaxonomy,
    StructuredLoggingOnly,
    default_rules,
)


def run_rule(rule, source, relpath):
    return [
        f
        for f in lint_source(
            source, path=relpath, rules=[rule], relpath=PurePosixPath(relpath)
        )
        if f.rule == rule.id
    ]


# ----------------------------------------------------------------------
# DET001
# ----------------------------------------------------------------------
class TestDET001:
    def test_fires_on_unseeded_default_rng(self):
        src = (
            "import numpy as np\n"
            "def jitter(x):\n"
            "    rng = np.random.default_rng()\n"
            "    return x + rng.normal()\n"
        )
        found = run_rule(DeterministicRandomness(), src, "core/enhancer.py")
        assert len(found) == 1 and found[0].line == 3

    def test_fires_on_legacy_global_and_stdlib_random(self):
        src = (
            "import numpy as np\n"
            "import random\n"
            "def pick(xs):\n"
            "    np.random.shuffle(xs)\n"
            "    return random.choice(xs)\n"
        )
        found = run_rule(DeterministicRandomness(), src, "partitioning/initial.py")
        assert {f.line for f in found} == {2, 4}

    def test_near_miss_annotations_and_seeded(self):
        # The shape of partitioning/initial.py and mapping/drb.py:
        # Generator *annotations* and isinstance checks are fine, and a
        # seeded default_rng is explicitly allowed by the rule's letter.
        src = (
            "import numpy as np\n"
            "def grow(g, rng: np.random.Generator) -> np.ndarray:\n"
            "    if isinstance(rng, np.random.Generator):\n"
            "        return rng.integers(0, 7, size=4)\n"
            "    return np.random.default_rng(np.random.SeedSequence(1))\n"
        )
        assert run_rule(DeterministicRandomness(), src, "partitioning/initial.py") == []

    def test_out_of_scope_tree_not_scanned(self):
        src = "import random\n"
        assert run_rule(DeterministicRandomness(), src, "serve/loadgen.py") == []


# ----------------------------------------------------------------------
# DET002
# ----------------------------------------------------------------------
class TestDET002:
    def test_fires_on_wall_clock(self):
        src = (
            "import time, datetime\n"
            "def stamp(identity):\n"
            "    identity['at'] = time.time()\n"
            "    identity['day'] = datetime.datetime.now()\n"
            "    return identity\n"
        )
        found = run_rule(NoWallClockInIdentity(), src, "experiments/store.py")
        assert {f.line for f in found} == {3, 4}

    def test_near_miss_perf_counter(self):
        # utils/stopwatch.py's idiom, as used inside the scanned trees.
        src = (
            "import time\n"
            "def measure():\n"
            "    t0 = time.perf_counter()\n"
            "    return time.perf_counter() - t0, time.monotonic()\n"
        )
        assert run_rule(NoWallClockInIdentity(), src, "experiments/runner.py") == []


# ----------------------------------------------------------------------
# BKD001
# ----------------------------------------------------------------------
class TestBKD001:
    def test_fires_on_direct_backend_method(self):
        src = (
            "from repro.core.backend import NumpyBackend\n"
            "def distances(indptr, indices, n):\n"
            "    return NumpyBackend().all_pairs_distances(indptr, indices, n)\n"
        )
        found = run_rule(BackendDispatchOnly(), src, "graphs/algorithms.py")
        assert found  # import + instantiation + bypassed dispatch

    def test_fires_on_reference_impl_call(self):
        src = (
            "def classes(g, distances):\n"
            "    return _djokovic_classes_loop(g, distances)\n"
        )
        found = run_rule(BackendDispatchOnly(), src, "partialcube/hierarchy.py")
        assert len(found) == 1

    def test_near_miss_current_backend_and_facades(self):
        # The shipped idioms: dispatch via current_backend() (directly or
        # through a local), and plain facade-function calls.
        src = (
            "from repro.core.backend import current_backend\n"
            "from repro.graphs.algorithms import all_pairs_distances\n"
            "from repro.utils import bitops\n"
            "def go(g, labels, indptr, indices, weights, lsb):\n"
            "    backend = current_backend()\n"
            "    a = backend.vertex_lsb_sums(lsb, indptr, indices, weights)\n"
            "    b = current_backend().argsort_labels(labels)\n"
            "    c = all_pairs_distances(g)\n"
            "    d = bitops.pairwise_hamming(labels)\n"
            "    return a, b, c, d\n"
        )
        assert run_rule(BackendDispatchOnly(), src, "core/kernels.py") == []

    def test_reference_impl_allowed_in_home_module(self):
        src = (
            "def djokovic_classes(g, distances):\n"
            "    return _djokovic_classes_loop(g, distances)\n"
        )
        assert run_rule(BackendDispatchOnly(), src, "partialcube/djokovic.py") == []


# ----------------------------------------------------------------------
# SRV001
# ----------------------------------------------------------------------
class TestSRV001:
    def test_fires_on_blocking_in_async(self):
        src = (
            "import time, subprocess\n"
            "async def handle(req):\n"
            "    time.sleep(0.1)\n"
            "    subprocess.run(['true'])\n"
            "    with open('x') as f:\n"
            "        return f.read()\n"
        )
        found = run_rule(NoBlockingInAsyncServe(), src, "serve/service.py")
        assert {f.line for f in found} == {3, 4, 5}

    def test_near_miss_executor_and_sync_def(self):
        # scheduler.py's real shape: time.sleep lives in a *sync* helper
        # that runs on the executor; the async side awaits asyncio.sleep.
        src = (
            "import asyncio, time\n"
            "def _compute_with_retries(delay):\n"
            "    time.sleep(delay)\n"
            "async def dispatch(loop, reqs):\n"
            "    await asyncio.sleep(0.01)\n"
            "    def blocking():\n"
            "        time.sleep(1.0)\n"
            "    return await loop.run_in_executor(None, blocking)\n"
        )
        assert run_rule(NoBlockingInAsyncServe(), src, "serve/scheduler.py") == []

    def test_out_of_scope_outside_serve(self):
        src = "import time\nasync def f():\n    time.sleep(1)\n"
        assert run_rule(NoBlockingInAsyncServe(), src, "experiments/runner.py") == []


# ----------------------------------------------------------------------
# SRV002
# ----------------------------------------------------------------------
class TestSRV002:
    def test_fires_on_generic_raise_and_bare_except(self):
        src = (
            "def parse(body):\n"
            "    try:\n"
            "        return int(body)\n"
            "    except:\n"
            "        raise ValueError('bad body')\n"
        )
        found = run_rule(ServeErrorTaxonomy(), src, "serve/service.py")
        assert {f.line for f in found} == {4, 5}

    def test_near_miss_taxonomy_and_named_except(self):
        src = (
            "from repro.errors import ReproError, TransientError\n"
            "def parse(body):\n"
            "    try:\n"
            "        return int(body)\n"
            "    except (TypeError, ValueError) as exc:\n"
            "        raise ReproError(f'bad body: {exc}') from exc\n"
            "def shed():\n"
            "    raise TransientError('queue full')\n"
        )
        assert run_rule(ServeErrorTaxonomy(), src, "serve/scheduler.py") == []


# ----------------------------------------------------------------------
# REG001
# ----------------------------------------------------------------------
class TestREG001:
    def test_fires_inside_function(self):
        src = (
            "from repro.api.registry import REGISTRY\n"
            "def setup(name, value):\n"
            "    REGISTRY.register('topology', name, value)\n"
        )
        found = run_rule(RegisterAtImportScope(), src, "experiments/topologies.py")
        assert len(found) == 1 and found[0].line == 3

    def test_near_miss_module_scope_loop_and_decorator(self):
        # matrix.py / stages.py shapes: top-level loops and top-level
        # decorators both run at import time.
        src = (
            "from repro.api.registry import REGISTRY\n"
            "for name in ('a', 'b'):\n"
            "    REGISTRY.register('scenario', name, object())\n"
            "@REGISTRY.register('verify')\n"
            "def hook(ctx):\n"
            "    return None\n"
        )
        assert run_rule(RegisterAtImportScope(), src, "experiments/matrix.py") == []


# ----------------------------------------------------------------------
# CFG001
# ----------------------------------------------------------------------
_CFG_HEADER = (
    "from dataclasses import asdict, dataclass\n"
    "from typing import ClassVar\n"
    "@dataclass(frozen=True)\n"
)


class TestCFG001:
    def test_fires_on_undeclared_pop(self):
        src = _CFG_HEADER + (
            "class PipelineConfig:\n"
            "    partition: str = 'kway'\n"
            "    backend: str = ''\n"
            "    IDENTITY_EXCLUDED: ClassVar[frozenset[str]] = frozenset()\n"
            "    def identity(self):\n"
            "        d = asdict(self)\n"
            "        d.pop('backend', None)\n"
            "        return d\n"
        )
        found = run_rule(ConfigIdentityCoverage(), src, "api/pipeline.py")
        assert len(found) == 1 and "without listing it" in found[0].message

    def test_fires_on_missing_exclusion_set(self):
        src = (
            "from dataclasses import asdict, dataclass\n"
            "@dataclass(frozen=True)\n"
            "class PipelineConfig:\n"
            "    partition: str = 'kway'\n"
            "    def identity(self):\n"
            "        return asdict(self)\n"
        )
        found = run_rule(ConfigIdentityCoverage(), src, "api/pipeline.py")
        assert len(found) == 1 and "IDENTITY_EXCLUDED" in found[0].message

    def test_fires_on_unconsumed_field(self):
        src = _CFG_HEADER + (
            "class PipelineConfig:\n"
            "    partition: str = 'kway'\n"
            "    backend: str = ''\n"
            "    IDENTITY_EXCLUDED: ClassVar[frozenset[str]] = frozenset()\n"
            "    def identity(self):\n"
            "        return {'partition': self.partition}\n"
        )
        found = run_rule(ConfigIdentityCoverage(), src, "api/pipeline.py")
        assert len(found) == 1 and "'backend'" in found[0].message

    def test_fires_on_stale_exclusion_entry(self):
        src = _CFG_HEADER + (
            "class PipelineConfig:\n"
            "    partition: str = 'kway'\n"
            "    IDENTITY_EXCLUDED: ClassVar[frozenset[str]] = "
            "frozenset({'ghost'})\n"
            "    def identity(self):\n"
            "        return asdict(self)\n"
        )
        found = run_rule(ConfigIdentityCoverage(), src, "api/pipeline.py")
        assert len(found) == 1 and "not a declared" in found[0].message

    def test_near_miss_shipped_shape(self):
        # The real PipelineConfig shape: asdict + a loop over the
        # exclusion set.
        src = _CFG_HEADER + (
            "class PipelineConfig:\n"
            "    partition: str = 'kway'\n"
            "    backend: str = ''\n"
            "    IDENTITY_EXCLUDED: ClassVar[frozenset[str]] = "
            "frozenset({'backend'})\n"
            "    def identity(self):\n"
            "        d = asdict(self)\n"
            "        for excluded in self.IDENTITY_EXCLUDED:\n"
            "            d.pop(excluded, None)\n"
            "        return d\n"
        )
        assert run_rule(ConfigIdentityCoverage(), src, "api/pipeline.py") == []

    def test_only_applies_to_pipeline_module(self):
        src = "class PipelineConfig:\n    pass\n"
        assert run_rule(ConfigIdentityCoverage(), src, "serve/scheduler.py") == []


# ----------------------------------------------------------------------
# OBS001
# ----------------------------------------------------------------------
class TestOBS001:
    def test_fires_on_print_in_serve(self):
        src = (
            "def boot(port):\n"
            "    print(f'listening on {port}')\n"
        )
        found = run_rule(StructuredLoggingOnly(), src, "serve/service.py")
        assert len(found) == 1 and found[0].line == 2

    def test_fires_on_stderr_write_in_runner(self):
        src = (
            "import sys\n"
            "def report(msg):\n"
            "    sys.stderr.write(msg + '\\n')\n"
        )
        found = run_rule(
            StructuredLoggingOnly(), src, "experiments/runner.py"
        )
        assert len(found) == 1 and found[0].line == 3

    def test_near_miss_stdout_protocol_writer_and_obs_logger(self):
        # The shape of the stdio serve mode (stdout IS the protocol
        # channel) and of sanctioned obs logging.
        src = (
            "import sys\n"
            "from repro.obs import get_logger\n"
            "def write_line(text):\n"
            "    sys.stdout.write(text + '\\n')\n"
            "    sys.stdout.flush()\n"
            "def boot(port):\n"
            "    get_logger('serve').info('serve_listening', port=port)\n"
        )
        assert run_rule(StructuredLoggingOnly(), src, "serve/service.py") == []

    def test_suppression_needs_a_reason(self):
        src = (
            "def show(report):\n"
            "    print(report)  # repro: allow[OBS001] "
            "reason=CLI-facing report on stdout by contract\n"
        )
        findings = lint_source(
            src,
            path="serve/loadgen.py",
            rules=[StructuredLoggingOnly()],
            relpath=PurePosixPath("serve/loadgen.py"),
        )
        assert [f for f in findings if not f.suppressed] == []

    def test_out_of_scope_cli_not_scanned(self):
        src = "print('table output')\n"
        assert run_rule(StructuredLoggingOnly(), src, "cli.py") == []
        assert run_rule(
            StructuredLoggingOnly(), src, "experiments/cli.py"
        ) == []


def test_rule_pack_has_all_contract_rules():
    ids = {r.id for r in default_rules()}
    assert ids == {
        "DET001",
        "DET002",
        "BKD001",
        "SRV001",
        "SRV002",
        "REG001",
        "CFG001",
        "OBS001",
    }
