"""The contract the CI gate relies on: the shipped tree lints clean,
every suppression carries a reason, and an injected violation fails."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.cli import main as lint_main

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def shipped_report():
    assert (SRC / "repro").is_dir(), "test must run from the repo checkout"
    return lint_paths([SRC])


def test_shipped_tree_is_clean(shipped_report):
    assert shipped_report.ok, "\n".join(
        f.location() + ": " + f.rule + " " + f.message
        for f in shipped_report.active
    )
    assert shipped_report.files_scanned > 50


def test_every_suppression_carries_a_reason(shipped_report):
    for f in shipped_report.suppressed:
        assert f.suppression_reason.strip(), f.location()


def test_cli_exits_zero_on_shipped_tree(capsys):
    assert lint_main([str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_json_output_is_machine_readable(capsys):
    assert lint_main([str(SRC), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["active"] == 0


def test_injected_violation_fails(tmp_path, capsys):
    # Mirror the package layout so path-scoped rules engage: the file
    # must sit under a `repro/core/` directory.
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    bad = core / "injected.py"
    bad.write_text(
        "import numpy as np\n\nrng = np.random.default_rng()\n",
        encoding="utf-8",
    )
    assert lint_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_injected_violation_with_reasonless_allow_still_fails(tmp_path, capsys):
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "injected.py").write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: allow[DET001]\n",
        encoding="utf-8",
    )
    assert lint_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "SUP001" in out


def test_list_rules_names_the_whole_pack(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "BKD001", "SRV001", "SRV002", "REG001", "CFG001"):
        assert rule_id in out
