"""First-class kernel-backend selection: config, scopes, env, wire, CLI.

The selection chain (explicit arg > ``use_backend`` scope >
``set_default_backend`` > deprecated env var > auto) and its surfaces:
``PipelineConfig.backend`` (excluded from identity), ``PipelineResult``
provenance, the serve config key and the CLI flag.
"""

import numpy as np
import pytest

from repro.api.pipeline import Pipeline, PipelineConfig
from repro.core.backend import (
    BACKEND_ENV_VAR,
    available_backends,
    current_backend,
    get_backend,
    known_backends,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)
from repro.errors import ConfigurationError
from repro.graphs import generators as gen


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(known_backends()) >= {
            "numpy", "numba", "numba-parallel", "auto",
        }

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(ValueError, match="numpy"):
            resolve_backend_name("cuda")


class TestSelectionChain:
    def test_auto_resolves_to_an_available_backend(self):
        assert resolve_backend_name() in available_backends()

    def test_unavailable_backend_degrades(self):
        # Requesting a compiled tier on a host without numba falls back
        # down the chain instead of crashing; with numba present the
        # request is honored exactly.
        resolved = resolve_backend_name("numba")
        if "numba" in available_backends():
            assert resolved == "numba"
        else:
            assert resolved == "numpy"

    def test_set_default_backend_roundtrip(self):
        set_default_backend("numpy")
        assert get_backend() == "numpy"
        set_default_backend(None)
        assert resolve_backend_name() in available_backends()

    def test_set_default_backend_validates(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_default_backend("tpu")

    def test_use_backend_scopes_and_restores(self):
        set_default_backend("numpy")
        with use_backend("auto"):
            assert resolve_backend_name() in available_backends()
            with use_backend("numpy"):
                assert current_backend().name == "numpy"
        assert get_backend() == "numpy"

    def test_explicit_arg_wins_over_everything(self):
        set_default_backend("numpy")
        with use_backend("numpy"):
            assert resolve_backend_name("auto") in available_backends()

    def test_env_var_still_works_but_warns(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        with pytest.warns(DeprecationWarning, match="set_default_backend"):
            assert resolve_backend_name() == "numpy"

    def test_override_silences_env_warning(self, monkeypatch):
        import warnings

        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        set_default_backend("numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend_name() == "numpy"


class TestPipelineSurface:
    def test_config_validates_backend_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            PipelineConfig(backend="fpga")

    def test_backend_excluded_from_identity(self):
        # Byte identity across backends means the backend choice must
        # not split artifact-store cells or serve batch groups.
        plain = PipelineConfig()
        picked = PipelineConfig(backend="numpy")
        assert plain.identity() == picked.identity()
        assert "backend" not in picked.identity()

    def test_result_records_resolved_backend(self):
        ga = gen.barabasi_albert(60, 3, seed=1)
        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(enhance="none", backend="numpy"),
        )
        res = pipe.run(ga, seed=0)
        assert res.backend == "numpy"

    def test_results_byte_identical_across_requested_backends(self):
        ga = gen.barabasi_albert(60, 3, seed=2)
        results = []
        for name in available_backends():
            pipe = Pipeline("grid4x4", PipelineConfig(backend=name))
            results.append(pipe.run(ga, seed=5))
        ref = results[0]
        for res in results[1:]:
            assert np.array_equal(ref.mu_final, res.mu_final)
            assert ref.coco_after == res.coco_after
            assert ref.identity_hash == res.identity_hash


class TestWireAndCli:
    def test_parse_config_accepts_backend(self):
        from repro.serve.service import parse_config

        cfg = parse_config({"backend": "numpy"})
        assert cfg.backend == "numpy"
        assert "backend" not in cfg.identity()

    def test_serve_settings_carry_backend(self):
        from repro.serve.service import ServeSettings

        assert ServeSettings().backend == ""
        assert ServeSettings(backend="numpy").backend == "numpy"

    @pytest.mark.parametrize(
        "argv",
        [
            ["map", "g", "t", "--backend", "numpy"],
            ["enhance", "g", "t", "m", "--backend", "auto"],
            ["serve", "--backend", "numba-parallel"],
        ],
    )
    def test_cli_flag_parses(self, argv):
        from repro.cli import build_parser

        args = build_parser().parse_args(argv)
        assert args.backend == argv[-1]

    def test_healthz_and_metrics_surface_backend(self):
        import asyncio

        from repro.serve.scheduler import BatchScheduler
        from repro.serve.service import MappingService

        scheduler = BatchScheduler(window_s=0.01, max_batch=4)
        try:
            svc = MappingService(scheduler)
            status, body, _ = asyncio.run(svc.handle("healthz", {}))
            assert status == 200
            assert body["kernel_backend"] in available_backends()
            status, body, _ = asyncio.run(
                svc.handle("metrics", {"format": "json"})
            )
            assert body["kernel_backend"] in available_backends()
        finally:
            scheduler.close()
