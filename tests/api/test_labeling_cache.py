"""Cross-process labeling disk cache (REPRO_LABELING_CACHE)."""

import io

import numpy as np
import pytest

import repro.api.topology as topo_mod
from repro.api.topology import LABELING_CACHE_ENV, Topology, labeling_cache_key
from repro.graphs import generators as gen


@pytest.fixture(autouse=True)
def fresh_sessions():
    Topology.clear_sessions()
    yield
    Topology.clear_sessions()


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    d = tmp_path / "labelings"
    monkeypatch.setenv(LABELING_CACHE_ENV, str(d))
    return d


class TestCacheRoundTrip:
    def test_compute_then_disk_hit(self, cache_dir, monkeypatch):
        t1 = Topology.from_name("fattree4x3")  # 85 PEs, wide labels
        lab1 = t1.labeling
        assert t1.labelings_computed == 1
        assert any(cache_dir.glob("*.npz"))

        Topology.clear_sessions()
        monkeypatch.setattr(
            topo_mod,
            "partial_cube_labeling",
            lambda g: (_ for _ in ()).throw(AssertionError("recomputed")),
        )
        t2 = Topology.from_name("fattree4x3")
        lab2 = t2.labeling
        assert t2.labelings_computed == 0
        assert lab1.dim == lab2.dim
        assert np.array_equal(lab1.labels, lab2.labels)
        assert len(lab1.cut_edges) == len(lab2.cut_edges)
        for a, b in zip(lab1.cut_edges, lab2.cut_edges):
            assert np.array_equal(a, b)

    def test_narrow_labeling_roundtrips_too(self, cache_dir):
        lab1 = Topology.from_name("grid4x4").labeling
        Topology.clear_sessions()
        lab2 = Topology.from_name("grid4x4").labeling
        assert lab2.labels.ndim == 1 and np.array_equal(lab1.labels, lab2.labels)

    def test_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LABELING_CACHE_ENV, raising=False)
        t = Topology.from_name("grid4x4")
        t.labeling
        assert t.labelings_computed == 1
        assert not list(tmp_path.glob("**/*.npz"))

    def test_corrupt_file_degrades_to_recompute(self, cache_dir):
        g = gen.grid(4, 4)
        cache_dir.mkdir(parents=True, exist_ok=True)
        (cache_dir / f"{labeling_cache_key(g)}.npz").write_bytes(b"garbage")
        t = Topology.from_graph(g, name="grid4x4")
        t.labeling
        assert t.labelings_computed == 1  # recomputed, not crashed


class TestCacheKey:
    def test_key_is_content_addressed(self):
        # same content -> same key (rebuilt object), different content
        # -> different key
        assert labeling_cache_key(gen.grid(4, 4)) == labeling_cache_key(
            gen.grid(4, 4)
        )
        assert labeling_cache_key(gen.grid(4, 4)) != labeling_cache_key(
            gen.grid(4, 5)
        )

    def test_runner_enables_cache_under_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LABELING_CACHE_ENV, raising=False)
        from repro.experiments.runner import ExperimentConfig, run_experiment

        config = ExperimentConfig(
            instances=("p2p-Gnutella",),
            topologies=("grid4x4",),
            cases=("c2",),
            repetitions=1,
            n_hierarchies=1,
            divisor=1024,
            n_min=64,
            n_max=96,
        )
        run_experiment(config, store=tmp_path / "cells")
        assert list((tmp_path / "cells" / "labelings").glob("*.npz"))

class TestCompression:
    def test_entries_are_compressed(self, cache_dir):
        # fattree4x3: 84 classes, cut_edges carry O(n) int64 pairs per
        # class -- exactly the payload compression targets.
        t = Topology.from_name("fattree4x3")
        pc = t.labeling
        path = next(cache_dir.glob("*.npz"))
        compressed = path.stat().st_size
        raw = io.BytesIO()
        flat = np.concatenate([np.asarray(c) for c in pc.cut_edges])
        splits = np.cumsum([c.shape[0] for c in pc.cut_edges])[:-1]
        np.savez(raw, labels=pc.labels, dim=np.int64(pc.dim), cut_edges=flat,
                 cut_splits=np.asarray(splits, dtype=np.int64))
        assert compressed < 0.5 * raw.getbuffer().nbytes

    def test_schema1_layout_is_quarantined_and_recomputed(self, cache_dir):
        # A valid zip carrying the retired schema-1 members (verbatim
        # cut_edges, no checksum) at the current key: must quarantine and
        # recompute, never crash or serve unverified data.  Real schema-1
        # files live under a different content key (the schema is part of
        # the key) and simply never hit.
        t = Topology.from_name("fattree4x3")
        pc = t.labeling
        path = next(cache_dir.glob("*.npz"))
        flat = np.concatenate([np.asarray(c) for c in pc.cut_edges])
        splits = np.cumsum([c.shape[0] for c in pc.cut_edges])[:-1]
        with open(path, "wb") as f:
            np.savez(f, labels=pc.labels, dim=np.int64(pc.dim), cut_edges=flat,
                     cut_splits=np.asarray(splits, dtype=np.int64))
        Topology.clear_sessions()
        t2 = Topology.from_name("fattree4x3")
        pc2 = t2.labeling
        assert t2.labelings_computed == 1
        assert np.array_equal(pc.labels, pc2.labels)
        for a, b in zip(pc.cut_edges, pc2.cut_edges):
            assert np.array_equal(a, b)
        assert list(cache_dir.glob("*.npz.corrupt"))


class TestStats:
    def test_disk_traffic_counters(self, cache_dir):
        from repro.api.topology import labeling_stats

        base = labeling_stats()
        Topology.from_name("grid4x4").labeling  # compute + store
        Topology.clear_sessions()
        Topology.from_name("grid4x4").labeling  # disk hit
        delta = {k: v - base[k] for k, v in labeling_stats().items()}
        assert delta == {"computed": 1, "disk_hits": 1, "disk_misses": 1,
                         "disk_stores": 1, "disk_corrupt": 0}

    def test_corrupt_zip_magic_degrades_to_recompute(self, cache_dir):
        # Zip magic but truncated body: np.load raises BadZipFile, which
        # must read as a miss, not crash the sweep.
        g = gen.grid(4, 4)
        cache_dir.mkdir(parents=True, exist_ok=True)
        (cache_dir / f"{labeling_cache_key(g)}.npz").write_bytes(b"PK\x03\x04junk")
        t = Topology.from_graph(g, name="grid4x4")
        t.labeling
        assert t.labelings_computed == 1
