"""Pipeline behavior: legacy byte-equivalence, hooks, results, identity."""

import numpy as np
import pytest
import dataclasses

from repro.api.pipeline import Pipeline, PipelineConfig
from repro.api.topology import Topology
from repro.core.config import TimerConfig
from repro.core.enhancer import timer_enhance
from repro.errors import ConfigurationError, MappingError
from repro.experiments.topologies import make_topology
from repro.graphs import generators as gen
from repro.mapping.mapper import compute_initial_mapping
from repro.mapping.objective import coco
from repro.partitioning.kway import partition_kway
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def app_graph():
    return gen.barabasi_albert(220, 3, seed=9)


class TestLegacyByteEquivalence:
    """pipeline.run must reproduce the pre-redesign call sequences."""

    @pytest.mark.parametrize("case", ["c1", "c2", "c3", "c4"])
    def test_map_path_raw_policy(self, app_graph, case):
        """The CLI `map` convention: each stage reseeded with the raw int."""
        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(
                initial_mapping=case, enhance="none", seed_policy="raw"
            ),
        )
        res = pipe.run(app_graph, seed=13)
        gp, _pc = make_topology("grid4x4")
        part = partition_kway(app_graph, gp.n, epsilon=0.03, seed=13)
        mu, _ = compute_initial_mapping(case, part, gp, seed=13)
        assert np.array_equal(res.mu_final, mu)
        assert res.coco_after == coco(app_graph, gp, mu)

    def test_enhance_path_raw_policy(self, app_graph):
        """The CLI `enhance` convention: TIMER from a provided mapping."""
        gp, pc = make_topology("grid4x4")
        part = partition_kway(app_graph, gp.n, epsilon=0.03, seed=2)
        mu0, _ = compute_initial_mapping("c2", part, gp, seed=2)
        cfg = TimerConfig(n_hierarchies=5)
        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(
                partition="none",
                initial_mapping="none",
                seed_policy="raw",
                timer=cfg,
            ),
        )
        res = pipe.run(app_graph, mu=mu0, seed=4)
        legacy = timer_enhance(app_graph, gp, pc, mu0, seed=4, config=cfg)
        assert np.array_equal(res.mu_final, legacy.mu_after)
        assert res.coco_after == legacy.coco_after
        assert res.cut_after == legacy.cut_after

    def test_case_path_stream_policy(self, app_graph):
        """The harness convention: one rng threaded through the stages."""
        gp, pc = make_topology("grid4x4")
        part = partition_kway(app_graph, gp.n, epsilon=0.03, seed=6)
        cfg = TimerConfig(n_hierarchies=4)
        pipe = Pipeline(
            Topology.from_graph(gp, labeling=pc, name="grid4x4"),
            PipelineConfig(
                partition="none",
                initial_mapping="c1",
                seed_policy="stream",
                timer=cfg,
            ),
        )
        res = pipe.run(app_graph, partition=part, seed=21)
        rng = make_rng(21)
        mu, _ = compute_initial_mapping("c1", part, gp, seed=rng)
        legacy = timer_enhance(app_graph, gp, pc, mu, seed=rng, config=cfg)
        assert np.array_equal(res.mu_initial, mu)
        assert np.array_equal(res.mu_final, legacy.mu_after)

    def test_same_seed_same_hash_same_bytes(self, app_graph):
        pipe = Pipeline("grid4x4", PipelineConfig(timer=TimerConfig(n_hierarchies=2)))
        a = pipe.run(app_graph, seed=3)
        b = pipe.run(app_graph, seed=3)
        assert np.array_equal(a.mu_final, b.mu_final)
        assert a.identity_hash == b.identity_hash
        c = pipe.run(app_graph, seed=4)
        assert c.identity_hash != a.identity_hash

    def test_provided_inputs_change_the_hash(self, app_graph):
        """Caller-supplied mu/partition enter the hash by *content*:
        same hash must mean same numbers."""
        pipe = Pipeline("grid4x4", PipelineConfig(timer=TimerConfig(n_hierarchies=2)))
        computed = pipe.run(app_graph, seed=3)
        assert computed.identity["inputs"] == {"partition": None, "mu": None}
        supplied = pipe.run(
            app_graph, mu=np.zeros(app_graph.n, dtype=np.int64), seed=3
        )
        assert supplied.identity["inputs"]["mu"] is not None
        assert supplied.identity_hash != computed.identity_hash

        part_a = partition_kway(app_graph, 16, epsilon=0.03, seed=99)
        part_b = partition_kway(app_graph, 16, epsilon=0.03, seed=100)
        run_a = pipe.run(app_graph, partition=part_a, seed=3)
        run_b = pipe.run(app_graph, partition=part_b, seed=3)
        assert run_a.identity_hash != computed.identity_hash
        # different supplied partitions -> different provenance hashes
        assert run_a.identity_hash != run_b.identity_hash
        # same supplied content -> same hash
        rerun_a = pipe.run(app_graph, partition=part_a, seed=3)
        assert rerun_a.identity_hash == run_a.identity_hash

    def test_partition_stage_timing_uses_instance_name(self, app_graph):
        class NamedPartition:
            name = "metis-ish"

            def __call__(self, ga, k, *, epsilon, seed):
                return partition_kway(ga, k, epsilon=epsilon, seed=seed)

        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(enhance="none"),
            partition_stage=NamedPartition(),
        )
        res = pipe.run(app_graph, seed=0)
        assert res.stage_timings[0].name == "metis-ish"


class TestPipelineSurface:
    def test_stage_timings_and_metrics(self, app_graph):
        pipe = Pipeline("grid4x4", PipelineConfig(timer=TimerConfig(n_hierarchies=2)))
        res = pipe.run(app_graph, seed=1)
        assert [t.stage for t in res.stage_timings] == [
            "partition", "initial_mapping", "enhance",
        ]
        assert res.elapsed_seconds >= 0
        assert set(res.metrics) == {
            "cut_before", "cut_after", "coco_before", "coco_after",
        }
        assert res.coco_after <= res.coco_before
        assert res.seed == 1
        assert res.identity["config"]["timer"]["n_hierarchies"] == 2

    def test_unknown_stage_fails_at_build_time(self):
        with pytest.raises(ConfigurationError):
            Pipeline("grid4x4", PipelineConfig(initial_mapping="c99"))
        with pytest.raises(ConfigurationError):
            Pipeline("grid4x4", PipelineConfig(partition="metis"))
        with pytest.raises(ConfigurationError):
            Pipeline("no-such-topology")

    def test_missing_stage_without_inputs_raises(self, app_graph):
        pipe = Pipeline(
            "grid4x4", PipelineConfig(partition="none", initial_mapping="none")
        )
        with pytest.raises(ConfigurationError):
            pipe.run(app_graph, seed=0)

    def test_custom_stage_instance(self, app_graph):
        class FixedMapping:
            name = "fixed"

            def __call__(self, part, gp, *, seed):
                return np.zeros(part.assignment.shape[0], dtype=np.int64)

        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(enhance="none"),
            mapping_stage=FixedMapping(),
        )
        res = pipe.run(app_graph, seed=0)
        assert (res.mu_final == 0).all()
        assert res.stage_timings[1].name == "fixed"

    def test_verify_hooks_catch_bad_mappings(self, app_graph):
        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(
                partition="none",
                initial_mapping="none",
                enhance="none",
                pre_verify=("mapping-valid",),
            ),
        )
        bad = np.full(app_graph.n, 999, dtype=np.int64)  # outside V_p
        with pytest.raises(MappingError):
            pipe.run(app_graph, mu=bad)

    def test_report_hooks_populate_reports(self, app_graph):
        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(
                timer=TimerConfig(n_hierarchies=1),
                post_verify=("balance-preserved", "mapping-valid"),
                reports=("quality", "summary"),
            ),
        )
        res = pipe.run(app_graph, seed=5)
        assert res.reports["quality"] == res.metrics
        assert "Coco" in res.reports["summary"]

    def test_with_config_shares_session(self, app_graph):
        pipe = Pipeline("grid4x4", PipelineConfig(timer=TimerConfig(n_hierarchies=1)))
        other = pipe.with_config(initial_mapping="c3")
        assert other.topology is pipe.topology
        assert other.config.initial_mapping == "c3"
        assert pipe.config.initial_mapping == "c2"

    def test_with_config_keeps_stage_instances(self, app_graph):
        class FixedMapping:
            name = "fixed"

            def __call__(self, part, gp, *, seed):
                return np.full(part.assignment.shape[0], 7, dtype=np.int64)

        stage = FixedMapping()
        pipe = Pipeline(
            "grid4x4", PipelineConfig(enhance="none"), mapping_stage=stage
        )
        sibling = pipe.with_config(epsilon=0.05)
        assert sibling._mapping is stage
        res = sibling.run(app_graph, seed=0)
        assert (res.mu_final == 7).all()

    def test_config_is_frozen_and_validated(self):
        cfg = PipelineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.epsilon = 0.5  # frozen dataclass
        with pytest.raises(ConfigurationError):
            PipelineConfig(seed_policy="chaotic")
