"""Round-trips and absorption checks for the unified registry."""

import pytest

from repro.api.registry import (
    INITIAL_MAPPING,
    REGISTRY,
    SCENARIO,
    TOPOLOGY,
    Registry,
)
from repro.errors import ConfigurationError


class TestRegistryRoundTrip:
    def test_register_get_names(self):
        reg = Registry()
        reg.register("widget", "a", 1)
        reg.register("widget", "b", 2)
        assert reg.get("widget", "a") == 1
        assert reg.names("widget") == ("a", "b")
        assert ("widget", "a") in reg
        assert ("widget", "zzz") not in reg

    def test_decorator_form(self):
        reg = Registry()

        @reg.register("hook")
        def my_hook(ctx):
            return 42

        assert reg.get("hook", "my_hook") is my_hook

        @reg.register("hook", "renamed")
        def other(ctx):
            return 43

        assert reg.get("hook", "renamed") is other

    def test_duplicate_registration_fails_fast(self):
        reg = Registry()
        reg.register("k", "x", 1)
        with pytest.raises(ConfigurationError):
            reg.register("k", "x", 2)
        reg.register("k", "x", 2, overwrite=True)
        assert reg.get("k", "x") == 2
        # same value re-registration is idempotent
        reg.register("k", "x", 2)

    def test_unknown_name_lists_known(self):
        reg = Registry()
        reg.register("k", "alpha", 1)
        with pytest.raises(ConfigurationError) as exc:
            reg.get("k", "beta")
        assert "alpha" in str(exc.value)

    def test_resolve_passes_instances_through(self):
        reg = Registry()
        reg.register("k", "x", "by-name")
        sentinel = object()
        assert reg.resolve("k", sentinel) is sentinel
        assert reg.resolve("k", "x") == "by-name"

    def test_unregister(self):
        reg = Registry()
        reg.register("k", "x", 1)
        reg.unregister("k", "x")
        assert ("k", "x") not in reg
        reg.unregister("k", "x")  # idempotent


class TestAbsorbedRegistries:
    """The three pre-existing ad-hoc registries live in REGISTRY now."""

    def test_initial_mapping_cases_absorbed(self):
        assert set(REGISTRY.names(INITIAL_MAPPING)) >= {"c1", "c2", "c3", "c4"}
        # the old module-private view still answers
        from repro.mapping import mapper

        assert sorted(mapper._REGISTRY) == sorted(REGISTRY.names(INITIAL_MAPPING))
        assert mapper.available_algorithms()["c2"].name == "identity"

    def test_topologies_absorbed(self):
        from repro.experiments.topologies import topology_names

        assert set(topology_names()) == set(REGISTRY.names(TOPOLOGY))
        assert ("grid4x4" in REGISTRY.names(TOPOLOGY))

    def test_scenarios_absorbed(self):
        from repro.experiments.matrix import BUILTIN_SCENARIOS

        assert set(REGISTRY.names(SCENARIO)) >= {"paper", "widened", "smoke"}
        assert sorted(BUILTIN_SCENARIOS) == sorted(REGISTRY.names(SCENARIO))

    def test_legacy_dict_writes_register_through(self):
        """The old extension pattern ``table[name] = value`` still works:
        the shims are live MutableMapping views, not snapshots."""
        import repro.experiments as experiments
        from repro.experiments.matrix import BUILTIN_SCENARIOS, Scenario, get_scenario
        from repro.experiments.runner import ExperimentConfig
        from repro.mapping import mapper
        from repro.mapping.mapper import MappingAlgorithm

        scenario = Scenario("_test_live", ExperimentConfig(), "live-view probe")
        BUILTIN_SCENARIOS["_test_live"] = scenario
        algo = MappingAlgorithm("_test_c9", "probe", lambda part, gp, seed: None)
        mapper._REGISTRY["_test_c9"] = algo
        try:
            assert get_scenario("_test_live") is scenario
            # the re-export in repro.experiments sees the same live view
            assert "_test_live" in experiments.BUILTIN_SCENARIOS
            assert REGISTRY.get(INITIAL_MAPPING, "_test_c9") is algo
            assert "_test_c9" in mapper.available_algorithms()
        finally:
            del BUILTIN_SCENARIOS["_test_live"]
            del mapper._REGISTRY["_test_c9"]
        assert "_test_live" not in BUILTIN_SCENARIOS
        with pytest.raises(KeyError):
            BUILTIN_SCENARIOS["_test_live"]

    def test_custom_registrations_visible_everywhere(self):
        from repro.experiments.topologies import topology_names
        from repro.graphs import generators as gen
        from repro.mapping.mapper import MappingAlgorithm, available_algorithms

        REGISTRY.register(TOPOLOGY, "_test_grid2x2", lambda: gen.grid(2, 2))
        REGISTRY.register(
            INITIAL_MAPPING,
            "_test_case",
            MappingAlgorithm("_test_case", "test", lambda part, gp, seed: None),
        )
        try:
            assert "_test_grid2x2" in topology_names()
            assert "_test_case" in available_algorithms()
        finally:
            REGISTRY.unregister(TOPOLOGY, "_test_grid2x2")
            REGISTRY.unregister(INITIAL_MAPPING, "_test_case")
        assert "_test_grid2x2" not in topology_names()
