"""``Pipeline.run_batch(jobs=N)``: parallel, byte-identical batches."""

import pickle

import numpy as np
import pytest

from repro.api.pipeline import Pipeline, PipelineConfig
from repro.core.config import TimerConfig
from repro.errors import ConfigurationError
from repro.graphs import generators as gen
from repro.utils.rng import make_rng


def _pipe():
    return Pipeline(
        "grid4x4", PipelineConfig(timer=TimerConfig(n_hierarchies=2))
    )


def _graphs(k=4):
    return [gen.barabasi_albert(64 + 8 * i, 3, seed=i) for i in range(k)]


class TestJobsParity:
    def test_jobs_byte_identical_to_inline(self):
        graphs = _graphs()
        serial = _pipe().run_batch(graphs, seed=17)
        parallel = _pipe().run_batch(graphs, seed=17, jobs=3)
        assert len(serial) == len(parallel) == len(graphs)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.mu_final, b.mu_final)
            assert np.array_equal(a.mu_initial, b.mu_initial)
            assert a.metrics == b.metrics
            assert a.identity_hash == b.identity_hash

    def test_explicit_seeds_parity(self):
        graphs = _graphs(3)
        seeds = [11, 22, 33]
        serial = _pipe().run_batch(graphs, seeds=seeds)
        parallel = _pipe().run_batch(graphs, seeds=seeds, jobs=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.mu_final, b.mu_final)

    def test_results_in_input_order(self):
        graphs = _graphs(5)
        out = _pipe().run_batch(graphs, seed=3, jobs=4)
        assert [r.graph for r in out] == [g.name for g in graphs]

    def test_generator_seeds_rejected_for_jobs(self):
        graphs = _graphs(2)
        with pytest.raises(ConfigurationError):
            _pipe().run_batch(graphs, seeds=[make_rng(1), make_rng(2)], jobs=2)
        # ...but still fine inline
        out = _pipe().run_batch(graphs, seeds=[make_rng(1), make_rng(2)])
        assert len(out) == 2


class TestLabelingComputedOnce:
    def test_parent_warms_labeling_before_forking(self, monkeypatch):
        # The parent must compute the labeling exactly once; workers
        # inherit it instead of recomputing.
        pipe = _pipe()
        pipe.topology.labeling  # warm
        import repro.api.topology as topo_mod

        def bomb(_g):
            raise AssertionError("labeling recomputed in run_batch parent")

        monkeypatch.setattr(topo_mod, "partial_cube_labeling", bomb)
        out = pipe.run_batch(_graphs(2), seed=5, jobs=2)
        assert len(out) == 2


class TestPicklability:
    def test_pipeline_pickles_without_registry(self):
        # Spawn-start pools pickle the payload; the Registry (with its
        # lambda topology builders) must never enter the pickle stream.
        pipe = _pipe()
        clone = pickle.loads(pickle.dumps(pipe))
        ga = _graphs(1)[0]
        a = pipe.run(ga, seed=7)
        b = clone.run(ga, seed=7)
        assert np.array_equal(a.mu_final, b.mu_final)

    def test_wide_topology_batch(self):
        # Wide labels (fattree2x6: 127 PEs, 2-word labels) cross the
        # process boundary intact.
        graphs = [gen.barabasi_albert(260, 3, seed=s) for s in (0, 1)]
        pipe = Pipeline(
            "fattree2x6", PipelineConfig(timer=TimerConfig(n_hierarchies=1))
        )
        serial = pipe.run_batch(graphs, seed=4)
        parallel = Pipeline(
            "fattree2x6", PipelineConfig(timer=TimerConfig(n_hierarchies=1))
        ).run_batch(graphs, seed=4, jobs=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.mu_final, b.mu_final)
            assert a.metrics == b.metrics


class TestCustomRegistryAcrossWorkers:
    def test_custom_registry_survives_pickling(self):
        # A pipeline bound to a non-default registry must resolve its
        # stages identically in workers, not fall back to REGISTRY.
        from repro.api.registry import PARTITION, Registry
        from repro.api.stages import KwayPartition
        from repro.partitioning.partition import Partition

        reg = Registry()
        for kind, name, value in [
            (PARTITION, "mypart", KwayPartition(name="mypart")),
        ]:
            reg.register(kind, name, value)
        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(
                partition="mypart",
                initial_mapping="none",
                enhance="none",
            ),
            mapping_stage=lambda part, gp, *, seed: part.assignment,
            registry=reg,
        )
        # the lambda mapping stage is unpicklable -> loud failure, not a
        # silent wrong-registry rebuild
        with pytest.raises((pickle.PicklingError, AttributeError)):
            pickle.dumps(pipe)
        pipe2 = Pipeline(
            "grid4x4",
            PipelineConfig(partition="mypart", initial_mapping="none",
                           enhance="none"),
            mapping_stage=_assignment_mapping,
            registry=reg,
        )
        clone = pickle.loads(pickle.dumps(pipe2))
        ga = _graphs(1)[0]
        assert np.array_equal(
            pipe2.run(ga, seed=3).mu_final, clone.run(ga, seed=3).mu_final
        )


def _assignment_mapping(part, gp, *, seed):
    return part.assignment


class TestHookCachesWarmed:
    def test_hooks_warm_both_caches_before_fork(self, monkeypatch):
        # With verify hooks configured, labeling AND distances must be
        # computed once in the parent, not once per worker.
        pipe = Pipeline(
            "grid4x4",
            PipelineConfig(
                enhance="none",
                post_verify=("labeling-isometric",),
                timer=TimerConfig(n_hierarchies=1),
            ),
        )
        out = pipe.run_batch(_graphs(2), seed=1, jobs=2)
        assert len(out) == 2
        assert pipe.topology._labeling is not None
        assert pipe.topology._distances is not None
