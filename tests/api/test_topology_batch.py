"""Topology sessions and run_batch cache amortization."""

import numpy as np
import pytest

import repro.api.topology as topo_mod
from repro.api.pipeline import Pipeline, PipelineConfig
from repro.api.topology import Topology
from repro.core.config import TimerConfig
from repro.errors import ConfigurationError
from repro.graphs import generators as gen


class TestTopologySessions:
    def test_from_name_shares_one_session(self):
        a = Topology.from_name("grid4x4")
        b = Topology.from_name("grid4x4")
        assert a is b
        assert a.n == 16

    def test_from_graph_and_spec(self):
        g = gen.torus(4, 4)
        t = Topology.from_graph(g)
        assert Topology.from_spec(t) is t
        assert Topology.from_spec(g).graph is g
        assert Topology.from_spec("grid4x4") is Topology.from_name("grid4x4")

    def test_from_file(self, tmp_path):
        from repro.graphs.io import write_metis

        path = tmp_path / "gp.graph"
        write_metis(gen.grid(3, 4), path)
        t = Topology.from_spec(str(path))
        assert t.n == 12 and t.name == "gp"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            Topology.from_name("klein-bottle")

    def test_reregistration_invalidates_session(self):
        from repro.api.registry import TOPOLOGY, register_topology
        from repro.api.registry import REGISTRY

        register_topology("_test_chip", lambda: gen.grid(2, 2))
        try:
            assert Topology.from_name("_test_chip").n == 4
            register_topology("_test_chip", lambda: gen.grid(4, 4), overwrite=True)
            assert Topology.from_name("_test_chip").n == 16
        finally:
            REGISTRY.unregister(TOPOLOGY, "_test_chip")

    def test_labeling_lazy_and_counted(self):
        t = Topology.from_graph(gen.grid(4, 4))
        assert t.labelings_computed == 0
        lab = t.labeling
        assert t.labelings_computed == 1
        assert t.labeling is lab  # cached
        assert t.labelings_computed == 1

    def test_supplied_labeling_never_recomputed(self):
        from repro.partialcube.djokovic import partial_cube_labeling

        g = gen.grid(4, 4)
        pc = partial_cube_labeling(g)
        t = Topology.from_graph(g, labeling=pc)
        assert t.labeling is pc
        assert t.labelings_computed == 0

    def test_distances_cached(self):
        t = Topology.from_graph(gen.grid(4, 4))
        d = t.distances
        assert d[0, 15] == 6  # manhattan corner-to-corner
        assert t.distances is d


class TestRunBatch:
    def test_labeling_computed_exactly_once_across_batch(self, monkeypatch):
        """The acceptance assertion: >= 3 graphs, one labeling computation."""
        calls = {"n": 0}
        real = topo_mod.partial_cube_labeling

        def counting(g, *args, **kwargs):
            calls["n"] += 1
            return real(g, *args, **kwargs)

        monkeypatch.setattr(topo_mod, "partial_cube_labeling", counting)
        pipe = Pipeline(
            Topology.from_graph(gen.grid(4, 4), name="grid4x4-batch"),
            PipelineConfig(timer=TimerConfig(n_hierarchies=2)),
        )
        graphs = [gen.barabasi_albert(150 + 10 * i, 3, seed=i) for i in range(3)]
        results = pipe.run_batch(graphs, seed=77)
        assert len(results) == 3
        assert calls["n"] == 1
        assert pipe.topology.labelings_computed == 1
        for res in results:
            assert res.coco_after <= res.coco_before

    def test_batch_seeds_are_position_stable(self):
        """Per-graph results are stable under truncating/extending the batch."""
        pipe = Pipeline(
            Topology.from_graph(gen.grid(4, 4)),
            PipelineConfig(timer=TimerConfig(n_hierarchies=2)),
        )
        graphs = [gen.barabasi_albert(140 + 10 * i, 3, seed=10 + i) for i in range(3)]
        full = pipe.run_batch(graphs, seed=5)
        prefix = pipe.run_batch(graphs[:2], seed=5)
        for a, b in zip(prefix, full):
            assert np.array_equal(a.mu_final, b.mu_final)

    def test_explicit_seeds(self):
        pipe = Pipeline(
            Topology.from_graph(gen.grid(4, 4)),
            PipelineConfig(enhance="none"),
        )
        g = gen.barabasi_albert(120, 3, seed=1)
        a, b = pipe.run_batch([g, g], seeds=[3, 3])
        assert np.array_equal(a.mu_final, b.mu_final)
        with pytest.raises(ConfigurationError):
            pipe.run_batch([g], seeds=[1, 2])
