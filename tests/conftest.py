"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.builder import from_edges


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def triangle():
    """K3 with distinct weights."""
    return from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)], name="triangle")


@pytest.fixture
def small_grid():
    return gen.grid(4, 4)


@pytest.fixture
def small_torus():
    return gen.torus(4, 4)


@pytest.fixture
def small_hypercube():
    return gen.hypercube(4)


@pytest.fixture
def ba_graph():
    return gen.barabasi_albert(300, 3, seed=7)


@pytest.fixture
def figure3_gp():
    """The paper's Figure 3 processor graph: a 6-cycle.

    Figure 3 shows a hexagonal Gp with two convex cuts drawn; C6 is the
    canonical 2-dimensional partial cube with 3 Djokovic classes, we use
    it as the running example.
    """
    return gen.cycle(6)
