"""Tests for hierarchy reassembly (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.assemble import assemble
from repro.utils.segments import group_ranks
from repro.core.contraction import contract_level, make_finest_level
from repro.core.swaps import swap_pass
from repro.graphs import generators as gen


def _build_levels(graph, labels, dim, swap_signs=None, sweeps=1):
    """Mimic the enhancer's hierarchy loop."""
    levels = [make_finest_level(graph.edge_arrays(), np.asarray(labels, np.int64).copy())]
    for i in range(2, dim):
        if swap_signs is not None:
            swap_pass(levels[-1], swap_signs[i - 2], sweeps=sweeps)
        levels.append(contract_level(levels[-1]))
    return levels


class TestRankWithinGroups:
    def test_basic(self):
        gids = np.asarray([0, 1, 0, 1, 0])
        assert group_ranks(gids).tolist() == [0, 0, 1, 1, 2]

    def test_empty(self):
        assert group_ranks(np.asarray([], dtype=np.int64)).size == 0


class TestIdentityProperty:
    """Without swaps, assemble must reproduce the input labeling."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_swaps_identity(self, ba_graph, seed):
        rng = np.random.default_rng(seed)
        dim = 11
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        levels = _build_levels(ba_graph, labels, dim, swap_signs=None)
        out = assemble(levels, dim)
        assert np.array_equal(out, labels)

    def test_level1_swaps_only_pass_through(self, ba_graph):
        """With only level-1 swaps, assemble returns the swapped labels."""
        rng = np.random.default_rng(3)
        dim = 11
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        finest = make_finest_level(ba_graph.edge_arrays(), labels.copy())
        swap_pass(finest, sign=1)
        snapshot = finest.labels.copy()
        levels = [finest]
        for _ in range(2, dim):
            levels.append(contract_level(levels[-1]))
        out = assemble(levels, dim)
        assert np.array_equal(out, snapshot)


class TestBijectivity:
    @pytest.mark.parametrize("seed", range(5))
    def test_bijection_after_arbitrary_swaps(self, ba_graph, seed):
        rng = np.random.default_rng(seed)
        dim = 12
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        signs = rng.choice([-1, 1], size=dim)
        levels = _build_levels(ba_graph, labels, dim, swap_signs=signs, sweeps=2)
        out = assemble(levels, dim)
        assert np.array_equal(np.sort(out), np.sort(labels))

    def test_bijection_with_adversarial_coarse_relabeling(self, ba_graph):
        """Shuffle coarse labels arbitrarily (stronger than real swaps)."""
        rng = np.random.default_rng(9)
        dim = 10
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        levels = _build_levels(ba_graph, labels, dim)
        for lvl in levels[1:]:
            rng.shuffle(lvl.labels)  # destroys prefix consistency entirely
        out = assemble(levels, dim)
        assert np.array_equal(np.sort(out), np.sort(labels))

    def test_small_dims(self):
        g = gen.cycle(4)
        labels = np.asarray([0, 1, 2, 3], dtype=np.int64)
        levels = _build_levels(g, labels, 2)
        out = assemble(levels, 2)
        assert np.array_equal(np.sort(out), np.sort(labels))

    def test_non_contiguous_labelset(self, ba_graph):
        """Label sets with holes (the real case: labels live in a sparse
        subset of {0,1}^dim) still assemble to a bijection."""
        rng = np.random.default_rng(11)
        dim = 14
        labels = rng.choice(1 << dim, size=200, replace=False).astype(np.int64)
        g = gen.barabasi_albert(200, 3, seed=1)
        levels = _build_levels(g, labels, dim, swap_signs=rng.choice([-1, 1], dim))
        out = assemble(levels, dim)
        assert np.array_equal(np.sort(out), np.sort(labels))
