"""Backend equivalence: every kernel backend is byte-identical to numpy.

The ``kernel_backend`` registry contract (``repro.core.backend``) is
*byte identity*, not approximate agreement: for integer-valued edge
weights, every registered backend must produce exactly the numpy
reference's swap decisions, gains, distance matrices, sort orders and
labelings.  The suite parametrizes over ``available_backends()`` -- on
a plain numpy host that is just the reference checking itself, while
the CI numba leg (where numba imports) runs the real serial and
parallel compiled tiers through the identical assertions.

Every test computes once under ``use_backend("numpy")`` and once under
the candidate backend and compares with ``array_equal`` / ``==`` --
never ``allclose``.
"""

import numpy as np
import pytest

from repro.core.backend import available_backends, current_backend, use_backend
from repro.core.contraction import contract_level, make_finest_level
from repro.core.kernels import batch_swap_pass, level_csr, vertex_lsb_sums
from repro.core.swaps import kl_swap_pass
from repro.graphs import generators as gen
from repro.graphs.algorithms import all_pairs_distances
from repro.graphs.builder import from_edges
from repro.partialcube.djokovic import djokovic_classes, partial_cube_labeling
from repro.utils.bitops import (
    argsort_labels,
    pairwise_hamming,
    popcount_labels,
    widen_labels,
)

BACKENDS = available_backends()


def _random_level(g, rng, dim=9, wide_words=None):
    labels = rng.choice(1 << dim, size=g.n, replace=False).astype(np.int64)
    if wide_words is not None:
        labels = widen_labels(labels, wide_words)
    us, vs, ws = g.edge_arrays()
    return make_finest_level((us, vs, ws), labels)


def _fresh(level):
    return make_finest_level((level.us, level.vs, level.ws), level.labels.copy())


@pytest.fixture(params=BACKENDS)
def backend(request):
    with use_backend(request.param):
        yield request.param


class TestSelection:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_use_backend_activates(self, name):
        with use_backend(name):
            assert current_backend().name == name


class TestSwapPass:
    @pytest.mark.parametrize("seed", range(6))
    def test_narrow_byte_identical(self, backend, seed):
        rng = np.random.default_rng(seed)
        g = gen.barabasi_albert(100 + 15 * seed, 3, seed=seed)
        base = _random_level(g, rng)
        sign = 1 if seed % 2 == 0 else -1
        la, lb = _fresh(base), _fresh(base)
        with use_backend("numpy"):
            ra = batch_swap_pass(la, sign, sweeps=2)
        rb = batch_swap_pass(lb, sign, sweeps=2)
        assert ra == rb
        assert np.array_equal(la.labels, lb.labels)

    @pytest.mark.parametrize("seed", range(4))
    def test_wide_byte_identical(self, backend, seed):
        rng = np.random.default_rng(100 + seed)
        g = gen.barabasi_albert(90 + 10 * seed, 3, seed=seed)
        base = _random_level(g, rng, wide_words=3)
        la, lb = _fresh(base), _fresh(base)
        with use_backend("numpy"):
            ra = batch_swap_pass(la, -1, sweeps=2)
        rb = batch_swap_pass(lb, -1, sweeps=2)
        assert ra == rb
        assert np.array_equal(la.labels, lb.labels)

    def test_down_a_contraction_chain(self, backend):
        g = gen.barabasi_albert(300, 4, seed=3)
        rng = np.random.default_rng(3)
        lvl = _random_level(g, rng, dim=10)
        while lvl.n > 2:
            la, lb = _fresh(lvl), _fresh(lvl)
            with use_backend("numpy"):
                ra = batch_swap_pass(la, -1, sweeps=2)
            rb = batch_swap_pass(lb, -1, sweeps=2)
            assert ra == rb
            assert np.array_equal(la.labels, lb.labels)
            lvl = contract_level(lvl)

    @pytest.mark.parametrize("seed", range(4))
    def test_kl_swap_pass_byte_identical(self, backend, seed):
        rng = np.random.default_rng(200 + seed)
        g = gen.barabasi_albert(110 + 10 * seed, 3, seed=seed)
        base = _random_level(g, rng)
        la, lb = _fresh(base), _fresh(base)
        with use_backend("numpy"):
            ra = kl_swap_pass(la, 1, sweeps=2)
        rb = kl_swap_pass(lb, 1, sweeps=2)
        assert ra == rb
        assert np.array_equal(la.labels, lb.labels)

    def test_vertex_lsb_sums(self, backend):
        rng = np.random.default_rng(7)
        g = gen.barabasi_albert(150, 3, seed=7)
        lvl = _random_level(g, rng)
        indptr, indices, weights = level_csr(lvl)
        with use_backend("numpy"):
            ref = vertex_lsb_sums(lvl.labels, indptr, indices, weights)
        got = vertex_lsb_sums(lvl.labels, indptr, indices, weights)
        assert np.array_equal(ref, got)


class TestGraphKernels:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: gen.grid(7, 9),
            lambda: gen.hypercube(6),
            lambda: gen.torus(4, 6),
            lambda: gen.random_tree(130, seed=2),
            lambda: gen.barabasi_albert(128, 3, seed=5),
            # > 64 vertices forces multiple bitset words per shard
            lambda: gen.path(130),
        ],
    )
    def test_all_pairs_distances(self, backend, maker):
        g = maker()
        with use_backend("numpy"):
            ref = all_pairs_distances(g)
        got = all_pairs_distances(g)
        assert got.dtype == ref.dtype
        assert np.array_equal(ref, got)

    def test_all_pairs_disconnected(self, backend):
        # two components: cross-component entries must all stay -1
        g = from_edges(7, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)])
        with use_backend("numpy"):
            ref = all_pairs_distances(g)
        got = all_pairs_distances(g)
        assert np.array_equal(ref, got)
        assert (got[:3, 3:] == -1).all() and (got[3:, :3] == -1).all()

    def test_all_pairs_trivial_sizes(self, backend):
        for edges, n in [([], 0), ([], 1), ([(0, 1)], 2)]:
            g = from_edges(n, edges)
            with use_backend("numpy"):
                ref = all_pairs_distances(g)
            assert np.array_equal(ref, all_pairs_distances(g))


class TestLabelKernels:
    @pytest.mark.parametrize("seed", range(4))
    def test_argsort_narrow_with_duplicates(self, backend, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 50, size=1000).astype(np.int64)
        with use_backend("numpy"):
            ref = argsort_labels(labels)
        got = argsort_labels(labels)
        # stability makes the permutation unique, so exact equality
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("width,varying", [(2, 2), (4, 2), (4, 4), (6, 1)])
    def test_argsort_wide(self, backend, width, varying):
        rng = np.random.default_rng(width * 10 + varying)
        n = 800
        labels = np.zeros((n, width), dtype=np.uint64)
        cols = rng.choice(width, size=varying, replace=False)
        labels[:, cols] = rng.integers(0, 8, size=(n, varying)).astype(np.uint64)
        with use_backend("numpy"):
            ref = argsort_labels(labels)
        got = argsort_labels(labels)
        assert np.array_equal(ref, got)

    def test_popcount_narrow_and_wide(self, backend):
        rng = np.random.default_rng(11)
        narrow = rng.integers(0, 1 << 62, size=500).astype(np.int64)
        wide = rng.integers(0, 1 << 62, size=(300, 4)).astype(np.uint64)
        with use_backend("numpy"):
            ref_n = popcount_labels(narrow)
            ref_w = popcount_labels(wide)
        assert np.array_equal(ref_n, popcount_labels(narrow))
        assert np.array_equal(ref_w, popcount_labels(wide))

    def test_pairwise_hamming_narrow_and_wide(self, backend):
        rng = np.random.default_rng(13)
        narrow = rng.integers(0, 1 << 62, size=300).astype(np.int64)
        wide = rng.integers(0, 1 << 62, size=(300, 3)).astype(np.uint64)
        with use_backend("numpy"):
            ref_n = pairwise_hamming(narrow)
            ref_w = pairwise_hamming(wide)
        assert np.array_equal(ref_n, pairwise_hamming(narrow))
        assert np.array_equal(ref_w, pairwise_hamming(wide))

    def test_pairwise_hamming_crosses_blocks(self, backend):
        # n > block: the row-blocked wide path must tile correctly
        rng = np.random.default_rng(17)
        wide = rng.integers(0, 1 << 62, size=(600, 2)).astype(np.uint64)
        with use_backend("numpy"):
            ref = pairwise_hamming(wide, block=256)
        assert np.array_equal(ref, pairwise_hamming(wide, block=256))


class TestLabeling:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: gen.grid(5, 5),
            lambda: gen.hypercube(5),
            lambda: gen.random_tree(90, seed=8),  # wide: 89 classes
            lambda: gen.fat_tree(2, 6),
        ],
    )
    def test_partial_cube_labeling_byte_identical(self, backend, maker):
        g = maker()
        with use_backend("numpy"):
            ref = partial_cube_labeling(g)
        got = partial_cube_labeling(g)
        assert ref.dim == got.dim
        assert ref.labels.dtype == got.labels.dtype
        assert np.array_equal(ref.labels, got.labels)
        assert all(
            np.array_equal(a, b) for a, b in zip(ref.cut_edges, got.cut_edges)
        )

    def test_djokovic_classes_byte_identical(self, backend):
        g = gen.grid(6, 6)
        dist = all_pairs_distances(g)
        with use_backend("numpy"):
            ec_ref, cls_ref = djokovic_classes(g, dist)
        ec, cls = djokovic_classes(g, dist)
        assert np.array_equal(ec_ref, ec)
        assert cls_ref == cls
