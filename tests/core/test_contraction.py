"""Tests for label-driven contraction (paper section 6, Figure 4)."""

import numpy as np

from repro.core.contraction import (
    build_hierarchy,
    contract_level,
    make_finest_level,
)
from repro.graphs import generators as gen
from repro.graphs.builder import from_edges


def _level_of(graph, labels):
    return make_finest_level(graph.edge_arrays(), np.asarray(labels, dtype=np.int64))


class TestContractLevel:
    def test_siblings_merge(self):
        g = from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)])
        lvl = _level_of(g, [0b00, 0b01, 0b10, 0b11])
        coarse = contract_level(lvl)
        assert coarse.n == 2
        assert coarse.labels.tolist() == [0b0, 0b1]
        # only edge (1,2) crosses the prefix groups
        assert coarse.ws.tolist() == [2.0]

    def test_parent_pointers(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        lvl = _level_of(g, [0b00, 0b01, 0b10, 0b11])
        coarse = contract_level(lvl)
        assert lvl.parent.tolist() == [0, 0, 1, 1]
        assert coarse.parent is None

    def test_parallel_edges_merge(self):
        g = from_edges(4, [(0, 2, 1.5), (1, 3, 2.5)])
        lvl = _level_of(g, [0b00, 0b01, 0b10, 0b11])
        coarse = contract_level(lvl)
        assert coarse.ws.tolist() == [4.0]

    def test_unpaired_labels_survive(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        lvl = _level_of(g, [0b00, 0b10, 0b11])
        coarse = contract_level(lvl)
        assert coarse.n == 2  # prefix 0 (single child) and prefix 1 (pair)

    def test_cross_weight_preserved(self, ba_graph):
        rng = np.random.default_rng(1)
        labels = rng.permutation(ba_graph.n).astype(np.int64)
        lvl = make_finest_level(ba_graph.edge_arrays(), labels)
        coarse = contract_level(lvl)
        us, vs, ws = ba_graph.edge_arrays()
        cross = ws[(labels[us] >> 1) != (labels[vs] >> 1)].sum()
        assert np.isclose(coarse.ws.sum(), cross)


class TestBuildHierarchy:
    def test_level_count(self, ba_graph):
        rng = np.random.default_rng(2)
        dim = 10
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        levels = build_hierarchy(ba_graph.edge_arrays(), labels, dim)
        assert len(levels) == dim - 1

    def test_sizes_nonincreasing(self, ba_graph):
        rng = np.random.default_rng(3)
        dim = 10
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        levels = build_hierarchy(ba_graph.edge_arrays(), labels, dim)
        sizes = [lvl.n for lvl in levels]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_labels_unique_every_level(self, ba_graph):
        rng = np.random.default_rng(4)
        dim = 10
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        for lvl in build_hierarchy(ba_graph.edge_arrays(), labels, dim):
            assert len(set(lvl.labels.tolist())) == lvl.n

    def test_coarsest_width_two(self):
        """Paper: the loop stops at G^{dim-1}, whose labels have 2 digits."""
        g = gen.cycle(8)
        labels = np.arange(8, dtype=np.int64)
        levels = build_hierarchy(g.edge_arrays(), labels, 3)
        assert len(levels) == 2
        assert levels[-1].labels.max() < 4


class TestFigure4Scenario:
    def test_figure4_contraction(self):
        """Figure 4: 3-digit labels contract into a 4-vertex level-2 graph.

        We reproduce the structure: level-1 labels 000..111 on 8 vertices;
        after contraction the level-2 graph has vertices 00,01,10,11.
        """
        edges = [
            (0, 1, 1.0), (0, 2, 2.0), (1, 3, 2.0), (2, 3, 1.0),
            (4, 5, 1.0), (4, 6, 2.0), (5, 7, 2.0), (6, 7, 1.0),
            (2, 4, 2.0), (3, 5, 2.0),
        ]
        g = from_edges(8, edges)
        lvl = _level_of(g, list(range(8)))
        coarse = contract_level(lvl)
        assert coarse.n == 4
        assert sorted(coarse.labels.tolist()) == [0, 1, 2, 3]
        # cross-group weights aggregate
        w = {tuple(sorted((int(a), int(b)))): float(wt)
             for a, b, wt in zip(coarse.us, coarse.vs, coarse.ws)}
        assert w[(0, 1)] == 2.0 + 2.0  # edges (0,2),(1,3)
        assert w[(1, 2)] == 2.0 + 2.0  # edges (2,4),(3,5)
