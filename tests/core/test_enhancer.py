"""Tests for Algorithm 1 (timer_enhance)."""

import numpy as np
import pytest

from repro.core.config import TimerConfig
from repro.core.enhancer import timer_enhance
from repro.errors import ConfigurationError
from repro.graphs import generators as gen
from repro.mapping.objective import coco
from repro.partialcube.djokovic import partial_cube_labeling
from repro.partitioning.kway import partition_kway


@pytest.fixture(scope="module")
def setup():
    ga = gen.barabasi_albert(400, 3, seed=2)
    gp = gen.grid(4, 4)
    pc = partial_cube_labeling(gp)
    part = partition_kway(ga, gp.n, seed=2)
    mu = part.assignment.copy()
    return ga, gp, pc, mu


class TestEnhance:
    def test_coco_plus_never_increases(self, setup):
        ga, gp, pc, mu = setup
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=6, seed=1)
        diffs = np.diff(np.asarray(res.history))
        assert (diffs <= 1e-9).all()

    def test_reported_coco_cross_checks(self, setup):
        ga, gp, pc, mu = setup
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=4, seed=2)
        assert np.isclose(res.coco_before, coco(ga, gp, mu))
        assert np.isclose(res.coco_after, coco(ga, gp, res.mu_after))

    def test_balance_preserved_exactly(self, setup):
        ga, gp, pc, mu = setup
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=6, seed=3)
        before = np.bincount(mu, minlength=gp.n)
        after = np.bincount(res.mu_after, minlength=gp.n)
        assert np.array_equal(before, after)

    def test_labels_stay_bijective(self, setup):
        ga, gp, pc, mu = setup
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=6, seed=4)
        res.labeling.check_bijective()

    def test_deterministic_under_seed(self, setup):
        ga, gp, pc, mu = setup
        a = timer_enhance(ga, gp, pc, mu, n_hierarchies=3, seed=7)
        b = timer_enhance(ga, gp, pc, mu, n_hierarchies=3, seed=7)
        assert np.array_equal(a.mu_after, b.mu_after)
        assert a.coco_after == b.coco_after

    def test_zero_hierarchies_is_identity(self, setup):
        ga, gp, pc, mu = setup
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=0, seed=5)
        assert np.array_equal(res.mu_after, mu)
        assert res.coco_after == res.coco_before

    def test_improves_on_average(self, setup):
        ga, gp, pc, mu = setup
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=10, seed=6)
        assert res.coco_after <= res.coco_before

    def test_derives_pc_when_missing(self, setup):
        ga, gp, _, mu = setup
        res = timer_enhance(ga, gp, None, mu, n_hierarchies=2, seed=8)
        assert res.labeling.dim_p == 6

    def test_requires_gp_or_pc(self, setup):
        ga, _, _, mu = setup
        with pytest.raises(ValueError):
            timer_enhance(ga, None, None, mu, n_hierarchies=1)

    def test_improvement_property(self, setup):
        ga, gp, pc, mu = setup
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=8, seed=9)
        assert res.coco_improvement == pytest.approx(
            1 - res.coco_after / res.coco_before
        )

    def test_swap_coarsest_extension_runs(self, setup):
        ga, gp, pc, mu = setup
        cfg = TimerConfig(n_hierarchies=3, swap_coarsest=True)
        res = timer_enhance(ga, gp, pc, mu, seed=10, config=cfg)
        res.labeling.check_bijective()

    def test_sweeps_config(self, setup):
        ga, gp, pc, mu = setup
        cfg = TimerConfig(n_hierarchies=3, sweeps_per_level=3)
        res = timer_enhance(ga, gp, pc, mu, seed=11, config=cfg)
        assert res.coco_after <= res.coco_before * 1.05

    def test_history_length(self, setup):
        ga, gp, pc, mu = setup
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=5, seed=12)
        assert len(res.history) == 5
        assert 0 <= res.hierarchies_accepted <= 5

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            TimerConfig(n_hierarchies=-1)
        with pytest.raises(ConfigurationError):
            TimerConfig(sweeps_per_level=0)


class TestDegenerateInputs:
    def test_singleton_blocks(self):
        """dim_e == 0: every vertex its own PE."""
        gp = gen.grid(2, 4)
        pc = partial_cube_labeling(gp)
        ga = gen.cycle(8)
        mu = np.arange(8, dtype=np.int64)
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=5, seed=1)
        assert res.coco_after <= res.coco_before
        assert sorted(res.mu_after.tolist()) == list(range(8))

    def test_single_pe_path(self):
        """All vertices on one PE of a 2-PE system: Coco is 0 throughout."""
        gp = gen.path(2)
        pc = partial_cube_labeling(gp)
        ga = gen.cycle(6)
        mu = np.zeros(6, dtype=np.int64)
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=3, seed=2)
        assert res.coco_before == res.coco_after == 0.0

    def test_weighted_edges_respected(self):
        gp = gen.path(4)
        pc = partial_cube_labeling(gp)
        ga_edges = [(0, 1, 100.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]
        from repro.graphs.builder import from_edges

        ga = from_edges(4, ga_edges)
        # worst possible: heavy pair at the two ends of the path
        mu = np.asarray([0, 3, 1, 2])
        res = timer_enhance(ga, gp, pc, mu, n_hierarchies=20, seed=3)
        # the heavy edge must end up adjacent or colocated-ish
        assert res.coco_after < res.coco_before
