"""Equivalence and property tests for the vectorized swap kernels.

The batch kernels must be *indistinguishable* from the scalar reference:
per-pair gains match ``pair_delta`` exactly on integer weights (and to
float tolerance on random weights), and the full batch pass produces
byte-identical final labelings, swap counts and total deltas versus the
sequential greedy sweep.  Tests are hypothesis-style: randomized over many
seeded instances so the conflict-resolution fixpoint is exercised on
diverse conflict structures (hubs, chains, isolated pairs).
"""

import numpy as np
import pytest

from repro.core.contraction import contract_level, make_finest_level
from repro.core.kernels import (
    available_backends,
    batch_pair_deltas,
    batch_swap_pass,
    get_backend,
    level_csr,
    pair_delta,
    set_backend,
    sibling_pair_weights,
    sibling_pairs,
)
from repro.core.swaps import swap_pass, swap_pass_reference
from repro.graphs import generators as gen
from repro.graphs.builder import from_edges


def _random_level(g, rng, dim=9, weights=None):
    labels = rng.choice(1 << dim, size=g.n, replace=False).astype(np.int64)
    us, vs, ws = g.edge_arrays()
    if weights is not None:
        ws = weights
    return make_finest_level((us, vs, ws), labels)


class TestBatchPairDeltas:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("sign", [1, -1])
    def test_matches_scalar_on_random_levels(self, seed, sign):
        rng = np.random.default_rng(seed)
        g = gen.barabasi_albert(80 + 10 * seed, 3, seed=seed)
        lvl = _random_level(g, rng)
        csr = level_csr(lvl)
        pairs = sibling_pairs(lvl.labels)
        pair_w = sibling_pair_weights(lvl, pairs)
        got = batch_pair_deltas(lvl.labels, pairs, csr, sign, pair_w)
        expect = [
            pair_delta(lvl.labels, *csr, int(u), int(v), sign) for u, v in pairs
        ]
        assert np.array_equal(got, np.asarray(expect))

    def test_matches_scalar_with_float_weights(self):
        rng = np.random.default_rng(99)
        g = gen.barabasi_albert(150, 3, seed=4)
        ws = rng.uniform(0.1, 5.0, size=g.m)
        lvl = _random_level(g, rng, weights=ws)
        csr = level_csr(lvl)
        pairs = sibling_pairs(lvl.labels)
        pair_w = sibling_pair_weights(lvl, pairs)
        got = batch_pair_deltas(lvl.labels, pairs, csr, 1, pair_w)
        expect = [pair_delta(lvl.labels, *csr, int(u), int(v), 1) for u, v in pairs]
        assert np.allclose(got, expect, atol=1e-9)

    def test_pair_weight_extraction(self):
        # path 0-1 where 0 and 1 are siblings: internal edge weight 7
        g = from_edges(2, [(0, 1, 7.0)])
        lvl = make_finest_level(g.edge_arrays(), np.asarray([2, 3], dtype=np.int64))
        pairs = sibling_pairs(lvl.labels)
        assert pairs.shape == (1, 2)
        assert sibling_pair_weights(lvl, pairs).tolist() == [7.0]
        # the internal edge must not affect the gain: swapping changes nothing
        deltas = batch_pair_deltas(lvl.labels, pairs, level_csr(lvl), 1,
                                   sibling_pair_weights(lvl, pairs))
        assert deltas.tolist() == [0.0]


class TestBatchSwapPassEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_byte_identical_on_random_ba(self, seed):
        rng = np.random.default_rng(seed)
        g = gen.barabasi_albert(120 + 20 * seed, 3, seed=seed)
        sign = 1 if seed % 2 == 0 else -1
        sweeps = 1 + seed % 3
        base = _random_level(g, rng)
        la = make_finest_level((base.us, base.vs, base.ws), base.labels.copy())
        lb = make_finest_level((base.us, base.vs, base.ws), base.labels.copy())
        ra = swap_pass_reference(la, sign, sweeps=sweeps)
        rb = batch_swap_pass(lb, sign, sweeps=sweeps)
        assert ra == rb
        assert np.array_equal(la.labels, lb.labels)

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: gen.grid(8, 8),
            lambda: gen.hypercube(6),
            lambda: gen.random_tree(100, seed=5),
            lambda: gen.cycle(64),
        ],
    )
    def test_byte_identical_on_structured_graphs(self, maker):
        g = maker()
        rng = np.random.default_rng(7)
        base = _random_level(g, rng, dim=8)
        la = make_finest_level((base.us, base.vs, base.ws), base.labels.copy())
        lb = make_finest_level((base.us, base.vs, base.ws), base.labels.copy())
        for sign in (1, -1):
            ra = swap_pass_reference(la, sign, sweeps=2)
            rb = batch_swap_pass(lb, sign, sweeps=2)
            assert ra == rb
            assert np.array_equal(la.labels, lb.labels)

    def test_byte_identical_down_a_contraction_chain(self):
        g = gen.barabasi_albert(400, 4, seed=11)
        rng = np.random.default_rng(12)
        lvl = _random_level(g, rng, dim=10)
        while lvl.n > 2:
            la = make_finest_level((lvl.us, lvl.vs, lvl.ws), lvl.labels.copy())
            lb = make_finest_level((lvl.us, lvl.vs, lvl.ws), lvl.labels.copy())
            ra = swap_pass_reference(la, -1, sweeps=2)
            rb = batch_swap_pass(lb, -1, sweeps=2)
            assert ra == rb
            assert np.array_equal(la.labels, lb.labels)
            lvl = contract_level(lvl)

    def test_label_multiset_preserved(self):
        g = gen.barabasi_albert(300, 3, seed=3)
        rng = np.random.default_rng(3)
        lvl = _random_level(g, rng)
        before = np.sort(lvl.labels.copy())
        batch_swap_pass(lvl, 1, sweeps=4)
        assert np.array_equal(np.sort(lvl.labels), before)

    def test_empty_and_trivial_levels(self):
        g = from_edges(4, [])
        lvl = make_finest_level(g.edge_arrays(), np.arange(4, dtype=np.int64))
        assert batch_swap_pass(lvl, 1) == (0, 0.0)
        one = make_finest_level(
            from_edges(1, []).edge_arrays(), np.zeros(1, dtype=np.int64)
        )
        assert batch_swap_pass(one, -1) == (0, 0.0)

    def test_sign_validation(self):
        g = from_edges(3, [(0, 1, 1.0)])
        lvl = make_finest_level(g.edge_arrays(), np.arange(3, dtype=np.int64))
        with pytest.raises(ValueError):
            batch_swap_pass(lvl, 0)

    def test_swap_pass_is_the_batch_kernel(self):
        """core.swaps.swap_pass must route through the vectorized kernel."""
        g = gen.barabasi_albert(200, 3, seed=8)
        rng = np.random.default_rng(8)
        la = _random_level(g, rng)
        lb = make_finest_level((la.us, la.vs, la.ws), la.labels.copy())
        assert swap_pass(la, 1, sweeps=2) == batch_swap_pass(lb, 1, sweeps=2)
        assert np.array_equal(la.labels, lb.labels)


class TestLevelCsrCache:
    def test_built_once(self):
        g = gen.grid(5, 5)
        lvl = make_finest_level(g.edge_arrays(), np.arange(g.n, dtype=np.int64))
        first = level_csr(lvl)
        assert level_csr(lvl) is first
        assert lvl.csr is first

    def test_precomputed_csr_accepted(self):
        g = gen.barabasi_albert(100, 3, seed=2)
        rng = np.random.default_rng(2)
        la = _random_level(g, rng)
        lb = make_finest_level((la.us, la.vs, la.ws), la.labels.copy())
        csr = level_csr(lb)
        ra = batch_swap_pass(la, 1)
        rb = batch_swap_pass(lb, 1, csr=csr)
        assert ra == rb
        assert np.array_equal(la.labels, lb.labels)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestBackendSeam:
    # The REPRO_KERNEL_BACKEND tests exercise the *deprecated* env
    # fallback on purpose (tests/api/test_backend_api.py asserts the
    # warning itself); the modern chain lives in repro.core.backend.

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_set_backend_roundtrip(self):
        try:
            set_backend("numpy")
            assert get_backend() == "numpy"
        finally:
            set_backend(None)

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert get_backend() == "numpy"

    def test_numba_request_degrades_gracefully(self, monkeypatch):
        # Without numba installed this must fall back to numpy, not crash.
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        assert get_backend() in ("numba", "numpy")

    def test_rejects_unknown_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
        with pytest.raises(ValueError):
            get_backend()
        with pytest.raises(ValueError):
            set_backend("cuda")
