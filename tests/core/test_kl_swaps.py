"""Tests for the KL-style swap pass (future-work extension)."""

import numpy as np
import pytest

from repro.core.config import TimerConfig
from repro.core.contraction import contract_level, make_finest_level
from repro.core.enhancer import timer_enhance
from repro.core.objective import coco_plus_signed
from repro.core.swaps import kl_swap_pass, kl_swap_pass_reference, swap_pass
from repro.errors import ConfigurationError
from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.partialcube.djokovic import partial_cube_labeling
from repro.partitioning.kway import partition_kway


def _signed(graph, labels, sign, dim):
    signs = np.full(dim, -sign)
    signs[0] = sign
    return coco_plus_signed(graph, labels, signs)


class TestKlPass:
    def test_never_worse_than_start(self, ba_graph):
        rng = np.random.default_rng(1)
        dim = 10
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        for sign in (1, -1):
            lvl = make_finest_level(ba_graph.edge_arrays(), labels.copy())
            before = _signed(ba_graph, lvl.labels, sign, dim)
            n, delta = kl_swap_pass(lvl, sign=sign)
            after = _signed(ba_graph, lvl.labels, sign, dim)
            assert after <= before + 1e-9
            assert np.isclose(after - before, delta, atol=1e-9)

    def test_multiset_preserved(self, ba_graph):
        rng = np.random.default_rng(2)
        labels = rng.permutation(ba_graph.n).astype(np.int64)
        lvl = make_finest_level(ba_graph.edge_arrays(), labels.copy())
        kl_swap_pass(lvl, sign=1, sweeps=2)
        assert sorted(lvl.labels.tolist()) == sorted(labels.tolist())

    def test_at_least_as_good_as_greedy(self, ba_graph):
        """KL explores supersets of greedy's moves: final estimate <=."""
        rng = np.random.default_rng(3)
        dim = 10
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        greedy_lvl = make_finest_level(ba_graph.edge_arrays(), labels.copy())
        kl_lvl = make_finest_level(ba_graph.edge_arrays(), labels.copy())
        _, d_greedy = swap_pass(greedy_lvl, sign=1)
        _, d_kl = kl_swap_pass(kl_lvl, sign=1)
        assert d_kl <= d_greedy + 1e-9

    def test_escapes_local_plateau(self):
        """KL can chain a zero/negative-gain swap into a later gain.

        Construct a path of sibling pairs where the first swap alone has
        negative gain but enables a bigger one.
        """
        # vertices 0..3, labels 0,1,2,3: pairs (0,1) and (2,3)
        g = from_edges(4, [(1, 2, 10.0), (0, 2, 1.0), (0, 3, 12.0)])
        labels = [0, 1, 2, 3]
        lvl = make_finest_level(g.edge_arrays(), np.asarray(labels, np.int64))
        n, delta = kl_swap_pass(lvl, sign=1)
        assert delta <= 0.0
        assert sorted(lvl.labels.tolist()) == [0, 1, 2, 3]

    def test_sign_validated(self, triangle):
        lvl = make_finest_level(triangle.edge_arrays(), np.asarray([0, 1, 2]))
        with pytest.raises(ValueError):
            kl_swap_pass(lvl, sign=2)

    def test_empty(self):
        g = from_edges(3, [])
        lvl = make_finest_level(g.edge_arrays(), np.asarray([0, 1, 2]))
        assert kl_swap_pass(lvl, sign=1) == (0, 0.0)


class TestKlVectorizedEquivalence:
    """The vectorized gain maintenance must match the scalar reference.

    Byte-identical labelings, swap counts and kept deltas on
    integer-weight levels (the guarantee the batch greedy kernel already
    documents), across signs, sweeps and contraction depths.
    """

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("sign", [1, -1])
    def test_finest_level_byte_identical(self, seed, sign):
        rng = np.random.default_rng(seed)
        g = gen.barabasi_albert(90 + 12 * seed, 3, seed=seed)
        dim = 9
        labels = rng.choice(1 << dim, size=g.n, replace=False).astype(np.int64)
        ref = make_finest_level(g.edge_arrays(), labels.copy())
        vec = make_finest_level(g.edge_arrays(), labels.copy())
        n_ref, d_ref = kl_swap_pass_reference(ref, sign)
        n_vec, d_vec = kl_swap_pass(vec, sign)
        assert np.array_equal(ref.labels, vec.labels)
        assert n_ref == n_vec
        assert d_ref == d_vec

    @pytest.mark.parametrize("seed", range(4))
    def test_contracted_levels_byte_identical(self, seed):
        """Integer-weight contracted levels (merged parallel edges)."""
        rng = np.random.default_rng(100 + seed)
        g = gen.barabasi_albert(150, 3, seed=seed)
        labels = rng.choice(1 << 9, size=g.n, replace=False).astype(np.int64)
        lvl = make_finest_level(g.edge_arrays(), labels)
        for _depth in range(3):
            lvl = contract_level(lvl)
            ref = make_finest_level((lvl.us, lvl.vs, lvl.ws), lvl.labels.copy())
            vec = make_finest_level((lvl.us, lvl.vs, lvl.ws), lvl.labels.copy())
            out_ref = kl_swap_pass_reference(ref, 1, sweeps=2)
            out_vec = kl_swap_pass(vec, 1, sweeps=2)
            assert np.array_equal(ref.labels, vec.labels)
            assert out_ref == out_vec

    def test_plateau_chain_byte_identical(self):
        g = from_edges(4, [(1, 2, 10.0), (0, 2, 1.0), (0, 3, 12.0)])
        for sign in (1, -1):
            ref = make_finest_level(g.edge_arrays(), np.asarray([0, 1, 2, 3], np.int64))
            vec = make_finest_level(g.edge_arrays(), np.asarray([0, 1, 2, 3], np.int64))
            out_ref = kl_swap_pass_reference(ref, sign)
            out_vec = kl_swap_pass(vec, sign)
            assert np.array_equal(ref.labels, vec.labels)
            assert out_ref == out_vec


class TestKlInEnhancer:
    def test_end_to_end(self):
        ga = gen.barabasi_albert(300, 3, seed=4)
        gp = gen.grid(4, 4)
        pc = partial_cube_labeling(gp)
        part = partition_kway(ga, gp.n, seed=4)
        cfg = TimerConfig(n_hierarchies=4, swap_strategy="kl")
        res = timer_enhance(ga, gp, pc, part.assignment, seed=5, config=cfg)
        res.labeling.check_bijective()
        assert res.coco_after <= res.coco_before

    def test_invalid_strategy(self):
        with pytest.raises(ConfigurationError):
            TimerConfig(swap_strategy="annealing")
