"""Tests for application-vertex labels (paper section 4)."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.graphs import generators as gen
from repro.core.labels import (
    build_application_labeling,
    dim_extension,
)
from repro.partialcube.djokovic import partial_cube_labeling


@pytest.fixture
def setup():
    ga = gen.barabasi_albert(100, 2, seed=3)
    gp = gen.grid(4, 4)
    pc = partial_cube_labeling(gp)
    rng = np.random.default_rng(0)
    mu = rng.integers(0, gp.n, ga.n)
    return ga, gp, pc, mu


class TestDimExtension:
    def test_definition_4_1(self):
        # blocks of sizes 3, 8, 1 -> ceil(log2 8) = 3
        mu = np.asarray([0] * 3 + [1] * 8 + [2])
        assert dim_extension(mu, 3) == 3

    def test_singletons_zero(self):
        assert dim_extension(np.asarray([0, 1, 2]), 3) == 0

    def test_power_of_two_boundary(self):
        assert dim_extension(np.asarray([0] * 4), 1) == 2
        assert dim_extension(np.asarray([0] * 5), 1) == 3


class TestBuildLabeling:
    def test_labels_unique(self, setup):
        ga, gp, pc, mu = setup
        app = build_application_labeling(ga, pc, mu, seed=1)
        assert len(set(app.labels.tolist())) == ga.n

    def test_requirement_1_encodes_mu(self, setup):
        """Paper requirement 1: l_a encodes mu."""
        ga, gp, pc, mu = setup
        app = build_application_labeling(ga, pc, mu, seed=2)
        assert np.array_equal(app.mu(), mu)

    def test_requirement_2_distances(self, setup):
        """Paper requirement 2: prefix Hamming = Gp distance of mapped PEs."""
        from repro.graphs.algorithms import all_pairs_distances

        ga, gp, pc, mu = setup
        app = build_application_labeling(ga, pc, mu, seed=3)
        dist = all_pairs_distances(gp)
        lp = app.lp_part()
        for u in range(0, ga.n, 7):
            for v in range(0, ga.n, 11):
                ham = bin(int(lp[u]) ^ int(lp[v])).count("1")
                assert ham == dist[mu[u], mu[v]]

    def test_extension_within_block_bounds(self, setup):
        ga, gp, pc, mu = setup
        app = build_application_labeling(ga, pc, mu, seed=4)
        le = app.le_part()
        for pe in range(gp.n):
            members = np.nonzero(mu == pe)[0]
            if members.size:
                vals = sorted(le[members].tolist())
                assert vals == list(range(members.size))  # 0..size-1 exactly

    def test_shuffle_differs_by_seed(self, setup):
        ga, gp, pc, mu = setup
        a = build_application_labeling(ga, pc, mu, seed=5)
        b = build_application_labeling(ga, pc, mu, seed=6)
        assert not np.array_equal(a.labels, b.labels)
        # but lp parts agree (mapping unchanged)
        assert np.array_equal(a.lp_part(), b.lp_part())

    def test_dim_property(self, setup):
        ga, gp, pc, mu = setup
        app = build_application_labeling(ga, pc, mu, seed=7)
        assert app.dim == app.dim_p + app.dim_e
        assert app.dim_p == pc.dim

    def test_rejects_wrong_mu_range(self, setup):
        ga, gp, pc, _ = setup
        with pytest.raises(ValueError):
            build_application_labeling(ga, pc, np.full(ga.n, 99), seed=0)

    def test_width_overflow_detected(self):
        # Tree topology with dim 40 + large blocks would exceed 63 bits.
        gp = gen.star(40)  # dim 40
        pc = partial_cube_labeling(gp)
        # fake mu with one huge block via a tiny ga
        ga2 = gen.path(50)
        mu = np.zeros(50, dtype=np.int64)  # one block of 50 -> dim_e 6; 40+6 ok
        app = build_application_labeling(ga2, pc, mu, seed=0)
        assert app.dim == 46

    def test_check_bijective_raises_on_duplicates(self, setup):
        ga, gp, pc, mu = setup
        app = build_application_labeling(ga, pc, mu, seed=8)
        bad = app.with_labels(np.zeros(ga.n, dtype=np.int64))
        with pytest.raises(MappingError):
            bad.check_bijective()

    def test_mu_rejects_foreign_prefix(self, setup):
        ga, gp, pc, mu = setup
        app = build_application_labeling(ga, pc, mu, seed=9)
        # fabricate a prefix that is not any PE label
        all_prefixes = set(pc.labels.tolist())
        foreign = next(x for x in range(2 ** pc.dim) if x not in all_prefixes)
        bad_labels = app.labels.copy()
        bad_labels[0] = foreign << app.dim_e
        with pytest.raises(MappingError):
            app.with_labels(bad_labels).mu()
