"""Tests for Coco+ = Coco - Div (paper section 5)."""

import numpy as np
import pytest

from repro.core.labels import build_application_labeling
from repro.core.objective import (
    coco_of_labels,
    coco_plus,
    coco_plus_edges,
    coco_plus_signed,
    div_of_labels,
)
from repro.graphs import generators as gen
from repro.graphs.builder import from_edges
from repro.mapping.objective import coco
from repro.partialcube.djokovic import partial_cube_labeling
from repro.utils.bitops import mask_of_width, permute_bits


@pytest.fixture
def setup():
    ga = gen.barabasi_albert(120, 3, seed=1)
    gp = gen.grid(4, 4)
    pc = partial_cube_labeling(gp)
    rng = np.random.default_rng(2)
    mu = rng.integers(0, gp.n, ga.n)
    app = build_application_labeling(ga, pc, mu, seed=3)
    return ga, gp, mu, app


class TestCocoOfLabels:
    def test_matches_distance_coco(self, setup):
        ga, gp, mu, app = setup
        assert np.isclose(
            coco_of_labels(ga, app.labels, app.dim_p, app.dim_e),
            coco(ga, gp, mu),
        )

    def test_identity_hand_example(self):
        """Eq. 9 on a 2-edge graph with 2-bit prefixes."""
        ga = from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        # dim_p=2, dim_e=1: labels (lp|le): 00|0, 01|1, 11|0
        labels = np.asarray([0b000, 0b011, 0b110], dtype=np.int64)
        # prefix hamming: (00,01)=1 w2 -> 2 ; (01,11)=1 w3 -> 3
        assert coco_of_labels(ga, labels, 2, 1) == 5.0
        # extensions: (0,1)=1 w2 -> 2 ; (1,0)=1 w3 -> 3
        assert div_of_labels(ga, labels, 2, 1) == 5.0
        assert coco_plus(ga, labels, 2, 1) == 0.0


class TestCocoPlusConsistency:
    def test_plus_is_difference(self, setup):
        ga, _, _, app = setup
        c = coco_of_labels(ga, app.labels, app.dim_p, app.dim_e)
        d = div_of_labels(ga, app.labels, app.dim_p, app.dim_e)
        assert np.isclose(coco_plus(ga, app.labels, app.dim_p, app.dim_e), c - d)

    def test_edges_form_matches(self, setup):
        ga, _, _, app = setup
        us, vs, ws = ga.edge_arrays()
        lp_mask = mask_of_width(app.dim_p) << app.dim_e
        le_mask = mask_of_width(app.dim_e)
        assert np.isclose(
            coco_plus_edges(us, vs, ws, app.labels, lp_mask, le_mask),
            coco_plus(ga, app.labels, app.dim_p, app.dim_e),
        )

    def test_signed_form_matches_after_permutation(self, setup):
        """The per-bit-sign evaluation is permutation-equivariant."""
        ga, _, _, app = setup
        rng = np.random.default_rng(7)
        perm = rng.permutation(app.dim)
        permuted = permute_bits(app.labels, perm)
        signs = np.where(perm >= app.dim_e, 1, -1)
        assert np.isclose(
            coco_plus_signed(ga, permuted, signs),
            coco_plus(ga, app.labels, app.dim_p, app.dim_e),
        )

    def test_vacuous_edge_restrictions(self, setup):
        """Edges with equal prefixes contribute 0, so Eq. 9's set
        restriction does not change the sum (asserted numerically by
        comparing to an explicit per-edge loop)."""
        ga, _, _, app = setup
        lp_mask = mask_of_width(app.dim_p) << app.dim_e
        total = 0.0
        for u, v, w in ga.edges():
            lu, lv = int(app.labels[u]), int(app.labels[v])
            if (lu & lp_mask) == (lv & lp_mask):
                continue  # E_a^p edges excluded, as in the paper
            total += w * bin((lu ^ lv) & lp_mask).count("1")
        assert np.isclose(total, coco_of_labels(ga, app.labels, app.dim_p, app.dim_e))

    def test_zero_extension_width(self):
        ga = from_edges(2, [(0, 1, 4.0)])
        labels = np.asarray([0b0, 0b1], dtype=np.int64)
        assert coco_plus(ga, labels, 1, 0) == 4.0
        assert div_of_labels(ga, labels, 1, 0) == 0.0
