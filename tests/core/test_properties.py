"""Property-based tests over the full TIMER pipeline."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.enhancer import timer_enhance
from repro.core.labels import build_application_labeling
from repro.graphs import generators as gen
from repro.mapping.objective import coco
from repro.partialcube.djokovic import partial_cube_labeling


def _random_balanced_mu(rng, n, k):
    """A perfectly balanced random mapping (blocks differ by <= 1)."""
    mu = np.arange(n) % k
    rng.shuffle(mu)
    return mu.astype(np.int64)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(min_value=32, max_value=150),
)
def test_timer_full_invariants(seed, n):
    """For arbitrary inputs: bijectivity, balance, Coco+ monotonicity,
    and agreement between label-based and distance-based Coco."""
    rng = np.random.default_rng(seed)
    ga = gen.barabasi_albert(n, 2, seed=int(rng.integers(1 << 30)))
    gp = gen.grid(2, 4)
    pc = partial_cube_labeling(gp)
    mu = _random_balanced_mu(rng, ga.n, gp.n)
    res = timer_enhance(ga, gp, pc, mu, n_hierarchies=4, seed=int(rng.integers(1 << 30)))
    # label bijection
    res.labeling.check_bijective()
    # balance preserved exactly
    assert np.array_equal(
        np.bincount(mu, minlength=gp.n), np.bincount(res.mu_after, minlength=gp.n)
    )
    # monotone acceptance
    assert all(b <= a + 1e-9 for a, b in zip(res.history, res.history[1:]))
    # metric agreement
    assert np.isclose(res.coco_after, coco(ga, gp, res.mu_after))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_labeling_roundtrip_mu(seed):
    """build labels -> decode mu is the identity for any mapping."""
    rng = np.random.default_rng(seed)
    ga = gen.erdos_renyi(60, 0.1, seed=int(rng.integers(1 << 30)))
    gp = gen.torus(4, 4)
    pc = partial_cube_labeling(gp)
    mu = rng.integers(0, gp.n, ga.n)
    app = build_application_labeling(ga, pc, mu, seed=int(rng.integers(1 << 30)))
    assert np.array_equal(app.mu(), mu)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    topo=st.sampled_from(["grid", "torus", "hypercube", "path"]),
)
def test_timer_on_every_topology_family(seed, topo):
    """TIMER accepts every partial-cube family the paper mentions."""
    rng = np.random.default_rng(seed)
    gp = {
        "grid": lambda: gen.grid(2, 2, 2),
        "torus": lambda: gen.torus(4, 4),
        "hypercube": lambda: gen.hypercube(3),
        "path": lambda: gen.path(8),
    }[topo]()
    pc = partial_cube_labeling(gp)
    ga = gen.powerlaw_cluster(80, 2, 0.4, seed=int(rng.integers(1 << 30)))
    mu = _random_balanced_mu(rng, ga.n, gp.n)
    res = timer_enhance(ga, gp, pc, mu, n_hierarchies=3, seed=int(rng.integers(1 << 30)))
    # acceptance is on Coco+ (Coco itself may fluctuate); the invariants
    # that must hold everywhere are monotone Coco+ and bijectivity.
    assert all(b <= a + 1e-9 for a, b in zip(res.history, res.history[1:]))
    res.labeling.check_bijective()
