"""Tests pinning the semantics of TimerConfig.selection."""

import numpy as np
import pytest

from repro.core.config import TimerConfig
from repro.core.enhancer import timer_enhance
from repro.errors import ConfigurationError
from repro.graphs import generators as gen
from repro.partialcube.djokovic import partial_cube_labeling
from repro.partitioning.kway import partition_kway


@pytest.fixture(scope="module")
def cell():
    ga = gen.powerlaw_cluster(400, 3, 0.5, seed=42)
    gp = gen.grid(4, 4)  # small dim_p: the Div-dominant regime
    pc = partial_cube_labeling(gp)
    part = partition_kway(ga, gp.n, seed=1)
    return ga, gp, pc, part.assignment


class TestBestCoco:
    def test_never_regresses(self, cell):
        ga, gp, pc, mu = cell
        for seed in range(4):
            res = timer_enhance(
                ga, gp, pc, mu, seed=seed,
                config=TimerConfig(n_hierarchies=6, selection="best_coco"),
            )
            assert res.coco_after <= res.coco_before

    def test_beats_or_ties_last(self, cell):
        ga, gp, pc, mu = cell
        cfg_best = TimerConfig(n_hierarchies=8, selection="best_coco")
        cfg_last = TimerConfig(n_hierarchies=8, selection="last")
        best = timer_enhance(ga, gp, pc, mu, seed=3, config=cfg_best)
        last = timer_enhance(ga, gp, pc, mu, seed=3, config=cfg_last)
        # identical RNG stream -> identical accepted trajectory
        assert best.history == last.history
        assert best.coco_after <= last.coco_after

    def test_last_is_final_iterate(self, cell):
        """selection='last' must report the final Coco+ iterate's metrics."""
        ga, gp, pc, mu = cell
        res = timer_enhance(
            ga, gp, pc, mu, seed=5,
            config=TimerConfig(n_hierarchies=6, selection="last"),
        )
        # whatever labeling was returned, its reported Coco cross-checks
        from repro.mapping.objective import coco

        assert np.isclose(res.coco_after, coco(ga, gp, res.mu_after))

    def test_both_policies_keep_invariants(self, cell):
        ga, gp, pc, mu = cell
        for policy in ("best_coco", "last"):
            res = timer_enhance(
                ga, gp, pc, mu, seed=7,
                config=TimerConfig(n_hierarchies=5, selection=policy),
            )
            res.labeling.check_bijective()
            assert np.array_equal(
                np.bincount(mu, minlength=gp.n),
                np.bincount(res.mu_after, minlength=gp.n),
            )

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            TimerConfig(selection="median")
