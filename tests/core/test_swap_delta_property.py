"""Property tests: swap deltas must equal brute-force recomputation.

The O(deg) incremental gain formulas in ``repro.core.swaps`` are the most
error-prone arithmetic in the repo (signs, xor flips, the excluded shared
edge).  These tests compare every executed swap against full objective
recomputation on random graphs and labelings.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.contraction import make_finest_level
from repro.core.objective import coco_plus_signed
from repro.core.swaps import _swap_delta, build_adjacency, kl_swap_pass, sibling_pairs, swap_pass
from repro.graphs import generators as gen


def _signed_objective(g, labels, sign, dim):
    signs = np.full(dim, 7)  # arbitrary positive sign for untouched bits
    signs[:] = 1  # untouched bits cancel in differences; any sign works
    signs[0] = sign
    return coco_plus_signed(g, labels, signs)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(min_value=6, max_value=60),
    sign=st.sampled_from([1, -1]),
)
def test_single_swap_delta_matches_bruteforce(seed, n, sign):
    rng = np.random.default_rng(seed)
    g = gen.erdos_renyi(n, 0.2, seed=int(rng.integers(1 << 30)))
    if g.m == 0:
        return
    dim = 8
    labels = rng.choice(1 << dim, size=n, replace=False).astype(np.int64)
    lvl = make_finest_level(g.edge_arrays(), labels.copy())
    indptr, indices, weights = build_adjacency(lvl)
    pairs = sibling_pairs(lvl.labels)
    for u, v in pairs[:5]:
        u, v = int(u), int(v)
        before = _signed_objective(g, lvl.labels, sign, dim)
        predicted = _swap_delta(lvl.labels, indptr, indices, weights, u, v, sign)
        swapped = lvl.labels.copy()
        swapped[u], swapped[v] = swapped[v], swapped[u]
        after = _signed_objective(g, swapped, sign, dim)
        assert np.isclose(after - before, predicted, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    sign=st.sampled_from([1, -1]),
    weighted=st.booleans(),
)
def test_full_pass_total_delta_matches(seed, sign, weighted):
    rng = np.random.default_rng(seed)
    g = gen.barabasi_albert(80, 3, seed=int(rng.integers(1 << 30)))
    if weighted:
        # randomize edge weights through a rebuilt graph
        from repro.graphs.builder import from_arrays

        us, vs, _ = g.edge_arrays()
        g = from_arrays(g.n, us, vs, rng.uniform(0.5, 5.0, us.shape[0]))
    dim = 9
    labels = rng.choice(1 << dim, size=g.n, replace=False).astype(np.int64)
    for pass_fn in (swap_pass, kl_swap_pass):
        lvl = make_finest_level(g.edge_arrays(), labels.copy())
        before = _signed_objective(g, lvl.labels, sign, dim)
        _, total_delta = pass_fn(lvl, sign=sign, sweeps=2)
        after = _signed_objective(g, lvl.labels, sign, dim)
        assert np.isclose(after - before, total_delta, atol=1e-6)
        assert total_delta <= 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_ncm_swap_gain_matches_bruteforce(seed):
    """Same property for the NCM refiner's gain."""
    from repro.mapping.objective import coco_from_distances, network_cost_matrix
    from repro.mapping.refine import swap_gain

    rng = np.random.default_rng(seed)
    gc = gen.barabasi_albert(16, 2, seed=int(rng.integers(1 << 30)))
    gp = gen.grid(4, 4)
    dist = network_cost_matrix(gp)
    nu = rng.permutation(16).astype(np.int64)
    # "application" = the communication graph itself, identity partition
    base = coco_from_distances(gc, nu, dist)
    a, b = int(rng.integers(0, 16)), int(rng.integers(0, 16))
    if a == b:
        return
    predicted = swap_gain(gc, dist, nu, a, b)
    swapped = nu.copy()
    swapped[a], swapped[b] = swapped[b], swapped[a]
    after = coco_from_distances(gc, swapped, dist)
    assert np.isclose(base - after, predicted, atol=1e-9)
