"""Tests for the sibling-swap pass (Algorithm 1, lines 10-12)."""

import numpy as np
import pytest

from repro.core.contraction import make_finest_level
from repro.core.objective import coco_plus_signed
from repro.core.swaps import build_adjacency, sibling_pairs, swap_pass
from repro.graphs.builder import from_edges


def _level_of(graph, labels):
    return make_finest_level(graph.edge_arrays(), np.asarray(labels, dtype=np.int64))


class TestSiblingPairs:
    def test_finds_pairs(self):
        labels = np.asarray([0b10, 0b11, 0b01, 0b00], dtype=np.int64)
        pairs = sibling_pairs(labels)
        as_sets = {frozenset(p.tolist()) for p in pairs}
        assert as_sets == {frozenset({0, 1}), frozenset({2, 3})}

    def test_unpaired_ignored(self):
        labels = np.asarray([0b00, 0b10, 0b11], dtype=np.int64)
        pairs = sibling_pairs(labels)
        assert len(pairs) == 1

    def test_empty(self):
        assert sibling_pairs(np.asarray([], dtype=np.int64)).shape == (0, 2)


class TestBuildAdjacency:
    def test_round_trip(self, triangle):
        lvl = _level_of(triangle, [0, 1, 2])
        indptr, indices, weights = build_adjacency(lvl)
        assert indptr.tolist() == [0, 2, 4, 6]
        assert weights.sum() == 2 * triangle.total_edge_weight()


class TestSwapPass:
    def test_improves_obvious_case_lp(self):
        """Two vertices on the wrong sides of a heavy edge get swapped."""
        # path 0-1-2-3 with heavy middle; labels put 1,2 in wrong order
        g = from_edges(4, [(0, 1, 1.0), (1, 2, 10.0), (2, 3, 1.0)])
        # siblings (1,2) hold labels 2,3 (prefix 1); 0,3 hold 0 and 5
        labels = [0, 3, 2, 5]
        lvl = _level_of(g, labels)
        before = lvl.labels.copy()
        n_swaps, delta = swap_pass(lvl, sign=1)
        # swapping labels of 1 and 2 changes nothing for edge (1,2) but
        # aligns LSBs with neighbors 0 and 3
        assert n_swaps >= 0  # structural: must run without error
        # verify the invariant: label multiset unchanged
        assert sorted(lvl.labels.tolist()) == sorted(before.tolist())

    def test_never_increases_estimate(self, ba_graph):
        rng = np.random.default_rng(5)
        dim = 10
        labels = rng.choice(1 << dim, size=ba_graph.n, replace=False).astype(np.int64)
        for sign in (1, -1):
            lvl = make_finest_level(ba_graph.edge_arrays(), labels.copy())
            signs = np.full(dim, -sign)
            signs[0] = sign  # only bit 0 matters for the level estimate? no:
            # evaluate the full signed objective with bit0 sign = `sign` and
            # all other bits fixed sign; swaps only touch bit 0 so other
            # bits cancel in the difference.
            before = coco_plus_signed(ba_graph, lvl.labels, signs)
            n_swaps, delta = swap_pass(lvl, sign=sign)
            after = coco_plus_signed(ba_graph, lvl.labels, signs)
            assert after <= before + 1e-9
            assert np.isclose(after - before, delta, atol=1e-9)

    def test_multiset_preserved(self, ba_graph):
        rng = np.random.default_rng(6)
        labels = rng.permutation(ba_graph.n).astype(np.int64)
        lvl = make_finest_level(ba_graph.edge_arrays(), labels.copy())
        swap_pass(lvl, sign=1, sweeps=3)
        assert sorted(lvl.labels.tolist()) == sorted(labels.tolist())

    def test_sign_validation(self, triangle):
        lvl = _level_of(triangle, [0, 1, 2])
        with pytest.raises(ValueError):
            swap_pass(lvl, sign=0)

    def test_no_edges_no_swaps(self):
        g = from_edges(4, [])
        lvl = _level_of(g, [0, 1, 2, 3])
        assert swap_pass(lvl, sign=1) == (0, 0.0)

    def test_multiple_sweeps_not_worse(self, ba_graph):
        rng = np.random.default_rng(7)
        labels = rng.permutation(ba_graph.n).astype(np.int64)
        l1 = make_finest_level(ba_graph.edge_arrays(), labels.copy())
        l3 = make_finest_level(ba_graph.edge_arrays(), labels.copy())
        _, d1 = swap_pass(l1, sign=1, sweeps=1)
        _, d3 = swap_pass(l3, sign=1, sweeps=3)
        assert d3 <= d1 + 1e-9
