"""W == 1 vs multi-word agreement across the core label machinery.

Every test embeds a *narrow* labeling into the wide representation
(extra zero high words) and asserts the wide code path computes exactly
the same objectives, gains, swaps, contractions and final labelings as
the narrow fast path -- the refactor's central invariant.  The wide
batch kernels are additionally checked against the scalar reference
*on the wide path itself*.
"""

import numpy as np
import pytest

from repro.core.config import TimerConfig
from repro.core.contraction import build_hierarchy, contract_level, make_finest_level
from repro.core.enhancer import _enhance_labeling, timer_enhance
from repro.core.assemble import assemble
from repro.core.kernels import (
    batch_pair_deltas,
    batch_swap_pass,
    level_csr,
    sibling_pair_weights,
    sibling_pairs,
)
from repro.core.labels import build_application_labeling
from repro.core.objective import coco_plus, coco_plus_signed, coco_of_labels, div_of_labels
from repro.core.swaps import kl_swap_pass, kl_swap_pass_reference, swap_pass_reference
from repro.graphs import generators as gen
from repro.partialcube.djokovic import partial_cube_labeling
from repro.utils.bitops import narrow_labels, widen_labels
from repro.utils.rng import make_rng


def _narrow_app(seed, n=120, pe=16):
    ga = gen.barabasi_albert(n, 3, seed=seed)
    gp = gen.grid(4, 4) if pe == 16 else gen.hypercube(6)
    pc = partial_cube_labeling(gp)
    mu = (np.arange(n) % gp.n).astype(np.int64)
    make_rng(seed).shuffle(mu)
    app = build_application_labeling(ga, pc, mu, seed=seed)
    return ga, app


def _levels(ga, labels, words=None):
    lab = labels if words is None else widen_labels(labels, words)
    return make_finest_level(ga.edge_arrays(), lab)


class TestObjectiveAgreement:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("words", [2, 3])
    def test_coco_div_cocoplus(self, seed, words):
        ga, app = _narrow_app(seed)
        wide = widen_labels(app.labels, words)
        args = (app.dim_p, app.dim_e)
        assert coco_of_labels(ga, wide, *args) == coco_of_labels(ga, app.labels, *args)
        assert div_of_labels(ga, wide, *args) == div_of_labels(ga, app.labels, *args)
        assert coco_plus(ga, wide, *args) == coco_plus(ga, app.labels, *args)

    @pytest.mark.parametrize("seed", range(3))
    def test_coco_plus_signed(self, seed):
        ga, app = _narrow_app(seed)
        rng = make_rng(seed)
        signs = rng.choice([-1, 1], size=app.dim)
        wide = widen_labels(app.labels, 2)
        assert coco_plus_signed(ga, wide, signs) == coco_plus_signed(
            ga, app.labels, signs
        )


class TestSwapGainAgreement:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("sign", [1, -1])
    def test_batch_pair_deltas_match(self, seed, sign):
        ga, app = _narrow_app(seed)
        narrow = _levels(ga, app.labels)
        wide = _levels(ga, app.labels, words=2)
        pn = sibling_pairs(narrow.labels)
        pw = sibling_pairs(wide.labels)
        assert np.array_equal(pn, pw)
        dn = batch_pair_deltas(
            narrow.labels, pn, level_csr(narrow), sign, sibling_pair_weights(narrow, pn)
        )
        dw = batch_pair_deltas(
            wide.labels, pw, level_csr(wide), sign, sibling_pair_weights(wide, pw)
        )
        assert np.array_equal(dn, dw)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("sign", [1, -1])
    def test_batch_swap_pass_match(self, seed, sign):
        ga, app = _narrow_app(seed)
        narrow = _levels(ga, app.labels)
        wide = _levels(ga, app.labels, words=2)
        rn = batch_swap_pass(narrow, sign, sweeps=2)
        rw = batch_swap_pass(wide, sign, sweeps=2)
        assert rn == rw
        assert np.array_equal(narrow.labels, narrow_labels(wide.labels))

    @pytest.mark.parametrize("seed", range(4))
    def test_kl_swap_pass_match(self, seed):
        ga, app = _narrow_app(seed)
        narrow = _levels(ga, app.labels)
        wide = _levels(ga, app.labels, words=2)
        rn = kl_swap_pass(narrow, 1)
        rw = kl_swap_pass(wide, 1)
        assert rn == rw
        assert np.array_equal(narrow.labels, narrow_labels(wide.labels))

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("sign", [1, -1])
    def test_wide_batch_matches_wide_scalar_reference(self, seed, sign):
        # The scalar sweep is the ground truth *within* the wide regime
        # too, not just versus the narrow embedding.
        ga, app = _narrow_app(seed)
        a = _levels(ga, app.labels, words=2)
        b = _levels(ga, app.labels, words=2)
        ra = swap_pass_reference(a, sign)
        rb = batch_swap_pass(b, sign)
        assert ra == rb
        assert np.array_equal(a.labels, b.labels)

    @pytest.mark.parametrize("seed", range(3))
    def test_wide_kl_matches_wide_scalar_reference(self, seed):
        ga, app = _narrow_app(seed)
        a = _levels(ga, app.labels, words=2)
        b = _levels(ga, app.labels, words=2)
        ra = kl_swap_pass_reference(a, 1)
        rb = kl_swap_pass(b, 1)
        assert ra == rb
        assert np.array_equal(a.labels, b.labels)


class TestContractAssembleAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_contract_level_match(self, seed):
        ga, app = _narrow_app(seed)
        narrow = _levels(ga, app.labels)
        wide = _levels(ga, app.labels, words=2)
        cn = contract_level(narrow)
        cw = contract_level(wide)
        assert np.array_equal(narrow.parent, wide.parent)
        assert np.array_equal(cn.labels, narrow_labels(cw.labels))
        assert np.array_equal(cn.us, cw.us) and np.array_equal(cn.ws, cw.ws)

    @pytest.mark.parametrize("seed", range(3))
    def test_assemble_match_after_swaps(self, seed):
        ga, app = _narrow_app(seed)
        dim = app.dim
        ln = build_hierarchy(ga.edge_arrays(), app.labels, dim)
        lw = build_hierarchy(ga.edge_arrays(), widen_labels(app.labels, 2), dim)
        for j, (a, b) in enumerate(zip(ln, lw)):
            sign = 1 if j % 2 else -1
            batch_swap_pass(a, sign)
            batch_swap_pass(b, sign)
            # contraction happened before the swaps in build_hierarchy, so
            # re-link parents by re-contracting is not needed: assemble
            # only reads labels + parent pointers.
        an = assemble(ln, dim)
        aw = assemble(lw, dim)
        assert np.array_equal(an, narrow_labels(aw))


class TestFullEnhancerAgreement:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_enhance_labeling_narrow_vs_widened(self, seed):
        ga, app = _narrow_app(seed)
        cfg = TimerConfig(n_hierarchies=3)
        out_n, hist_n, acc_n = _enhance_labeling(ga, app, cfg, make_rng(99))
        wide_app = app.with_labels(widen_labels(app.labels, 2))
        out_w, hist_w, acc_w = _enhance_labeling(ga, wide_app, cfg, make_rng(99))
        assert hist_n == hist_w and acc_n == acc_w
        assert np.array_equal(out_n.labels, narrow_labels(out_w.labels))
        assert np.array_equal(out_n.mu(), out_w.mu())

    def test_timer_enhance_on_truly_wide_topology(self):
        gp = gen.fat_tree(2, 6)  # 127 PEs, dim 126 -> 2-word labels
        pc = partial_cube_labeling(gp)
        ga = gen.barabasi_albert(300, 3, seed=3)
        mu = (np.arange(ga.n) % gp.n).astype(np.int64)
        res = timer_enhance(
            ga, gp, pc, mu, seed=5, config=TimerConfig(n_hierarchies=2)
        )
        assert res.coco_after <= res.coco_before
        before = np.bincount(mu, minlength=gp.n)
        after = np.bincount(res.mu_after, minlength=gp.n)
        assert np.array_equal(before, after)  # balance preserved exactly
        assert res.labeling.labels.ndim == 2
