"""Tests for the ASCII Figure-5 chart."""


from repro.experiments.ascii_chart import SCALE, bar_for, render_fig5_chart


class TestBar:
    def test_neutral_is_axis_only(self):
        bar = bar_for(1.0)
        assert bar.count("#") == 0
        assert "|" in bar

    def test_improvement_left_of_axis(self):
        bar = bar_for(0.8)
        axis = bar.index("|")
        assert "#" in bar[:axis]
        assert "#" not in bar[axis:]

    def test_deterioration_right_of_axis(self):
        bar = bar_for(1.2)
        axis = bar.index("|")
        assert "#" in bar[axis:]
        assert "#" not in bar[:axis]

    def test_clipped_extremes(self):
        assert bar_for(0.01).count("#") == SCALE
        assert bar_for(5.0).count("#") == SCALE

    def test_constant_width(self):
        widths = {len(bar_for(q)) for q in (0.5, 0.9, 1.0, 1.1, 2.0)}
        assert len(widths) == 1


class TestChart:
    def test_renders_from_sweep(self):
        # reuse the synthetic-result helper from the claims tests
        from tests.experiments.test_claims import _fake_result

        result = _fake_result(
            [("c1", "grid4x4", 0.85, 1.08), ("c1", "hq4", 0.95, 1.04)]
        )
        text = render_fig5_chart(result, "c1")
        assert "grid4x4 Cut" in text
        assert "hq4 Co" in text
        assert "0.850" in text

    def test_missing_case_is_empty_body(self):
        from tests.experiments.test_claims import _fake_result

        result = _fake_result([("c1", "grid4x4", 0.9, 1.05)])
        text = render_fig5_chart(result, "c4")
        assert "grid4x4" not in text
