"""Tests for CaseRun's derived quotients (incl. degenerate guards)."""

import pytest
import dataclasses

from repro.experiments.cases import CaseRun


def _run(**overrides):
    base = dict(
        case="c2", instance="x", topology="grid4x4", seed=1,
        coco_before=200.0, coco_after=150.0,
        cut_before=100.0, cut_after=110.0,
        timer_seconds=2.0, baseline_seconds=4.0,
        partition_seconds=4.0, mapping_seconds=0.1,
        hierarchies_accepted=3,
    )
    base.update(overrides)
    return CaseRun(**base)


class TestQuotients:
    def test_coco_quotient(self):
        assert _run().coco_quotient == pytest.approx(0.75)

    def test_cut_quotient(self):
        assert _run().cut_quotient == pytest.approx(1.1)

    def test_time_quotient(self):
        assert _run().time_quotient == pytest.approx(0.5)

    def test_zero_coco_before(self):
        assert _run(coco_before=0.0).coco_quotient == 1.0

    def test_zero_cut_before(self):
        assert _run(cut_before=0.0).cut_quotient == 1.0

    def test_zero_baseline_time(self):
        assert _run(baseline_seconds=0.0).time_quotient == float("inf")

    def test_frozen(self):
        run = _run()
        with pytest.raises(dataclasses.FrozenInstanceError):
            run.coco_before = 1.0
