"""Tests for the programmatic §7.2 claim checks."""


from repro.experiments.cases import CaseRun
from repro.experiments.claims import (
    ALL_CHECKS,
    check_c1_most_improvable,
    check_coco_improves,
    check_cut_inflates_modestly,
    check_grids_beat_hypercube,
    check_time_ordering,
    render_claims,
    validate_paper_claims,
)
from repro.experiments.runner import CellResult, ExperimentConfig, ExperimentResult


def _run(case, topo, coco_q, cut_q, t=1.0, bt=2.0):
    return CaseRun(
        case=case, instance="x", topology=topo, seed=0,
        coco_before=100.0, coco_after=100.0 * coco_q,
        cut_before=50.0, cut_after=50.0 * cut_q,
        timer_seconds=t, baseline_seconds=bt,
        partition_seconds=bt, mapping_seconds=0.1,
        hierarchies_accepted=1,
    )


def _fake_result(cells_spec):
    """cells_spec: list of (case, topo, coco_q, cut_q, t, bt)."""
    topologies = tuple(sorted({s[1] for s in cells_spec}))
    cases = tuple(sorted({s[0] for s in cells_spec}))
    config = ExperimentConfig(
        instances=("x",), topologies=topologies, cases=cases, repetitions=1
    )
    result = ExperimentResult(config=config)
    for spec in cells_spec:
        case, topo = spec[0], spec[1]
        result.cells.append(
            CellResult(instance="x", topology=topo, case=case, runs=[_run(*spec)])
        )
    return result


class TestIndividualChecks:
    def test_coco_improves_pass(self):
        r = _fake_result([("c1", "grid4x4", 0.9, 1.05)])
        assert check_coco_improves(r).passed

    def test_coco_improves_fail(self):
        r = _fake_result([("c1", "grid4x4", 1.2, 1.05)])
        assert not check_coco_improves(r).passed

    def test_cut_band(self):
        assert check_cut_inflates_modestly(
            _fake_result([("c1", "grid4x4", 0.9, 1.07)])
        ).passed
        assert not check_cut_inflates_modestly(
            _fake_result([("c1", "grid4x4", 0.9, 1.5)])
        ).passed

    def test_grid_vs_hq(self):
        good = _fake_result(
            [("c1", "grid4x4", 0.85, 1.05), ("c1", "hq4", 0.95, 1.05)]
        )
        assert check_grids_beat_hypercube(good).passed
        bad = _fake_result(
            [("c1", "grid4x4", 0.99, 1.05), ("c1", "hq4", 0.80, 1.05)]
        )
        assert not check_grids_beat_hypercube(bad).passed

    def test_c1_ordering(self):
        good = _fake_result(
            [
                ("c1", "grid4x4", 0.85, 1.0),
                ("c3", "grid4x4", 0.95, 1.0),
                ("c4", "grid4x4", 0.96, 1.0),
            ]
        )
        assert check_c1_most_improvable(good).passed
        bad = _fake_result(
            [("c1", "grid4x4", 0.99, 1.0), ("c3", "grid4x4", 0.85, 1.0)]
        )
        assert not check_c1_most_improvable(bad).passed

    def test_c1_missing_cases(self):
        r = _fake_result([("c2", "grid4x4", 0.9, 1.0)])
        assert not check_c1_most_improvable(r).passed

    def test_time_ordering(self):
        good = _fake_result(
            [
                ("c1", "grid4x4", 0.9, 1.0, 1.0, 0.2),   # qT = 5
                ("c2", "grid4x4", 0.9, 1.0, 1.0, 2.0),   # qT = 0.5
            ]
        )
        assert check_time_ordering(good).passed


class TestDriver:
    def test_validate_runs_all(self):
        r = _fake_result(
            [
                ("c1", "grid4x4", 0.85, 1.05, 1.0, 0.2),
                ("c2", "grid4x4", 0.88, 1.06, 1.0, 2.0),
                ("c3", "grid4x4", 0.95, 1.04, 1.0, 2.0),
                ("c1", "hq4", 0.93, 1.05, 1.0, 0.2),
                ("c2", "hq4", 0.94, 1.05, 1.0, 2.0),
                ("c3", "hq4", 0.97, 1.04, 1.0, 2.0),
            ]
        )
        checks = validate_paper_claims(r)
        assert len(checks) == len(ALL_CHECKS)
        assert all(c.passed for c in checks), render_claims(checks)

    def test_render(self):
        r = _fake_result([("c1", "grid4x4", 0.9, 1.05)])
        text = render_claims(validate_paper_claims(r))
        assert "coco-improves" in text
        assert "PASS" in text or "FAIL" in text
